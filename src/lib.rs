//! `plic3-repro` — umbrella crate of the PLIC3 reproduction.
//!
//! This crate re-exports the individual layers of the from-scratch Rust
//! reproduction of *Predicting Lemmas in Generalization of IC3* (Su, Yang, Ci —
//! DAC 2024) under one roof, and hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`).
//!
//! The layers, bottom-up:
//!
//! * [`logic`] — variables, literals, cubes, clauses, CNF, diff sets,
//! * [`sat`] — the incremental CDCL SAT solver with assumption cores,
//! * [`aig`] — and-inverter graphs, the AIGER format, simulation,
//! * [`ts`] — transition systems, Tseitin encoding, unrolling, traces,
//! * [`prep`] — the AIG preprocessing pipeline (COI, strashing, constant
//!   sweeping, latch-equivalence merging) with witness reconstruction,
//! * [`ic3`] — the IC3/PDR engine with CTP-based lemma prediction (the paper's
//!   contribution),
//! * [`bmc`] — bounded model checking and k-induction baselines,
//! * [`check`] — independent proof checkers: backward DRAT for SAT-core
//!   refutations, invariant certificates replayed on the original circuit,
//! * [`portfolio`] — the in-process portfolio engine racing BMC, k-induction
//!   and diversified IC3 variants with sound lemma sharing,
//! * [`benchmarks`] — the synthetic HWMCC-style circuit suite,
//! * [`harness`] — the experiment harness regenerating the paper's tables and
//!   figures.
//!
//! # Example
//!
//! ```
//! use plic3_repro::ic3::{Config, Ic3};
//! use plic3_repro::aig::AigBuilder;
//!
//! let mut b = AigBuilder::new();
//! let s = b.latch(Some(false));
//! b.set_latch_next(s, s);
//! b.add_bad(s);
//! let mut engine = Ic3::from_aig(&b.build(), Config::ric3_like().with_lemma_prediction(true));
//! assert!(engine.check().is_safe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The IC3/PDR engine with CTP-based lemma prediction (the core crate).
pub use plic3 as ic3;
pub use plic3_aig as aig;
pub use plic3_benchmarks as benchmarks;
pub use plic3_bmc as bmc;
pub use plic3_check as check;
pub use plic3_harness as harness;
pub use plic3_logic as logic;
pub use plic3_portfolio as portfolio;
pub use plic3_prep as prep;
pub use plic3_sat as sat;
pub use plic3_ts as ts;
