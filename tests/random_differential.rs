//! Differential testing on seeded random circuits with no hand-crafted ground
//! truth: IC3 (with and without prediction), BMC and k-induction must tell a
//! consistent story on every one of them, and every verdict must carry an
//! independently checked certificate or counterexample.

use plic3_repro::benchmarks::families::random::{random_circuit, RandomCircuitConfig};
use plic3_repro::bmc::{Bmc, KInduction};
use plic3_repro::ic3::{verify_certificate, verify_trace, CheckResult, Config, Ic3};
use plic3_repro::ts::TransitionSystem;

const BMC_DEPTH: usize = 25;

fn check(config: Config, ts: TransitionSystem) -> (CheckResult, Ic3) {
    let mut engine = Ic3::new(ts, config);
    let result = engine.check();
    (result, engine)
}

#[test]
fn engines_agree_on_random_circuits() {
    let shape = RandomCircuitConfig {
        latches: 6,
        inputs: 2,
        gates: 24,
    };
    for seed in 0..40u64 {
        let aig = random_circuit(seed, shape);
        let ts = TransitionSystem::from_aig(&aig);

        let (base_result, base_engine) = check(Config::ric3_like(), ts.clone());
        let (pl_result, pl_engine) =
            check(Config::ric3_like().with_lemma_prediction(true), ts.clone());

        // 1. Prediction never changes the verdict.
        assert_eq!(
            base_result.is_safe(),
            pl_result.is_safe(),
            "seed {seed}: prediction changed the verdict"
        );

        // 2. Certificates and traces check out.
        for (result, engine) in [(&base_result, &base_engine), (&pl_result, &pl_engine)] {
            match result {
                CheckResult::Safe(cert) => verify_certificate(engine.ts(), cert)
                    .unwrap_or_else(|e| panic!("seed {seed}: bad certificate: {e}")),
                CheckResult::Unsafe(trace) => assert!(
                    verify_trace(engine.ts(), &aig, trace),
                    "seed {seed}: trace does not replay"
                ),
                CheckResult::Unknown(reason) => {
                    panic!("seed {seed}: unexpected unknown ({reason})")
                }
            }
        }

        // 3. BMC agrees within its bound.
        let mut bmc = Bmc::new(&ts);
        match &base_result {
            CheckResult::Safe(_) => {
                assert!(
                    !bmc.check(BMC_DEPTH).is_unsafe(),
                    "seed {seed}: BMC refutes a certified-safe circuit"
                );
            }
            CheckResult::Unsafe(trace) => {
                let found = bmc.check(trace.len()).is_unsafe();
                assert!(
                    found,
                    "seed {seed}: BMC cannot reproduce the counterexample within {} steps",
                    trace.len()
                );
            }
            CheckResult::Unknown(_) => unreachable!(),
        }

        // 4. k-induction is sound (never contradicts the certified verdict).
        let mut kind = KInduction::new(&ts);
        let kind_result = kind.check(10);
        if base_result.is_safe() {
            assert!(
                !kind_result.is_unsafe(),
                "seed {seed}: k-induction refutes a safe circuit"
            );
        } else {
            assert!(
                !kind_result.is_safe(),
                "seed {seed}: k-induction proves an unsafe circuit"
            );
        }
    }
}

#[test]
fn all_configurations_agree_on_a_smaller_random_batch() {
    let shape = RandomCircuitConfig {
        latches: 5,
        inputs: 2,
        gates: 18,
    };
    let configs = [
        Config::ric3_like(),
        Config::ric3_like().with_lemma_prediction(true),
        Config::ic3ref_like(),
        Config::ic3ref_like().with_lemma_prediction(true),
        Config::cav23_like(),
        Config::pdr_like(),
    ];
    for seed in 100..115u64 {
        let aig = random_circuit(seed, shape);
        let ts = TransitionSystem::from_aig(&aig);
        let reference = check(configs[0].clone(), ts.clone()).0.is_safe();
        for (i, config) in configs.iter().enumerate().skip(1) {
            let verdict = check(config.clone(), ts.clone()).0.is_safe();
            assert_eq!(
                verdict, reference,
                "seed {seed}: configuration #{i} disagrees with the reference"
            );
        }
    }
}
