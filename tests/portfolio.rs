//! Portfolio-engine integration tests: the portfolio must agree with the
//! single engine on every instance (that's the determinism contract — the
//! winner may vary, the verdict may not), losing workers must observe
//! cancellation promptly, and poisoned foreign lemmas must be rejected by the
//! consecution re-check instead of corrupting a verdict.

use plic3_repro::benchmarks::families::random::{random_circuit, RandomCircuitConfig};
use plic3_repro::benchmarks::{ExpectedResult, Suite};
use plic3_repro::harness::{run_portfolio_case, RunnerConfig, Verdict};
use plic3_repro::ic3::{Config, Ic3, StopFlag, UnknownReason};
use plic3_repro::portfolio::{
    verify_safety_proof, Portfolio, PortfolioConfig, PortfolioResult, WorkerStatus,
};
use plic3_repro::ts::TransitionSystem;
use std::time::{Duration, Instant};

fn tiny_runner() -> RunnerConfig {
    RunnerConfig {
        timeout: Duration::from_secs(10),
        max_conflicts: Some(500_000),
        ..RunnerConfig::default()
    }
}

#[test]
fn portfolio_agrees_with_ground_truth_and_single_engine_on_quick_suite() {
    let runner = tiny_runner();
    for bench in &Suite::quick() {
        let result = run_portfolio_case(bench, &runner, 6, StopFlag::new());
        let expected = match bench.expected() {
            ExpectedResult::Safe => Verdict::Safe,
            ExpectedResult::Unsafe { .. } => Verdict::Unsafe,
        };
        assert_eq!(
            result.verdict,
            expected,
            "{}: portfolio disagrees with ground truth (winner {:?})",
            bench.name(),
            result.winner
        );
        assert!(result.correct);
        assert!(
            result.verified,
            "{}: winning proof/trace failed independent checking",
            bench.name()
        );
    }
}

#[test]
fn portfolio_matches_single_engine_on_seeded_random_circuits() {
    // No ground truth here: the single engine is the oracle. Instances the
    // single engine cannot settle within the budget are skipped (the
    // portfolio may legitimately settle them — it is allowed to be stronger,
    // never different).
    let config = RandomCircuitConfig {
        latches: 6,
        inputs: 2,
        gates: 24,
    };
    for seed in 0..25 {
        let aig = random_circuit(seed, config);
        let mut single = Ic3::from_aig(&aig, Config::ric3_like().with_max_conflicts(200_000));
        let single_result = single.check();
        let mut portfolio = Portfolio::from_aig(&aig, PortfolioConfig::default());
        let outcome = portfolio.check();
        match (&single_result, &outcome.result) {
            (plic3_repro::ic3::CheckResult::Safe(_), PortfolioResult::Safe(proof)) => {
                verify_safety_proof(portfolio.ts(), proof)
                    .unwrap_or_else(|e| panic!("seed {seed}: bogus proof: {e}"));
            }
            (plic3_repro::ic3::CheckResult::Unsafe(_), PortfolioResult::Unsafe(trace)) => {
                let ts = TransitionSystem::from_aig(&aig);
                assert!(
                    trace.replay_on_aig(&ts, &aig),
                    "seed {seed}: non-replayable portfolio trace"
                );
            }
            (plic3_repro::ic3::CheckResult::Unknown(_), _) => {}
            (single, portfolio) => {
                panic!("seed {seed}: single engine says {single}, portfolio says {portfolio:?}")
            }
        }
    }
}

#[test]
fn losing_workers_observe_cancellation_promptly() {
    // A ring large enough that IC3 takes visible time. The external stop flag
    // is raised shortly after the race starts; the whole portfolio — all
    // workers, including those in the middle of SAT queries — must wind down
    // promptly rather than run to completion.
    let mut b = plic3_repro::aig::AigBuilder::new();
    let n = 14;
    let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(cells[i], cells[(i + n - 1) % n]);
    }
    let mut bads = Vec::new();
    for i in 0..n {
        let pair = b.and(cells[i], cells[(i + 1) % n]);
        bads.push(pair);
    }
    let bad = b.or_many(&bads);
    b.add_bad(bad);
    let aig = b.build();

    let stop = StopFlag::new();
    let raiser = stop.clone();
    let handle = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        raiser.stop();
    });
    let config = PortfolioConfig {
        stop,
        ..PortfolioConfig::default()
    };
    let mut portfolio = Portfolio::from_aig(&aig, config);
    let started = Instant::now();
    let outcome = portfolio.check();
    let elapsed = started.elapsed();
    handle.join().expect("raiser thread");
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation took {elapsed:?}"
    );
    // Either the external stop won (Unknown, all started workers cancelled)
    // or some worker legitimately finished inside 30 ms — both are sound; an
    // unverifiable verdict is not.
    match &outcome.result {
        PortfolioResult::Unknown(UnknownReason::Cancelled) => {
            for report in &outcome.workers {
                assert!(
                    matches!(
                        report.status,
                        WorkerStatus::Unknown(UnknownReason::Cancelled) | WorkerStatus::NotRun
                    ),
                    "worker {} ended as {:?} after cancellation",
                    report.label,
                    report.status
                );
            }
        }
        PortfolioResult::Safe(proof) => {
            verify_safety_proof(portfolio.ts(), proof).expect("finished proofs still verify");
        }
        other => panic!("cancellation produced {other:?}"),
    }
}

/// An unsafe 3-bit counter used by the poisoned-lemma tests: bit 0 toggles on
/// every step, so "bit 0 is never 1" is a *false* lemma — adopting it
/// unchecked would block states on the only path to the bad state.
fn unsafe_counter() -> plic3_repro::aig::Aig {
    let mut b = plic3_repro::aig::AigBuilder::new();
    let state = b.latches(3, Some(false));
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        b.set_latch_next(*s, *n);
    }
    let bad = b.vec_equals_const(&state, 5);
    b.add_bad(bad);
    b.build()
}

#[test]
fn poisoned_foreign_lemmas_are_rejected_by_the_consecution_recheck() {
    use plic3_repro::logic::{Cube, Lit};
    let aig = unsafe_counter();
    let ts = TransitionSystem::from_aig(&aig);
    // Poison of every flavour: a lemma blocking a reachable state (fails
    // consecution), a lemma containing the initial state (fails initiation),
    // an empty cube, and a cube over a non-state variable.
    let poison_bit0: Cube = [Lit::pos(ts.latch_var(0))].into_iter().collect();
    let poison_init: Cube = ts.latch_vars().map(Lit::neg).collect();
    let poison_primed: Cube = [Lit::pos(ts.primed_var(0))].into_iter().collect();
    let batch = vec![
        (poison_bit0, 1usize),
        (poison_init, 1),
        (Cube::default(), 1),
        (poison_primed, 1),
    ];
    let mut served = Some(batch);
    let mut engine = Ic3::new(ts, Config::ric3_like());
    engine.set_lemma_source(move |buf| {
        if let Some(batch) = served.take() {
            buf.extend(batch);
        }
    });
    let result = engine.check();
    let stats = *engine.statistics();
    assert!(
        stats.lemmas_import_rejected >= 4,
        "all four poisoned lemmas must be rejected, got {}",
        stats.lemmas_import_rejected
    );
    assert_eq!(stats.lemmas_imported, 0, "nothing poisonous was adopted");
    // The verdict is unharmed: the counter still provably reaches 5.
    let trace = result.trace().expect("counter reaches 5");
    assert!(
        plic3_repro::ic3::verify_trace(engine.ts(), &aig, trace),
        "trace must replay on the original circuit"
    );
    assert!(trace.len() >= 5);
}

#[test]
fn genuine_foreign_lemmas_pass_the_recheck_and_help() {
    use plic3_repro::logic::{Cube, Lit};
    // The safe saturating counter: "state == 7" is unreachable, and the cube
    // {b2, b1, b0} (i.e. the lemma ¬7) is inductive — a receiver must adopt
    // it after re-proving consecution locally.
    let mut b = plic3_repro::aig::AigBuilder::new();
    let state = b.latches(3, Some(false));
    let at5 = b.vec_equals_const(&state, 5);
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        let held = b.ite(at5, *s, *n);
        b.set_latch_next(*s, held);
    }
    let bad = b.vec_equals_const(&state, 7);
    b.add_bad(bad);
    let aig = b.build();
    let ts = TransitionSystem::from_aig(&aig);
    let genuine: Cube = ts.latch_vars().map(Lit::pos).collect(); // all-ones
    let mut served = Some(vec![(genuine, 1usize)]);
    let mut engine = Ic3::new(ts, Config::ric3_like());
    engine.set_lemma_source(move |buf| {
        if let Some(batch) = served.take() {
            buf.extend(batch);
        }
    });
    let result = engine.check();
    let stats = *engine.statistics();
    assert_eq!(stats.lemmas_imported, 1, "the sound lemma is adopted");
    let cert = result.certificate().expect("saturating counter is safe");
    plic3_repro::ic3::verify_certificate(engine.ts(), cert).expect("certificate verifies");
}

#[test]
fn portfolio_handles_trivial_and_degenerate_circuits() {
    // Bad at reset: a zero-step counterexample must win the race.
    let mut b = plic3_repro::aig::AigBuilder::new();
    let l = b.latch(Some(true));
    b.set_latch_next(l, l);
    b.add_bad(l);
    let mut portfolio = Portfolio::from_aig(&b.build(), PortfolioConfig::default());
    let outcome = portfolio.check();
    let trace = outcome.result.trace().expect("bad at reset");
    assert_eq!(trace.len(), 0);

    // No property at all: trivially safe.
    let mut b = plic3_repro::aig::AigBuilder::new();
    let l = b.latch(Some(false));
    b.set_latch_next(l, l);
    let mut portfolio = Portfolio::from_aig(&b.build(), PortfolioConfig::default());
    let outcome = portfolio.check();
    assert!(outcome.result.is_safe(), "got {:?}", outcome.result);
}

/// The determinism contract (docs/PORTFOLIO.md) with workers diversified on
/// *search* parameters: verdicts are pinned to the ground truth on the quick
/// suite across repeated runs — winners are a race and deliberately never
/// asserted. Every winning proof is re-verified independently.
#[test]
fn search_diversified_portfolio_pins_verdicts_on_quick_suite() {
    use plic3_repro::ic3::{RestartPolicy, SearchConfig};
    use plic3_repro::portfolio::{Strategy, WorkerSpec};

    fn diversified_workers() -> Vec<WorkerSpec> {
        let modern = SearchConfig::default();
        let luby = SearchConfig {
            restart: RestartPolicy::Luby,
            ..SearchConfig::default()
        };
        let no_chrono = SearchConfig {
            chrono: 0,
            rephase_interval: 1024,
            ..SearchConfig::default()
        };
        let classic = SearchConfig::classic();
        vec![
            WorkerSpec::new("bmc-modern", Strategy::Bmc { search: modern }),
            WorkerSpec::new("kind-luby", Strategy::KInduction { search: luby }),
            WorkerSpec::new(
                "ic3-modern",
                Strategy::Ic3(Config::ric3_like().with_lemma_prediction(true)),
            ),
            WorkerSpec::new(
                "ic3-luby",
                Strategy::Ic3(Config::ric3_like().with_search(luby)),
            ),
            WorkerSpec::new(
                "ic3-no-chrono",
                Strategy::Ic3(
                    Config::ic3ref_like()
                        .with_lemma_prediction(true)
                        .with_search(no_chrono),
                ),
            ),
            WorkerSpec::new(
                "ic3-classic",
                Strategy::Ic3(Config::ric3_like().with_search(classic)),
            ),
        ]
    }

    for bench in &Suite::quick() {
        let expect_safe = matches!(bench.expected(), ExpectedResult::Safe);
        for round in 0..2 {
            let config = PortfolioConfig {
                limits: plic3_repro::ic3::Limits {
                    max_time: Some(Duration::from_secs(60)),
                    ..plic3_repro::ic3::Limits::default()
                },
                ..PortfolioConfig::default()
            };
            let mut portfolio =
                Portfolio::from_aig(bench.aig(), config).with_workers(diversified_workers());
            let outcome = portfolio.check();
            match &outcome.result {
                PortfolioResult::Safe(proof) => {
                    assert!(
                        expect_safe,
                        "{} round {round}: bogus Safe (winner {:?})",
                        bench.name(),
                        outcome.winner_label()
                    );
                    verify_safety_proof(portfolio.ts(), proof).unwrap_or_else(|e| {
                        panic!("{} round {round}: unverifiable proof: {e}", bench.name())
                    });
                }
                PortfolioResult::Unsafe(trace) => {
                    assert!(
                        !expect_safe,
                        "{} round {round}: bogus Unsafe (winner {:?})",
                        bench.name(),
                        outcome.winner_label()
                    );
                    let ts = TransitionSystem::from_aig(bench.aig());
                    assert!(
                        trace.replay_on_aig(&ts, bench.aig()),
                        "{} round {round}: non-replayable trace",
                        bench.name()
                    );
                }
                PortfolioResult::Unknown(reason) => panic!(
                    "{} round {round}: no verdict on a quick-suite instance ({reason})",
                    bench.name()
                ),
            }
        }
    }
}
