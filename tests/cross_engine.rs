//! Cross-engine integration tests: IC3 (all configurations), BMC and
//! k-induction must agree with each other and with the ground truth of the
//! benchmark suite, and every verdict must come with an independently verified
//! certificate or counterexample.

use plic3_repro::benchmarks::{ExpectedResult, Suite};
use plic3_repro::bmc::{Bmc, BmcResult, KInduction};
use plic3_repro::ic3::{verify_certificate, verify_trace, Config, Ic3};

fn all_configs() -> Vec<(&'static str, Config)> {
    vec![
        ("ric3", Config::ric3_like()),
        ("ric3-pl", Config::ric3_like().with_lemma_prediction(true)),
        ("ic3ref", Config::ic3ref_like()),
        (
            "ic3ref-pl",
            Config::ic3ref_like().with_lemma_prediction(true),
        ),
        ("cav23", Config::cav23_like()),
        ("pdr", Config::pdr_like()),
    ]
}

#[test]
fn ic3_matches_ground_truth_on_quick_suite_for_every_configuration() {
    for bench in &Suite::quick() {
        for (name, config) in all_configs() {
            let mut engine = Ic3::new(bench.ts(), config);
            let result = engine.check();
            match bench.expected() {
                ExpectedResult::Safe => {
                    let cert = result.certificate().unwrap_or_else(|| {
                        panic!("{name} failed to prove {}: {result}", bench.name())
                    });
                    verify_certificate(engine.ts(), cert).unwrap_or_else(|e| {
                        panic!("{name} certificate for {} is bogus: {e}", bench.name())
                    });
                }
                ExpectedResult::Unsafe { min_depth } => {
                    let trace = result.trace().unwrap_or_else(|| {
                        panic!("{name} failed to refute {}: {result}", bench.name())
                    });
                    assert!(
                        verify_trace(engine.ts(), bench.aig(), trace),
                        "{name} produced a non-replayable trace for {}",
                        bench.name()
                    );
                    if let Some(min_depth) = min_depth {
                        assert!(
                            trace.len() >= min_depth,
                            "{name} found an impossibly short counterexample for {}",
                            bench.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn bmc_confirms_every_unsafe_instance_at_its_known_depth() {
    let suite = Suite::quick();
    for bench in suite.iter().filter(|b| !b.expected().is_safe()) {
        let ts = bench.ts();
        let mut bmc = Bmc::new(&ts);
        match bmc.check(40) {
            BmcResult::Unsafe { trace, depth } => {
                assert!(trace.replay_on_aig(&ts, bench.aig()));
                if let ExpectedResult::Unsafe {
                    min_depth: Some(min_depth),
                } = bench.expected()
                {
                    assert_eq!(
                        depth,
                        min_depth,
                        "{}: BMC found depth {depth}, expected {min_depth}",
                        bench.name()
                    );
                }
            }
            other => panic!("{}: BMC says {other}", bench.name()),
        }
    }
}

#[test]
fn bmc_never_refutes_a_safe_instance() {
    for bench in Suite::quick().iter().filter(|b| b.expected().is_safe()) {
        let ts = bench.ts();
        let mut bmc = Bmc::new(&ts);
        assert!(
            !bmc.check(25).is_unsafe(),
            "{}: BMC refuted a safe instance",
            bench.name()
        );
    }
}

#[test]
fn k_induction_is_sound_on_the_quick_suite() {
    for bench in &Suite::quick() {
        let ts = bench.ts();
        let mut kind = KInduction::new(&ts);
        let result = kind.check(15);
        match bench.expected() {
            ExpectedResult::Safe => assert!(
                !result.is_unsafe(),
                "{}: k-induction refuted a safe instance",
                bench.name()
            ),
            ExpectedResult::Unsafe { .. } => assert!(
                !result.is_safe(),
                "{}: k-induction proved an unsafe instance",
                bench.name()
            ),
        }
    }
}

#[test]
fn ic3_and_bmc_agree_on_a_slice_of_the_full_suite() {
    // A deterministic slice of the full suite (every 7th instance, skipping the
    // deliberately hard large instances) keeps the test fast while still
    // crossing family boundaries.
    let suite = Suite::hwmcc_like().filter(|b| b.ts().num_latches() <= 12);
    for (i, bench) in suite.iter().enumerate() {
        if i % 7 != 0 {
            continue;
        }
        let mut engine = Ic3::new(bench.ts(), Config::ric3_like().with_lemma_prediction(true));
        let result = engine.check();
        assert_eq!(
            result.is_safe(),
            bench.expected().is_safe(),
            "wrong verdict on {}",
            bench.name()
        );
        if let Some(trace) = result.trace() {
            let ts = bench.ts();
            let mut bmc = Bmc::new(&ts);
            assert!(
                bmc.check_depth(trace.len()).is_some(),
                "BMC cannot confirm the IC3 counterexample depth for {}",
                bench.name()
            );
        }
    }
}
