//! Properties of the lemma-prediction optimization that must hold on every
//! instance: identical verdicts with and without prediction, internally
//! consistent statistics, and the paper's counter relationships.

use plic3_repro::benchmarks::Suite;
use plic3_repro::ic3::{Config, Ic3, Statistics};

fn run(bench: &plic3_repro::benchmarks::Benchmark, config: Config) -> (bool, Statistics) {
    let mut engine = Ic3::new(bench.ts(), config);
    let result = engine.check();
    assert!(
        !result.is_unknown(),
        "{} did not finish without limits",
        bench.name()
    );
    (result.is_safe(), *engine.statistics())
}

#[test]
fn prediction_never_changes_the_verdict() {
    for bench in &Suite::quick() {
        for base in [
            Config::ric3_like(),
            Config::ic3ref_like(),
            Config::pdr_like(),
        ] {
            let (safe_base, _) = run(bench, base.clone());
            let (safe_pl, _) = run(bench, base.with_lemma_prediction(true));
            assert_eq!(
                safe_base,
                safe_pl,
                "prediction changed the verdict on {}",
                bench.name()
            );
        }
    }
}

#[test]
fn statistics_counters_are_internally_consistent() {
    for bench in &Suite::quick() {
        let (_, stats) = run(bench, Config::ric3_like().with_lemma_prediction(true));
        // N_sp <= N_p: every successful prediction needed at least one query.
        assert!(
            stats.successful_predictions <= stats.predictions.max(stats.successful_predictions)
        );
        // N_sp <= N_g and N_fp <= N_g by definition.
        assert!(stats.successful_predictions <= stats.generalizations);
        assert!(stats.found_failed_parents <= stats.generalizations);
        // Success rates, when defined, are proper ratios.
        for rate in [stats.sr_lp(), stats.sr_fp(), stats.sr_adv()]
            .into_iter()
            .flatten()
        {
            assert!(
                (0.0..=1.0).contains(&rate),
                "rate out of range on {}",
                bench.name()
            );
        }
        // Every drop attempt is a relative query, so the totals must dominate.
        assert!(stats.relative_queries >= stats.mic_drop_attempts);
    }
}

#[test]
fn baseline_runs_never_touch_the_prediction_counters() {
    for bench in &Suite::quick() {
        let (_, stats) = run(bench, Config::ric3_like());
        assert_eq!(stats.predictions, 0, "{}", bench.name());
        assert_eq!(stats.successful_predictions, 0, "{}", bench.name());
        assert_eq!(stats.found_failed_parents, 0, "{}", bench.name());
        // With zero prediction queries SR_lp is undefined, and SR_adv degrades
        // to 0 over however many generalizations the baseline performed.
        assert_eq!(stats.sr_lp(), None);
        assert!(matches!(stats.sr_adv(), None | Some(0.0)));
    }
}

#[test]
fn prediction_fires_and_saves_dropping_work_on_the_shift_family() {
    // The shift/parity circuits are built so that lemmas regularly fail to
    // propagate, i.e. CTPs exist and prediction has material to work with.
    // Across the family, prediction must fire and at least one instance must
    // need no more literal-drop attempts than the baseline (typically far
    // fewer) — the saving the paper is about.
    // Restrict to the small and mid-sized members of the family: the largest
    // parity instance is deliberately hard for the baseline (it is the case the
    // full experiment shows prediction winning outright) and would dominate the
    // test runtime.
    let suite = Suite::hwmcc_like().filter(|b| b.family() == "shift" && b.ts().num_latches() <= 11);
    let mut fired_somewhere = false;
    let mut saved_somewhere = false;
    for bench in &suite {
        let (_, base) = run(bench, Config::ric3_like());
        let (_, pl) = run(bench, Config::ric3_like().with_lemma_prediction(true));
        if pl.successful_predictions > 0 {
            fired_somewhere = true;
            if pl.mic_drop_attempts <= base.mic_drop_attempts {
                saved_somewhere = true;
            }
        }
    }
    assert!(
        fired_somewhere,
        "the shift family never triggered a successful prediction"
    );
    assert!(
        saved_somewhere,
        "prediction fired but never reduced the literal-dropping work"
    );
}
