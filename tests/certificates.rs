//! End-to-end certificate checking: every `Safe` verdict must carry an
//! invariant certificate that an *independent* checker accepts on the
//! **original, pre-preprocessing** circuit, and every UNSAT-backed claim of
//! the bounded engines (BMC refutations, k-induction base and step cases)
//! must carry a DRAT proof the backward checker accepts.
//!
//! The DRAT halves of these tests are self-gating: `Solver::proof()` (and the
//! engines' proof accessors) return `None` unless the crate is built with
//! `--features proof-log`, so the same suite runs on the default feature set
//! (certificates only) and at full strength under
//! `cargo test --features proof-log`. The checker's own SAT queries are
//! DRAT-checked through [`CheckOptions::drat`] under the same gate.
//!
//! Scaled by `PLIC3_FUZZ_SCALE` like the other fuzz-flavoured suites.

use plic3_repro::benchmarks::families::random::{random_circuit, RandomCircuitConfig};
use plic3_repro::benchmarks::Suite;
use plic3_repro::bmc::{Bmc, KInduction, KInductionResult};
use plic3_repro::check::{
    check_certificate_on_original, check_unsat_proof, CertCheckError, CheckOptions,
};
use plic3_repro::ic3::{CheckResult, Config, Ic3};
use plic3_repro::logic::Clause;
use plic3_repro::prep::preprocess;
use plic3_repro::sat::proof_logging_compiled;
use plic3_repro::ts::TransitionSystem;

/// Base iteration count scaled by the `PLIC3_FUZZ_SCALE` environment
/// variable (nightly CI runs at scale 10).
fn iterations(base: u64) -> u64 {
    let scale = std::env::var("PLIC3_FUZZ_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    base * scale
}

/// Options asking for the strongest check available: the invariant
/// conditions always, plus DRAT proofs of the checker's own UNSAT queries
/// when the `proof-log` feature is compiled in.
fn strongest() -> CheckOptions {
    CheckOptions {
        stop: None,
        drat: true,
    }
}

/// Runs IC3 on the preprocessed circuit and checks the outcome's artifact on
/// the original one: certificates through the reconstruction maps, traces by
/// replay. Panics with `context` on any failure.
fn check_case(aig: &plic3_repro::aig::Aig, config: Config, context: &str) {
    let prep = preprocess(aig);
    let ts = TransitionSystem::from_aig(&prep.aig);
    let mut engine = Ic3::new(ts, config);
    match engine.check() {
        CheckResult::Safe(cert) => {
            let report = check_certificate_on_original(
                aig,
                &prep.reconstruction,
                engine.ts(),
                &cert,
                &strongest(),
            )
            .unwrap_or_else(|e| panic!("{context}: certificate rejected: {e}"));
            assert_eq!(report.lemmas, cert.lemmas.len(), "{context}");
            if proof_logging_compiled() {
                assert_eq!(
                    report.drat_checked, report.queries,
                    "{context}: every checker query must be DRAT-checked"
                );
            } else {
                assert_eq!(report.drat_checked, 0, "{context}");
            }
        }
        CheckResult::Unsafe(trace) => {
            assert!(
                prep.replay_on_original(engine.ts(), &trace),
                "{context}: trace does not replay on the original circuit"
            );
        }
        CheckResult::Unknown(reason) => panic!("{context}: unexpected unknown ({reason})"),
    }
}

#[test]
fn quick_suite_certificates_check_on_the_original_circuit() {
    for benchmark in Suite::quick().iter() {
        check_case(
            benchmark.aig(),
            Config::ric3_like().with_lemma_prediction(true),
            benchmark.name(),
        );
    }
}

#[test]
fn random_circuit_certificates_check_on_the_original_circuit() {
    let shape = RandomCircuitConfig {
        latches: 6,
        inputs: 2,
        gates: 24,
    };
    for seed in 0..iterations(40) {
        let aig = random_circuit(seed, shape);
        // Alternate configurations so both generalization modes produce
        // certificates that go through the checker.
        let config = if seed % 2 == 0 {
            Config::ric3_like()
        } else {
            Config::ic3ref_like().with_lemma_prediction(true)
        };
        check_case(&aig, config, &format!("seed {seed}"));
    }
}

#[test]
fn tampered_certificates_are_rejected_on_the_original_circuit() {
    let mut rejected = 0;
    for benchmark in Suite::quick().iter() {
        let prep = preprocess(benchmark.aig());
        let ts = TransitionSystem::from_aig(&prep.aig);
        let mut engine = Ic3::new(ts, Config::ric3_like());
        let CheckResult::Safe(mut cert) = engine.check() else {
            continue;
        };
        if cert.lemmas.is_empty() {
            continue; // nothing to tamper with: the property itself is inductive
        }
        // Negating every literal of a lemma yields a clause that is almost
        // surely not inductive — and if it happened to be, it would fail
        // initiation instead. Either way the checker must reject.
        cert.lemmas[0] = Clause::from_lits(cert.lemmas[0].iter().map(|l| !l));
        let err = check_certificate_on_original(
            benchmark.aig(),
            &prep.reconstruction,
            engine.ts(),
            &cert,
            &strongest(),
        )
        .expect_err("a tampered certificate must be rejected");
        assert!(
            matches!(err, CertCheckError::Invalid(_)),
            "{}: {err}",
            benchmark.name()
        );
        rejected += 1;
    }
    assert!(
        rejected > 0,
        "the quick suite has safe instances with lemmas"
    );
}

#[test]
fn bmc_refutations_carry_checkable_drat_proofs() {
    const DEPTH: usize = 10;
    let mut checked = 0;
    for benchmark in Suite::quick().iter() {
        let ts = benchmark.ts();
        let mut bmc = Bmc::with_proof_tracing(&ts);
        if bmc.check(DEPTH).is_unsafe() {
            // A SAT answer ends the run; its witness is covered by the trace
            // replay tests, not by a refutation proof.
            continue;
        }
        // Every depth came back clean, so the last query — bad at frame
        // DEPTH under the unrolled transition relation — was UNSAT and the
        // cumulative proof must derive its refutation.
        if let Some(proof) = bmc.proof() {
            let assumptions = bmc.bad_assumptions_at(DEPTH);
            check_unsat_proof(proof, &assumptions)
                .unwrap_or_else(|e| panic!("{}: BMC DRAT check failed: {e}", benchmark.name()));
            checked += 1;
        }
    }
    if proof_logging_compiled() {
        assert!(checked > 0, "the quick suite has safe instances");
    } else {
        assert_eq!(checked, 0, "no proofs exist without the proof-log feature");
    }
}

#[test]
fn k_induction_safe_verdicts_carry_checkable_drat_proofs() {
    let mut checked = 0;
    for benchmark in Suite::quick().iter() {
        let ts = benchmark.ts();
        let mut kind = KInduction::with_proof_tracing(&ts);
        let KInductionResult::Safe { k } = kind.check(20) else {
            continue;
        };
        // A Safe { k } claim rests on two refutations: no counterexample of
        // length k (base case) and no k-good-states-then-bad path (step
        // case). Both must DRAT-check under the exact assumptions used.
        if let Some(proof) = kind.base_proof() {
            let assumptions = kind.base_assumptions_at(k);
            check_unsat_proof(proof, &assumptions).unwrap_or_else(|e| {
                panic!("{}: base-case DRAT check failed: {e}", benchmark.name())
            });
            checked += 1;
        }
        if let Some(proof) = kind.step_proof() {
            let assumptions = kind.step_assumptions_at(k);
            check_unsat_proof(proof, &assumptions).unwrap_or_else(|e| {
                panic!("{}: step-case DRAT check failed: {e}", benchmark.name())
            });
            checked += 1;
        }
    }
    if proof_logging_compiled() {
        assert!(checked > 0, "the quick suite has k-inductive instances");
    } else {
        assert_eq!(checked, 0, "no proofs exist without the proof-log feature");
    }
}

#[test]
fn random_bounded_refutations_carry_checkable_drat_proofs() {
    if !proof_logging_compiled() {
        // The bounded engines produce no proofs on the default feature set;
        // the `_carry_checkable_drat_proofs` tests above already pin the
        // accessors to `None` in that build.
        return;
    }
    const DEPTH: usize = 8;
    let shape = RandomCircuitConfig {
        latches: 5,
        inputs: 2,
        gates: 18,
    };
    for seed in 1000..1000 + iterations(40) {
        let aig = random_circuit(seed, shape);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::with_proof_tracing(&ts);
        if bmc.check(DEPTH).is_unsafe() {
            continue;
        }
        let proof = bmc.proof().expect("proof-log is compiled in");
        let assumptions = bmc.bad_assumptions_at(DEPTH);
        check_unsat_proof(proof, &assumptions)
            .unwrap_or_else(|e| panic!("seed {seed}: BMC DRAT check failed: {e}"));
    }
}
