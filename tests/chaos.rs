//! The deterministic chaos suite (`--features fault-injection`).
//!
//! Every test here replays seeded [`FaultPlan`] schedules — injected panics,
//! simulated memory exhaustion, spurious cancellations — against BMC,
//! k-induction, IC3 and the portfolio, and asserts the fault-containment
//! contract of `docs/ROBUSTNESS.md`:
//!
//! * **zero wrong verdicts** — a conclusive answer under injection is still
//!   correct and independently verifiable,
//! * **zero hangs** — every run degrades into a *reported* outcome,
//! * **zero process aborts** — injected panics unwind into `catch_unwind`
//!   (single engines) or the portfolio supervisor, never out of the process.
//!
//! The single engines are allowed to panic — containment is their *caller's*
//! job (the portfolio supervisor, the harness case loop) — so the drivers
//! here wrap them in `catch_unwind` and insist the payload is the injected
//! marker, never a real bug. `Portfolio::check` gets no such indulgence: it
//! must never panic, whatever is injected into its workers.
//!
//! Scaled by `PLIC3_FUZZ_SCALE` like the other fuzz-flavoured suites (the
//! nightly CI profile sets it to 10).

#![cfg(feature = "fault-injection")]

use plic3_repro::aig::{Aig, AigBuilder};
use plic3_repro::bmc::{Bmc, BmcDepthStatus, KInduction, KInductionResult};
use plic3_repro::check::{check_certificate, CheckOptions};
use plic3_repro::harness::{
    run_case, run_experiment_with_workers, Configuration, RunnerConfig, Verdict,
};
use plic3_repro::ic3::{
    verify_trace, CheckResult, Config, FaultKind, FaultPlan, FaultSite, Ic3, Limits,
    ResourceBudget, StopFlag, UnknownReason, INJECTED_PANIC,
};
use plic3_repro::logic::{Clause, Cube, Lit};
use plic3_repro::portfolio::{
    verify_safety_proof, vet_safety_outcome, Portfolio, PortfolioConfig, PortfolioResult,
    SafetyProof, Strategy, WorkerOutcome, WorkerSpec, WorkerStatus,
};
use plic3_repro::ts::TransitionSystem;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

/// Base iteration count scaled by the `PLIC3_FUZZ_SCALE` environment
/// variable (the nightly CI profile sets it to 10).
fn iterations(base: u64) -> u64 {
    let scale = std::env::var("PLIC3_FUZZ_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    base * scale
}

/// Silences the default panic-hook backtrace spam for *injected* panics
/// (hundreds fire per chaos run); real panics keep the standard report.
fn silence_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains(INJECTED_PANIC) {
                previous(info);
            }
        }));
    });
}

/// `true` when a payload caught by `catch_unwind` is the injected marker —
/// anything else escaping an engine under chaos is a genuine bug.
fn is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .is_some_and(|s| s.contains(INJECTED_PANIC))
}

/// A safe one-hot token ring (bad: two adjacent tokens).
fn token_ring(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(cells[i], cells[(i + n - 1) % n]);
    }
    let mut bads = Vec::new();
    for i in 0..n {
        let pair = b.and(cells[i], cells[(i + 1) % n]);
        bads.push(pair);
    }
    let bad = b.or_many(&bads);
    b.add_bad(bad);
    b.build()
}

/// An unsafe free-running counter (bad when the counter reaches `bad_at`).
fn unsafe_counter(bits: usize, bad_at: u64) -> Aig {
    let mut b = AigBuilder::new();
    let state = b.latches(bits, Some(false));
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        b.set_latch_next(*s, *n);
    }
    let bad = b.vec_equals_const(&state, bad_at);
    b.add_bad(bad);
    b.build()
}

// ---------------------------------------------------------------------------
// Chaos drivers — one per engine. Each runs to completion under the given
// fault plan and asserts the containment contract.
// ---------------------------------------------------------------------------

fn chaos_bmc(aig: &Aig, expect_safe: bool, faults: FaultPlan) {
    let ts = TransitionSystem::from_aig(aig);
    let stop = StopFlag::new();
    let budget = ResourceBudget::unlimited();
    let mut bmc = Bmc::new(&ts);
    bmc.set_stop_flag(stop.clone());
    bmc.set_budget(budget.clone());
    bmc.set_fault_plan(faults);
    let run = catch_unwind(AssertUnwindSafe(|| {
        // Depth-bounded like the portfolio's sequential fallback: BMC cannot
        // conclude safety, so on the safe ring it must stop somewhere.
        for depth in 0..=40usize {
            if stop.is_stopped() || budget.is_exhausted() {
                return None;
            }
            match bmc.check_depth_status(depth) {
                BmcDepthStatus::Unsafe(trace) => return Some(trace),
                BmcDepthStatus::Clean => {}
                BmcDepthStatus::Unknown => return None,
            }
        }
        None
    }));
    match run {
        Err(payload) => assert!(is_injected(&*payload), "BMC leaked a real panic"),
        Ok(Some(trace)) => {
            assert!(!expect_safe, "bogus BMC counterexample under chaos");
            assert!(trace.replay_on_aig(&ts, aig), "non-replayable chaos trace");
        }
        Ok(None) => {}
    }
}

fn chaos_kind(aig: &Aig, expect_safe: bool, faults: FaultPlan) {
    let ts = TransitionSystem::from_aig(aig);
    let stop = StopFlag::new();
    let budget = ResourceBudget::unlimited();
    let mut kind = KInduction::new(&ts);
    kind.set_stop_flag(stop);
    kind.set_budget(budget);
    kind.set_fault_plan(faults);
    match catch_unwind(AssertUnwindSafe(|| kind.check(25))) {
        Err(payload) => assert!(is_injected(&*payload), "k-induction leaked a real panic"),
        Ok(KInductionResult::Safe { .. }) => {
            assert!(expect_safe, "bogus k-induction Safe under chaos");
        }
        Ok(KInductionResult::Unsafe { trace, .. }) => {
            assert!(!expect_safe, "bogus k-induction Unsafe under chaos");
            assert!(trace.replay_on_aig(&ts, aig), "non-replayable chaos trace");
        }
        Ok(KInductionResult::Unknown { .. }) => {}
    }
}

fn chaos_ic3(aig: &Aig, expect_safe: bool, faults: FaultPlan) {
    let config = Config::ric3_like()
        .with_budget(ResourceBudget::unlimited())
        .with_fault_plan(faults);
    let mut engine = Ic3::from_aig(aig, config);
    let ts = engine.ts().clone();
    match catch_unwind(AssertUnwindSafe(|| engine.check())) {
        Err(payload) => assert!(is_injected(&*payload), "IC3 leaked a real panic"),
        Ok(CheckResult::Safe(cert)) => {
            assert!(expect_safe, "bogus IC3 Safe under chaos");
            // The *independent* checker (fresh solvers, no fault plan of its
            // own) re-establishes the certificate on the circuit: a faulted
            // run either emits no certificate or a fully checkable one.
            check_certificate(aig, &cert, &CheckOptions::default())
                .expect("chaos certificate passes the independent checker");
        }
        Ok(CheckResult::Unsafe(trace)) => {
            assert!(!expect_safe, "bogus IC3 Unsafe under chaos");
            assert!(verify_trace(&ts, aig, &trace), "non-replayable chaos trace");
        }
        Ok(CheckResult::Unknown(_)) => {}
    }
}

fn chaos_portfolio(aig: &Aig, expect_safe: bool, faults: FaultPlan) {
    // No catch_unwind here: whatever is injected into the workers,
    // `Portfolio::check` itself must never panic — that is the tentpole
    // containment contract.
    let config = PortfolioConfig {
        limits: Limits {
            max_time: Some(Duration::from_secs(60)),
            ..Limits::default()
        },
        faults,
        ..PortfolioConfig::default()
    };
    let mut portfolio = Portfolio::from_aig(aig, config);
    let outcome = portfolio.check();
    match &outcome.result {
        PortfolioResult::Safe(proof) => {
            assert!(expect_safe, "bogus portfolio Safe under chaos");
            verify_safety_proof(portfolio.ts(), proof).expect("chaos proof verifies");
        }
        PortfolioResult::Unsafe(trace) => {
            assert!(!expect_safe, "bogus portfolio Unsafe under chaos");
            let ts = TransitionSystem::from_aig(aig);
            assert!(trace.replay_on_aig(&ts, aig), "non-replayable chaos trace");
        }
        PortfolioResult::Unknown(_) => {}
    }
}

/// The headline sweep: hundreds of seeded fault schedules (≥ 200 at scale 1,
/// ten times that in the nightly profile) across all four drivers and both
/// polarities of ground truth. Completion of this test *is* the zero-hang
/// assertion; the drivers assert the rest.
#[test]
fn seeded_fault_schedules_never_corrupt_a_verdict() {
    silence_injected_panics();
    let cases = [(token_ring(5), true), (unsafe_counter(3, 6), false)];
    let mut schedules = 0u64;
    for _ in 0..iterations(25) {
        for (aig, expect_safe) in &cases {
            chaos_bmc(aig, *expect_safe, FaultPlan::seeded(schedules));
            chaos_kind(aig, *expect_safe, FaultPlan::seeded(schedules + 1));
            chaos_ic3(aig, *expect_safe, FaultPlan::seeded(schedules + 2));
            chaos_portfolio(aig, *expect_safe, FaultPlan::seeded(schedules + 3));
            schedules += 4;
        }
    }
    assert!(
        schedules >= 200,
        "the chaos suite replays at least 200 seeded schedules, got {schedules}"
    );
}

// ---------------------------------------------------------------------------
// Targeted containment tests — one deterministic fault each.
// ---------------------------------------------------------------------------

/// An injected memory-out on the very first propagation unwinds to
/// `Unknown(MemoryOut)` — graceful degradation, never an allocator abort.
#[test]
fn injected_memout_degrades_to_a_memory_out_verdict() {
    let config = Config::ric3_like()
        .with_budget(ResourceBudget::unlimited())
        .with_fault_plan(FaultPlan::single(
            FaultSite::Propagate,
            FaultKind::MemOut,
            0,
        ));
    let mut engine = Ic3::from_aig(&token_ring(5), config);
    assert_eq!(
        engine.check(),
        CheckResult::Unknown(UnknownReason::MemoryOut)
    );
    // A faulted, inconclusive run must not leave certificate debris behind.
    assert_eq!(engine.statistics().certificate_lemmas, 0);
}

/// An injected spurious cancellation surfaces as `Unknown(Cancelled)`.
#[test]
fn injected_cancel_surfaces_as_cancelled() {
    let config = Config::ric3_like().with_fault_plan(FaultPlan::single(
        FaultSite::Propagate,
        FaultKind::Cancel,
        0,
    ));
    let mut engine = Ic3::from_aig(&token_ring(5), config);
    assert_eq!(
        engine.check(),
        CheckResult::Unknown(UnknownReason::Cancelled)
    );
    assert_eq!(engine.statistics().certificate_lemmas, 0);
}

/// A worker panicking mid-race never kills `Portfolio::check`: the supervisor
/// records the crash, the race continues, and the verdict stays correct and
/// verifiable. Repeated because on these small instances the race can finish
/// before any worker reaches the faulted site — across ten rounds the fault
/// must land (and be contained) at least once.
#[test]
fn injected_worker_panic_never_kills_the_race() {
    silence_injected_panics();
    let cases = [(token_ring(9), true), (unsafe_counter(4, 12), false)];
    let mut contained = 0usize;
    for round in 0..10 {
        let (aig, expect_safe) = &cases[round % cases.len()];
        let faults = FaultPlan::single(FaultSite::Propagate, FaultKind::Panic, 0);
        let config = PortfolioConfig {
            faults: faults.clone(),
            ..PortfolioConfig::default()
        };
        let mut portfolio = Portfolio::from_aig(aig, config);
        let outcome = portfolio.check();
        match &outcome.result {
            PortfolioResult::Safe(proof) => {
                assert!(expect_safe, "round {round}: bogus Safe");
                verify_safety_proof(portfolio.ts(), proof).expect("proof verifies");
            }
            PortfolioResult::Unsafe(trace) => {
                assert!(!expect_safe, "round {round}: bogus Unsafe");
                let ts = TransitionSystem::from_aig(aig);
                assert!(trace.replay_on_aig(&ts, aig), "trace replays");
            }
            PortfolioResult::Unknown(reason) => {
                panic!("round {round}: one crashed worker lost the whole race ({reason})")
            }
        }
        // A single scheduled fault fires at most once.
        assert!(outcome.worker_crashes() <= 1);
        assert!(outcome.worker_restarts() <= outcome.worker_crashes());
        if outcome.worker_crashes() == 1 {
            let report = outcome
                .workers
                .iter()
                .find(|r| r.crash.is_some())
                .expect("a counted crash has a report");
            assert!(
                report.crash.as_deref().unwrap().contains(INJECTED_PANIC),
                "the recorded payload is the injected marker"
            );
            contained += 1;
        } else {
            assert!(
                faults.is_active(),
                "round {round}: the fault fired but no crash was recorded"
            );
        }
    }
    assert!(
        contained >= 1,
        "ten rounds and the injected panic never landed in a worker"
    );
}

/// A slot whose supervised retry panics again retires as `Crashed` — and even
/// a race of *only* crashed workers ends in a reported `Unknown`, not an
/// abort. The single-worker portfolio makes the restart deterministic: no
/// competitor can win (and cancel the slot) before the supervisor retries.
#[test]
fn a_twice_crashed_slot_retires_without_aborting_the_race() {
    silence_injected_panics();
    let faults = FaultPlan::from_schedule(&[
        (FaultSite::Propagate, FaultKind::Panic, 0),
        (FaultSite::Propagate, FaultKind::Panic, 0),
    ]);
    let config = PortfolioConfig {
        faults,
        ..PortfolioConfig::default()
    };
    let mut portfolio =
        Portfolio::from_aig(&token_ring(5), config).with_workers(vec![WorkerSpec::new(
            "lone-ic3",
            Strategy::Ic3(Config::ric3_like()),
        )]);
    let outcome = portfolio.check();
    assert!(
        matches!(outcome.result, PortfolioResult::Unknown(_)),
        "a fully crashed race still reports an outcome, got {:?}",
        outcome.result
    );
    let report = &outcome.workers[0];
    assert_eq!(report.status, WorkerStatus::Crashed);
    assert!(report.restarted, "the supervisor retried the slot once");
    assert!(
        report.crash.as_deref().unwrap().contains(INJECTED_PANIC),
        "the retiring crash payload is recorded"
    );
    assert_eq!(outcome.worker_crashes(), 1);
    assert_eq!(outcome.worker_restarts(), 1);
}

/// A crash during a supervised retry that *changed nothing else*: the fire-
/// once bookkeeping is shared between the original run and the retry, so a
/// fault consumed by the first attempt cannot re-trip the fallback. One
/// scheduled panic ⇒ the retry completes and the slot still wins.
#[test]
fn a_supervised_retry_survives_the_consumed_fault() {
    silence_injected_panics();
    let faults = FaultPlan::single(FaultSite::Propagate, FaultKind::Panic, 0);
    let config = PortfolioConfig {
        faults,
        ..PortfolioConfig::default()
    };
    let mut portfolio =
        Portfolio::from_aig(&token_ring(7), config).with_workers(vec![WorkerSpec::new(
            "lone-ic3",
            Strategy::Ic3(Config::ric3_like()),
        )]);
    let outcome = portfolio.check();
    let proof = match &outcome.result {
        PortfolioResult::Safe(proof) => proof,
        other => panic!("the retried slot should finish the proof, got {other:?}"),
    };
    verify_safety_proof(portfolio.ts(), proof).expect("the retry's proof verifies");
    let report = &outcome.workers[0];
    assert_eq!(report.status, WorkerStatus::Safe);
    assert!(report.restarted);
    assert!(report.crash.is_some(), "the first crash stays on record");
    assert_eq!(outcome.worker_crashes(), 1);
    assert_eq!(outcome.worker_restarts(), 1);
}

/// The certificate side of the containment contract, satellite to the proof
/// pipeline: a poisoned certificate fed into the portfolio's winner-claim
/// vetting gate ([`PortfolioConfig::certify`] → [`vet_safety_outcome`]) is
/// demoted to a worker crash, never a `Safe` verdict…
#[test]
fn a_poisoned_certificate_is_demoted_at_the_winner_gate() {
    let aig = token_ring(7);
    let ts = TransitionSystem::from_aig(&aig);
    let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
    let CheckResult::Safe(mut cert) = engine.check() else {
        panic!("the ring is safe");
    };
    // The exact payload a compromised or fault-corrupted worker would race
    // with: a genuine certificate with one lemma flipped.
    cert.lemmas[0] = Clause::from_lits(cert.lemmas[0].iter().map(|l| !l));
    let poisoned = WorkerOutcome::Safe(SafetyProof::Invariant(cert));
    let WorkerOutcome::Crashed { payload } = vet_safety_outcome(&ts, poisoned) else {
        panic!("a poisoned certificate must not survive the winner gate");
    };
    assert!(payload.starts_with("proof rejected:"), "{payload}");
}

/// …and a *certified* race under seeded fault schedules still concludes: the
/// vetting gate rejects corrupted proofs, injected panics are contained, and
/// whatever `Safe` emerges is independently re-checkable. (An all-workers-
/// faulted round may end `Unknown`; that is containment, not a failure.)
#[test]
fn certified_races_survive_fault_schedules() {
    silence_injected_panics();
    let aig = token_ring(7);
    let mut concluded = 0usize;
    for round in 0..iterations(10) {
        let config = PortfolioConfig {
            certify: true,
            limits: Limits {
                max_time: Some(Duration::from_secs(60)),
                ..Limits::default()
            },
            faults: FaultPlan::seeded(0x9e11 + round),
            ..PortfolioConfig::default()
        };
        let mut portfolio = Portfolio::from_aig(&aig, config);
        let outcome = portfolio.check();
        match &outcome.result {
            PortfolioResult::Safe(proof) => {
                verify_safety_proof(portfolio.ts(), proof).expect("the vetted winner re-checks");
                concluded += 1;
            }
            PortfolioResult::Unsafe(_) => panic!("round {round}: bogus Unsafe under chaos"),
            PortfolioResult::Unknown(_) => {}
        }
    }
    assert!(
        concluded >= 1,
        "every certified round was faulted into Unknown"
    );
}

/// A poisoned foreign lemma whose *import* panics the engine: deterministic
/// at the engine level (the payload is the injected marker, proving the
/// importer is the panic site)…
#[test]
fn a_poisoned_lemma_import_panics_the_bare_engine() {
    silence_injected_panics();
    let aig = token_ring(7);
    let ts = TransitionSystem::from_aig(&aig);
    let genuine: Cube = ts.latch_vars().map(Lit::pos).collect();
    let mut served = Some(vec![(genuine, 1usize)]);
    let config = Config::ric3_like().with_fault_plan(FaultPlan::single(
        FaultSite::LemmaImport,
        FaultKind::Panic,
        0,
    ));
    let mut engine = Ic3::new(ts, config);
    engine.set_lemma_source(move |buf| {
        if let Some(batch) = served.take() {
            buf.extend(batch);
        }
    });
    let payload = catch_unwind(AssertUnwindSafe(|| engine.check()))
        .expect_err("the poisoned import must panic the bare engine");
    assert!(is_injected(&*payload), "panic site is the lemma importer");
}

/// …and contained at the portfolio level: two IC3 workers exchanging lemmas,
/// the importer panics mid-drain, the race still produces the (verified)
/// verdict and counts the crash. Repeated because lemma traffic is a race —
/// across the rounds the importer must actually trip at least once.
#[test]
fn a_poisoned_lemma_import_cannot_flip_the_portfolio_verdict() {
    silence_injected_panics();
    let aig = token_ring(9);
    let mut contained = 0usize;
    for round in 0..10 {
        let faults = FaultPlan::single(FaultSite::LemmaImport, FaultKind::Panic, 0);
        let config = PortfolioConfig {
            faults: faults.clone(),
            ..PortfolioConfig::default()
        };
        let workers = vec![
            WorkerSpec::new(
                "ic3-a",
                Strategy::Ic3(Config::ric3_like().with_lemma_prediction(true)),
            ),
            WorkerSpec::new("ic3-b", Strategy::Ic3(Config::ic3ref_like())),
        ];
        let mut portfolio = Portfolio::from_aig(&aig, config).with_workers(workers);
        let outcome = portfolio.check();
        match &outcome.result {
            PortfolioResult::Safe(proof) => {
                verify_safety_proof(portfolio.ts(), proof).expect("proof verifies")
            }
            other => panic!("round {round}: the ring must still be proved, got {other:?}"),
        }
        contained += outcome.worker_crashes();
        assert!(
            outcome.worker_crashes() >= 1 || faults.is_active(),
            "round {round}: the import fault fired without a recorded crash"
        );
    }
    assert!(
        contained >= 1,
        "ten rounds of lemma exchange and the poisoned import never fired"
    );
}

// ---------------------------------------------------------------------------
// Harness-level containment: faults injected through `RunnerConfig`.
// ---------------------------------------------------------------------------

/// A cancellation raised *during preprocessing* (deterministically, at the
/// second round edge — exactly where a watchdog firing mid-prep lands): the
/// case winds down to `Unknown` well inside its deadline instead of running
/// the engine to completion.
#[test]
fn a_cancellation_during_preprocessing_ends_the_case_within_its_deadline() {
    let bench_suite = plic3_repro::benchmarks::Suite::quick();
    let bench = bench_suite.iter().next().expect("quick suite is non-empty");
    let runner = RunnerConfig {
        timeout: Duration::from_secs(30),
        preprocess: true,
        faults: FaultPlan::single(FaultSite::PrepRound, FaultKind::Cancel, 1),
        ..RunnerConfig::default()
    };
    let result = run_case(bench, Configuration::Ric3, &runner);
    assert_eq!(result.verdict, Verdict::Unknown);
    assert!(result.correct, "a cancelled case is never a wrong verdict");
    assert!(
        result.runtime < Duration::from_secs(10),
        "mid-prep cancellation must end the case promptly, took {:?}",
        result.runtime
    );
}

/// A panic during preprocessing is contained by the experiment loop: the case
/// ends `crashed` (payload recorded), every other case still runs, and the
/// suite counts zero wrong verdicts.
#[test]
fn a_preprocessing_panic_is_contained_at_the_case_level() {
    silence_injected_panics();
    let suite = plic3_repro::benchmarks::Suite::quick();
    let runner = RunnerConfig {
        timeout: Duration::from_secs(30),
        preprocess: true,
        faults: FaultPlan::single(FaultSite::PrepRound, FaultKind::Panic, 0),
        ..RunnerConfig::default()
    };
    let data = run_experiment_with_workers(&suite, &[Configuration::Ric3], &runner, 1);
    assert_eq!(data.results.len(), suite.len(), "every case still ran");
    assert_eq!(data.wrong_verdicts(), 0);
    assert_eq!(data.crashed(), 1, "exactly one case ate the injected panic");
    let crashed = data
        .results
        .iter()
        .find(|r| r.verdict == Verdict::Crashed)
        .expect("the crashed case is reported");
    assert!(
        crashed.crash.as_deref().unwrap().contains(INJECTED_PANIC),
        "the contained payload is the injected marker"
    );
}
