//! Engine-level cancellation soundness: stop flags tripped *deterministically
//! from inside the engines* (via the lemma-export hook) and randomized
//! conflict budgets must only ever surface as `Unknown` — never as a verdict
//! the engine did not finish deriving. This is the engine-side counterpart of
//! `crates/sat/tests/cancellation_soundness.rs` and the regression guard for
//! the PR 1 k-induction bug (concluding Safe from an interrupted base case).

use plic3_repro::aig::{Aig, AigBuilder};
use plic3_repro::bmc::{KInduction, KInductionResult};
use plic3_repro::ic3::{
    verify_certificate, verify_trace, CheckResult, Config, Ic3, RestartPolicy, SearchConfig,
    StopFlag, UnknownReason,
};
use plic3_repro::logic::SplitMix64 as Rng;
use plic3_repro::ts::TransitionSystem;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Base iteration count scaled by the `PLIC3_FUZZ_SCALE` environment
/// variable (the nightly CI profile sets it to 10).
fn iterations(base: u64) -> u64 {
    let scale = std::env::var("PLIC3_FUZZ_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    base * scale
}

/// A safe one-hot token ring (bad: two adjacent tokens).
fn token_ring(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(cells[i], cells[(i + n - 1) % n]);
    }
    let mut bads = Vec::new();
    for i in 0..n {
        let pair = b.and(cells[i], cells[(i + 1) % n]);
        bads.push(pair);
    }
    let bad = b.or_many(&bads);
    b.add_bad(bad);
    b.build()
}

/// An unsafe free-running counter (bad when the counter reaches `bad_at`).
fn unsafe_counter(bits: usize, bad_at: u64) -> Aig {
    let mut b = AigBuilder::new();
    let state = b.latches(bits, Some(false));
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        b.set_latch_next(*s, *n);
    }
    let bad = b.vec_equals_const(&state, bad_at);
    b.add_bad(bad);
    b.build()
}

/// Search configurations crossing every major path: modern defaults, Luby
/// fallback, chrono off, inprocessing off.
fn search_variants() -> Vec<SearchConfig> {
    vec![
        SearchConfig::default(),
        SearchConfig {
            restart: RestartPolicy::Luby,
            ..SearchConfig::default()
        },
        SearchConfig {
            chrono: 0,
            rephase_interval: 512,
            ..SearchConfig::default()
        },
        SearchConfig::classic(),
    ]
}

/// Deterministic in-engine stop injection: the lemma-export hook raises the
/// shared flag after a fixed number of exports, so the engine is interrupted
/// at exactly the same point on every run — deep inside the blocking /
/// propagation phases, between SAT queries. The only acceptable outcomes are
/// `Unknown(Cancelled)` or a *verified* Safe certificate (when the proof
/// finishes before the Nth export ever happens).
#[test]
fn lemma_sink_trip_cancels_deterministically() {
    let aig = token_ring(9);
    let mut cancellations = 0usize;
    for search in search_variants() {
        for trip_after in [1usize, 2, 4, 8] {
            let stop = StopFlag::new();
            let config = Config::ric3_like()
                .with_search(search)
                .with_stop_flag(stop.clone());
            let mut engine = Ic3::from_aig(&aig, config);
            let exports = Arc::new(AtomicUsize::new(0));
            let counter = exports.clone();
            let raiser = stop.clone();
            engine.set_lemma_sink(move |_cube, _level| {
                if counter.fetch_add(1, Ordering::Relaxed) + 1 == trip_after {
                    raiser.stop();
                }
            });
            let result = engine.check();
            match result {
                CheckResult::Unknown(UnknownReason::Cancelled) => {
                    assert!(
                        exports.load(Ordering::Relaxed) >= trip_after,
                        "cancelled before the flag was even raised?"
                    );
                    cancellations += 1;
                }
                CheckResult::Safe(cert) => {
                    verify_certificate(engine.ts(), &cert)
                        .expect("a Safe answer under injection must still verify");
                }
                other => {
                    panic!("trip_after={trip_after} search={search:?}: injection produced {other}")
                }
            }
        }
    }
    // The injection must not be vacuous: with a trip after the very first
    // export, the engine cannot finish the ring proof, so at least some runs
    // must actually have been cancelled.
    assert!(cancellations > 0, "no run was ever cancelled");
}

/// Randomized conflict budgets across engines and search variants: the
/// verdicts that do get through must be correct (and verifiable); everything
/// else must be `Unknown`. The unsafe counter guards against a bogus `Safe`,
/// the safe ring against a bogus `Unsafe`.
#[test]
fn ic3_with_random_budgets_is_never_wrong() {
    let cases: Vec<(Aig, bool)> = vec![(token_ring(5), true), (unsafe_counter(3, 6), false)];
    let mut rng = Rng::new(0xb06e7);
    for (aig, expect_safe) in &cases {
        for search in search_variants() {
            for _ in 0..iterations(6) {
                let budget = 1 + rng.below(400);
                let config = Config::ric3_like()
                    .with_search(search)
                    .with_max_conflicts(budget);
                let mut engine = Ic3::from_aig(aig, config);
                let ts = engine.ts().clone();
                match engine.check() {
                    CheckResult::Safe(cert) => {
                        assert!(*expect_safe, "budget {budget}: bogus Safe");
                        verify_certificate(&ts, &cert).expect("certificate verifies");
                    }
                    CheckResult::Unsafe(trace) => {
                        assert!(!*expect_safe, "budget {budget}: bogus Unsafe");
                        assert!(verify_trace(&ts, aig, &trace), "trace replays");
                    }
                    CheckResult::Unknown(_) => {}
                }
            }
        }
    }
}

/// The PR 1 regression, now exercised across the new search paths: an
/// interrupted k-induction base case must never be read as "depth clean". A
/// Safe verdict from k-induction on the unsafe counter would be exactly that
/// bug resurfacing.
#[test]
fn k_induction_never_concludes_from_interrupted_queries() {
    let safe = token_ring(5);
    let unsafe_aig = unsafe_counter(3, 6);
    let safe_ts = TransitionSystem::from_aig(&safe);
    let unsafe_ts = TransitionSystem::from_aig(&unsafe_aig);
    let mut rng = Rng::new(0x14d);
    for search in search_variants() {
        for _ in 0..iterations(8) {
            let budget = 1 + rng.below(60);
            let mut kind = KInduction::new(&unsafe_ts);
            kind.set_search_config(search);
            kind.set_conflict_budget(Some(budget));
            match kind.check(20) {
                KInductionResult::Safe { .. } => {
                    panic!("budget {budget}: Safe on an unsafe counter (PR 1 bug class)")
                }
                KInductionResult::Unsafe { trace, .. } => {
                    assert!(
                        trace.replay_on_aig(&unsafe_ts, &unsafe_aig),
                        "budget {budget}: non-replayable trace"
                    );
                }
                KInductionResult::Unknown { .. } => {}
            }
            let mut kind = KInduction::new(&safe_ts);
            kind.set_search_config(search);
            kind.set_conflict_budget(Some(budget));
            if let KInductionResult::Unsafe { .. } = kind.check(20) {
                panic!("budget {budget}: Unsafe on a safe ring");
            }
        }
    }
}
