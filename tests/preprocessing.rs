//! End-to-end tests of the AIG preprocessing subsystem: the simplified
//! circuits survive AIGER round trips, the model-checking verdict is identical
//! with and without preprocessing across the benchmark families and seeded
//! random circuits, and every `Unsafe` witness found on a simplified circuit
//! replays as a property violation on the **original** circuit.

use plic3_repro::aig::parse_aiger;
use plic3_repro::benchmarks::families::random::{random_circuit, RandomCircuitConfig};
use plic3_repro::benchmarks::{ExpectedResult, Suite};
use plic3_repro::bmc::Bmc;
use plic3_repro::ic3::{verify_certificate, CheckResult, Config, Ic3};
use plic3_repro::prep::preprocess;
use plic3_repro::ts::TransitionSystem;

#[test]
fn preprocessed_circuits_roundtrip_through_both_aiger_formats() {
    for bench in &Suite::hwmcc_like() {
        let prep = preprocess(bench.aig());
        prep.aig
            .validate()
            .unwrap_or_else(|e| panic!("{}: invalid after preprocessing: {e}", bench.name()));
        assert!(
            prep.aig.num_latches() <= bench.aig().num_latches(),
            "{}: preprocessing grew the circuit",
            bench.name()
        );
        let ascii = parse_aiger(prep.aig.to_ascii().as_bytes())
            .unwrap_or_else(|e| panic!("{}: ascii roundtrip failed: {e}", bench.name()));
        assert_eq!(ascii, prep.aig, "{}: ascii roundtrip differs", bench.name());
        let binary = parse_aiger(&prep.aig.to_binary())
            .unwrap_or_else(|e| panic!("{}: binary roundtrip failed: {e}", bench.name()));
        assert_eq!(
            binary,
            prep.aig,
            "{}: binary roundtrip differs",
            bench.name()
        );
    }
}

#[test]
fn verdicts_agree_with_and_without_preprocessing_on_the_quick_suite() {
    for bench in &Suite::quick() {
        let config = Config::ric3_like().with_lemma_prediction(true);
        let mut raw = Ic3::from_aig(bench.aig(), config.clone());
        let raw_result = raw.check();
        let prep = preprocess(bench.aig());
        let mut simplified = Ic3::new(TransitionSystem::from_aig(&prep.aig), config);
        let prep_result = simplified.check();
        assert_eq!(
            raw_result.is_safe(),
            prep_result.is_safe(),
            "{}: preprocessing changed the verdict",
            bench.name()
        );
        match &prep_result {
            CheckResult::Safe(cert) => verify_certificate(simplified.ts(), cert)
                .unwrap_or_else(|e| panic!("{}: bad certificate: {e}", bench.name())),
            CheckResult::Unsafe(trace) => assert!(
                prep.replay_on_original(simplified.ts(), trace),
                "{}: witness does not replay on the original circuit",
                bench.name()
            ),
            CheckResult::Unknown(reason) => {
                panic!("{}: unexpected unknown ({reason})", bench.name())
            }
        }
    }
}

#[test]
fn unsafe_instances_of_the_full_suite_keep_their_counterexample_depth() {
    // BMC is complete up to a bound: for every unsafe instance with a known
    // shallow counterexample, the preprocessed circuit must yield one at the
    // same depth, and the witness must replay on the original circuit.
    for bench in &Suite::hwmcc_like() {
        let ExpectedResult::Unsafe {
            min_depth: Some(depth),
        } = bench.expected()
        else {
            continue;
        };
        if depth > 16 {
            continue; // keep the unrolling cheap
        }
        let prep = preprocess(bench.aig());
        let ts = TransitionSystem::from_aig(&prep.aig);
        let mut bmc = Bmc::new(&ts);
        let Some(trace) = bmc.check_depth(depth) else {
            panic!(
                "{}: no counterexample at depth {depth} after preprocessing",
                bench.name()
            );
        };
        assert!(
            prep.replay_on_original(&ts, &trace),
            "{}: BMC witness does not replay on the original circuit",
            bench.name()
        );
    }
}

#[test]
fn seeded_random_circuits_keep_their_verdicts_under_preprocessing() {
    let shape = RandomCircuitConfig {
        latches: 6,
        inputs: 2,
        gates: 24,
    };
    for seed in 0..40u64 {
        let aig = random_circuit(seed, shape);
        let mut raw = Ic3::from_aig(&aig, Config::ric3_like());
        let raw_result = raw.check();
        let prep = preprocess(&aig);
        let mut simplified = Ic3::new(
            TransitionSystem::from_aig(&prep.aig),
            Config::ric3_like().with_lemma_prediction(true),
        );
        let prep_result = simplified.check();
        assert_eq!(
            raw_result.is_safe(),
            prep_result.is_safe(),
            "seed {seed}: preprocessing changed the verdict"
        );
        if let CheckResult::Unsafe(trace) = &prep_result {
            assert!(
                prep.replay_on_original(simplified.ts(), trace),
                "seed {seed}: witness does not replay on the original circuit"
            );
        }
    }
}

#[test]
fn preprocessing_shrinks_at_least_one_family_significantly() {
    // The suite's circuits are built through the strashing AigBuilder, so most
    // redundancy is already gone — but preprocessing must never grow a circuit
    // and must still find reductions somewhere (stuck or merged latches, or
    // cone pruning) across the full suite.
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for bench in &Suite::hwmcc_like() {
        let stats = preprocess(bench.aig()).stats;
        total_before += stats.latches_before + stats.ands_before;
        total_after += stats.latches_after + stats.ands_after;
    }
    assert!(
        total_after < total_before,
        "preprocessing found nothing to simplify across the whole suite \
         ({total_before} → {total_after} nodes)"
    );
}

#[test]
fn a_raised_stop_cancels_preprocessing_into_a_sound_identity_rewrite() {
    // The feature-off half of the robustness contract (docs/ROBUSTNESS.md):
    // a watchdog that fires before/while the pipeline runs cancels it between
    // rounds. Interrupted before the first round completes, `run_under`
    // returns the identity rewrite of the original circuit — still valid,
    // still sound to model-check — with the cancellation recorded.
    use plic3_repro::ic3::{FaultPlan, ResourceBudget, StopFlag};
    use plic3_repro::prep::Preprocessor;

    for bench in &Suite::quick() {
        let stop = StopFlag::new();
        stop.stop();
        let prep = Preprocessor::default().run_under(
            bench.aig(),
            &stop,
            &ResourceBudget::unlimited(),
            &FaultPlan::inert(),
        );
        assert!(
            prep.stats.cancelled,
            "{}: cancellation unreported",
            bench.name()
        );
        assert_eq!(
            prep.stats.rounds,
            0,
            "{}: a round ran past the stop",
            bench.name()
        );
        assert_eq!(
            prep.aig,
            *bench.aig(),
            "{}: an interrupted pipeline must hand back the original circuit",
            bench.name()
        );
        prep.aig.validate().expect("identity output validates");
    }

    // An exhausted memory budget cancels the same way — graceful, sound,
    // reported — never an abort.
    let bench = Suite::quick().iter().next().expect("non-empty").clone();
    let budget = ResourceBudget::with_limit(1);
    let prep = Preprocessor::default().run_under(
        bench.aig(),
        &StopFlag::new(),
        &budget,
        &FaultPlan::inert(),
    );
    assert!(prep.stats.cancelled);
    assert_eq!(prep.aig, *bench.aig());
}
