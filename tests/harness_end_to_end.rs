//! End-to-end harness test: run a miniature version of the paper's experiment
//! and build every table and figure from the collected data.

use plic3_repro::benchmarks::Suite;
use plic3_repro::harness::{
    ablation, fig2, fig3, fig4, run_experiment, table1, table2, Configuration, RunnerConfig,
};
use std::time::Duration;

fn mini_experiment() -> (Suite, plic3_repro::harness::ExperimentData, RunnerConfig) {
    let suite = Suite::quick();
    let runner = RunnerConfig {
        timeout: Duration::from_secs(10),
        max_conflicts: Some(500_000),
        fast_case_threshold: Duration::ZERO,
        ..RunnerConfig::default()
    };
    let data = run_experiment(&suite, &Configuration::all(), &runner);
    (suite, data, runner)
}

#[test]
fn all_tables_and_figures_can_be_built_from_one_run() {
    let (suite, data, runner) = mini_experiment();
    assert_eq!(data.results.len(), suite.len() * 6);
    assert_eq!(
        data.wrong_verdicts(),
        0,
        "a configuration returned a wrong verdict"
    );
    for result in &data.results {
        assert!(result.verified, "{}: unverified verdict", result.benchmark);
    }

    // Table 1: every configuration solves the whole quick suite.
    let t1 = table1::build(&data);
    assert_eq!(t1.rows.len(), 6);
    let (expected_safe, expected_unsafe) = suite.expected_counts();
    for row in &t1.rows {
        assert_eq!(
            row.solved,
            suite.len(),
            "{} timed out on the quick suite",
            row.configuration
        );
        assert_eq!(row.safe, expected_safe);
        assert_eq!(row.unsafe_, expected_unsafe);
    }
    assert!(table1::render(&t1).contains("ABC-PDR"));

    // Table 2: both prediction configurations report defined averages.
    let t2 = table2::build(&data);
    assert_eq!(t2.rows.len(), 2);
    for row in &t2.rows {
        assert!(row.cases > 0);
        assert!(row.avg_sr_fp.is_some());
        assert!(row.avg_sr_adv.is_some());
    }
    assert!(table2::render(&t2).contains("Avg SR_adv"));

    // Figure 2: monotone curves ending at full coverage.
    let f2 = fig2::build(&data, &fig2::default_limits(runner.timeout));
    for series in &f2.series {
        let last = series.points.last().expect("non-empty").1;
        assert_eq!(last, suite.len());
    }
    assert!(fig2::render(&f2).contains("Figure 2"));

    // Figure 3: both base/prediction pairs are present and complete.
    let f3 = fig3::build(&data);
    assert_eq!(f3.scatters.len(), 2);
    for scatter in &f3.scatters {
        assert_eq!(scatter.points.len(), suite.len());
    }
    assert!(fig3::render(&f3).contains("below the diagonal"));

    // Figure 4: with a zero fast-case threshold every pair with a defined
    // SR_adv contributes a point.
    let f4 = fig4::build(&data, Duration::ZERO);
    assert!(!f4.points.is_empty());
    assert!(fig4::render(&f4).contains("Figure 4"));
    assert!(fig4::to_csv(&f4).lines().count() == f4.points.len() + 1);
}

#[test]
fn ablation_report_runs_on_a_tiny_suite() {
    let suite = Suite::quick().filter(|b| matches!(b.family(), "counter" | "gray"));
    let runner = RunnerConfig {
        timeout: Duration::from_secs(10),
        ..RunnerConfig::default()
    };
    let report = ablation::run(&suite, &ablation::default_variants(), &runner);
    assert_eq!(report.rows.len(), ablation::default_variants().len());
    for row in &report.rows {
        assert_eq!(
            row.solved,
            suite.len(),
            "{} failed on the tiny suite",
            row.name
        );
    }
    let rendered = ablation::render(&report);
    assert!(rendered.contains("no prediction"));
    assert!(rendered.contains("pl (default)"));
}
