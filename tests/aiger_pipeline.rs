//! End-to-end AIGER pipeline tests: every benchmark circuit survives a round
//! trip through both AIGER formats, and the model-checking verdict is identical
//! whether the circuit comes from the in-memory builder or from parsed bytes —
//! i.e. the exact code path an HWMCC file from disk would take.

use plic3_repro::aig::parse_aiger;
use plic3_repro::benchmarks::Suite;
use plic3_repro::ic3::{Config, Ic3};
use plic3_repro::ts::TransitionSystem;

#[test]
fn every_benchmark_roundtrips_through_both_aiger_formats() {
    for bench in &Suite::hwmcc_like() {
        let original = bench.aig();
        let ascii = parse_aiger(original.to_ascii().as_bytes())
            .unwrap_or_else(|e| panic!("{}: ascii roundtrip failed: {e}", bench.name()));
        assert_eq!(
            &ascii,
            original,
            "{}: ascii roundtrip differs",
            bench.name()
        );
        let binary = parse_aiger(&original.to_binary())
            .unwrap_or_else(|e| panic!("{}: binary roundtrip failed: {e}", bench.name()));
        assert_eq!(
            &binary,
            original,
            "{}: binary roundtrip differs",
            bench.name()
        );
    }
}

#[test]
fn verdicts_are_identical_for_parsed_and_in_memory_circuits() {
    for bench in &Suite::quick() {
        let parsed = parse_aiger(bench.aig().to_ascii().as_bytes()).expect("roundtrip");
        let mut from_memory = Ic3::new(bench.ts(), Config::ric3_like().with_lemma_prediction(true));
        let mut from_file = Ic3::new(
            TransitionSystem::from_aig(&parsed),
            Config::ric3_like().with_lemma_prediction(true),
        );
        let memory_verdict = from_memory.check();
        let file_verdict = from_file.check();
        assert_eq!(
            memory_verdict.is_safe(),
            file_verdict.is_safe(),
            "{}: verdict changed after AIGER roundtrip",
            bench.name()
        );
        assert_eq!(
            memory_verdict.is_unsafe(),
            file_verdict.is_unsafe(),
            "{}: verdict changed after AIGER roundtrip",
            bench.name()
        );
    }
}

#[test]
fn output_only_aiger_1_0_circuit_is_checked_and_its_trace_replays() {
    // AIGER 1.0 / early-HWMCC files express the property as an *output*, not a
    // bad literal. A toggling latch exposed through an output: unsafe after one
    // step, and the counterexample must replay on the original circuit.
    use plic3_repro::ic3::verify_trace;
    let aig = parse_aiger(b"aag 1 0 1 1 0\n2 3\n2\n").expect("valid AIGER 1.0 file");
    assert_eq!(aig.num_bad(), 0);
    assert_eq!(aig.num_outputs(), 1);
    let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
    let result = engine.check();
    let trace = result.trace().expect("the toggle reaches the output");
    assert!(
        verify_trace(engine.ts(), &aig, trace),
        "trace on an output-only circuit must replay"
    );
}

#[test]
fn cone_of_influence_reduction_never_changes_a_verdict() {
    // Append unrelated logic to a few circuits and check the verdict is stable;
    // the transition-system encoder must cut the junk away.
    use plic3_repro::aig::AigBuilder;
    for bench in Suite::quick().iter().take(4) {
        // Re-parse to get a mutable copy we can extend through the builder: we
        // simply wrap the original circuit and a junk counter side by side.
        let mut b = AigBuilder::new();
        // Junk: a 6-bit free-running counter with no property.
        let junk = b.latches(6, Some(false));
        let inc = b.vec_increment(&junk);
        for (s, n) in junk.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        // The original circuit is connected through the AIGER text so the test
        // also covers "parse then extend" usage.
        let original = parse_aiger(bench.aig().to_ascii().as_bytes()).expect("roundtrip");
        let ts_plain = TransitionSystem::from_aig(&original);
        let mut plain = Ic3::new(ts_plain, Config::ric3_like());
        let expected_safe = plain.check().is_safe();
        assert_eq!(
            expected_safe,
            bench.expected().is_safe(),
            "{}: baseline disagrees with ground truth",
            bench.name()
        );
        // The junk circuit alone is trivially safe (no property): its TS keeps
        // no latches after COI reduction.
        let junk_only = b.build();
        let ts = TransitionSystem::from_aig(&junk_only);
        assert_eq!(ts.num_latches(), 0);
        let mut junk_engine = Ic3::new(ts, Config::ric3_like());
        assert!(junk_engine.check().is_safe());
    }
}
