//! Per-case prediction statistics: reproduce the Table 2 quantities on one
//! benchmark family and show how prediction changes the work the engine does.
//!
//! Usage: `cargo run --release --example prediction_stats -- [family]`
//! where `family` is one of `counter`, `shift`, `ring`, `arbiter`, `traffic`,
//! `fifo`, `lock`, `gray` (default: `counter`; the larger `shift` instances
//! take tens of seconds without `--release`).

use plic3_repro::benchmarks::Suite;
use plic3_repro::ic3::{Config, Ic3};
use std::time::Instant;

fn main() {
    let family = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "counter".to_string());
    let suite = Suite::hwmcc_like().filter(|b| b.family() == family);
    if suite.is_empty() {
        eprintln!("unknown family '{family}'");
        std::process::exit(2);
    }
    println!(
        "{:<28} {:>9} {:>9} {:>7} {:>7} {:>7} | {:>8} {:>8} {:>8}",
        "benchmark", "base (s)", "pl (s)", "N_g", "N_p", "N_sp", "SR_lp", "SR_fp", "SR_adv"
    );
    for bench in &suite {
        let mut base = Ic3::new(bench.ts(), Config::ric3_like());
        let started = Instant::now();
        let base_result = base.check();
        let base_time = started.elapsed();

        let mut pl = Ic3::new(bench.ts(), Config::ric3_like().with_lemma_prediction(true));
        let started = Instant::now();
        let pl_result = pl.check();
        let pl_time = started.elapsed();

        assert_eq!(
            base_result.is_safe(),
            pl_result.is_safe(),
            "verdicts must agree on {}",
            bench.name()
        );
        let stats = pl.statistics();
        let rate = |r: Option<f64>| {
            r.map(|v| format!("{:>7.2}%", 100.0 * v))
                .unwrap_or_else(|| "     n/a".to_string())
        };
        println!(
            "{:<28} {:>9.3} {:>9.3} {:>7} {:>7} {:>7} | {} {} {}",
            bench.name(),
            base_time.as_secs_f64(),
            pl_time.as_secs_f64(),
            stats.generalizations,
            stats.predictions,
            stats.successful_predictions,
            rate(stats.sr_lp()),
            rate(stats.sr_fp()),
            rate(stats.sr_adv()),
        );
    }
}
