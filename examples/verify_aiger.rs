//! Check a circuit stored in the AIGER exchange format.
//!
//! Usage: `cargo run --example verify_aiger -- [path/to/circuit.aag]`
//!
//! Without an argument the example writes a small demonstration circuit to a
//! temporary AIGER file first, so it always has something to chew on. This is
//! exactly the pipeline an HWMCC benchmark from disk would take.

use plic3_repro::aig::{parse_aiger, AigBuilder};
use plic3_repro::ic3::{verify_certificate, verify_trace, Config, Ic3};
use plic3_repro::ts::TransitionSystem;
use std::error::Error;

fn demo_circuit_path() -> Result<std::path::PathBuf, Box<dyn Error>> {
    // A round-robin arbiter with a deliberately injected double-grant bug.
    let mut b = AigBuilder::new();
    let n = 4;
    let requests = b.inputs(n);
    let token: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(token[i], token[(i + n - 1) % n]);
    }
    let grants: Vec<_> = (0..n)
        .map(|i| {
            let own = b.and(requests[i], token[i]);
            let stolen = b.and(requests[i], token[(i + n - 1) % n]);
            b.or(own, stolen)
        })
        .collect();
    let mut clashes = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let clash = b.and(grants[i], grants[j]);
            clashes.push(clash);
        }
    }
    let bad = b.or_many(&clashes);
    b.add_bad(bad);
    b.add_comment("demo: buggy round-robin arbiter");
    let path = std::env::temp_dir().join("plic3_demo_arbiter.aag");
    std::fs::write(&path, b.build().to_ascii())?;
    Ok(path)
}

fn main() -> Result<(), Box<dyn Error>> {
    let path = match std::env::args().nth(1) {
        Some(path) => std::path::PathBuf::from(path),
        None => {
            let path = demo_circuit_path()?;
            println!(
                "no input given, using generated demo circuit {}",
                path.display()
            );
            path
        }
    };
    let bytes = std::fs::read(&path)?;
    let aig = parse_aiger(&bytes)?;
    println!("loaded {}: {aig}", path.display());

    let ts = TransitionSystem::from_aig(&aig);
    println!("encoded transition system: {ts}");

    let config = Config::ric3_like().with_lemma_prediction(true);
    let mut engine = Ic3::new(ts, config);
    let result = engine.check();
    println!("verdict: {result}");
    match &result {
        r if r.is_safe() => {
            let cert = r.certificate().expect("safe result carries a certificate");
            verify_certificate(engine.ts(), cert)?;
            println!("inductive invariant with {} lemmas verified", cert.len());
        }
        r if r.is_unsafe() => {
            let trace = r.trace().expect("unsafe result carries a trace");
            let ok = verify_trace(engine.ts(), &aig, trace);
            println!(
                "counterexample of {} steps, replay on the circuit: {}",
                trace.len(),
                if ok { "confirmed" } else { "FAILED" }
            );
            println!("{}", trace.render(engine.ts()));
        }
        _ => println!("no verdict within the configured limits"),
    }
    println!("statistics: {}", engine.statistics());
    Ok(())
}
