//! End-to-end portfolio quickstart: race the default worker set on one safe
//! and one unsafe instance, verify both verdicts independently, and print
//! who won. This is the example the README quotes and the CI smoke step runs.
//!
//! ```text
//! cargo run --release --example portfolio_quickstart
//! ```

use plic3_repro::aig::{Aig, AigBuilder};
use plic3_repro::portfolio::{verify_safety_proof, Portfolio, PortfolioConfig, PortfolioResult};
use plic3_repro::ts::TransitionSystem;

/// Safe: a one-hot token ring — two adjacent cells can never both hold the
/// token.
fn safe_ring(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(cells[i], cells[(i + n - 1) % n]);
    }
    let mut clashes = Vec::new();
    for i in 0..n {
        let clash = b.and(cells[i], cells[(i + 1) % n]);
        clashes.push(clash);
    }
    let bad = b.or_many(&clashes);
    b.add_bad(bad);
    b.build()
}

/// Unsafe: a free-running counter that provably reaches its bad value.
fn unsafe_counter(bits: usize, bad_at: u64) -> Aig {
    let mut b = AigBuilder::new();
    let state = b.latches(bits, Some(false));
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        b.set_latch_next(*s, *n);
    }
    let bad = b.vec_equals_const(&state, bad_at);
    b.add_bad(bad);
    b.build()
}

fn race(name: &str, aig: &Aig) {
    let mut portfolio = Portfolio::from_aig(aig, PortfolioConfig::default());
    let outcome = portfolio.check();
    match &outcome.result {
        PortfolioResult::Safe(proof) => {
            verify_safety_proof(portfolio.ts(), proof).expect("proof re-checks");
            println!(
                "{name}: SAFE in {:?} (winner: {}, proof independently verified)",
                outcome.runtime,
                outcome.winner_label().unwrap_or("?"),
            );
        }
        PortfolioResult::Unsafe(trace) => {
            let ts = TransitionSystem::from_aig(aig);
            assert!(trace.replay_on_aig(&ts, aig), "trace replays");
            println!(
                "{name}: UNSAFE in {:?} ({}-step counterexample by {}, replay verified)",
                outcome.runtime,
                trace.len(),
                outcome.winner_label().unwrap_or("?"),
            );
        }
        PortfolioResult::Unknown(reason) => {
            panic!("{name}: portfolio gave up ({reason}) — these instances are tiny")
        }
    }
    for report in &outcome.workers {
        println!(
            "    {:<14} {:?} after {:?}",
            report.label, report.status, report.runtime
        );
    }
}

fn main() {
    race("token_ring_8 (safe)", &safe_ring(8));
    race("counter_4_bad_11 (unsafe)", &unsafe_counter(4, 11));
}
