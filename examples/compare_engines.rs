//! Compare the three engine families of the paper's introduction — IC3 (with
//! lemma prediction), bounded model checking, and k-induction — on the same
//! circuits, cross-checking their verdicts.
//!
//! Run with `cargo run --release --example compare_engines`.

use plic3_repro::benchmarks::{ExpectedResult, Suite};
use plic3_repro::bmc::{Bmc, BmcResult, KInduction, KInductionResult};
use plic3_repro::ic3::{Config, Ic3};
use std::time::Instant;

const BMC_DEPTH: usize = 30;
const KIND_DEPTH: usize = 20;

fn main() {
    let suite = Suite::quick();
    println!(
        "{:<28} {:<16} {:<22} {:<22} {:<18}",
        "benchmark", "expected", "IC3-pl", "BMC", "k-induction"
    );
    for bench in &suite {
        let ts = bench.ts();

        let mut ic3 = Ic3::new(ts.clone(), Config::ric3_like().with_lemma_prediction(true));
        let started = Instant::now();
        let ic3_result = ic3.check();
        let ic3_text = format!("{} ({:.3}s)", ic3_result, started.elapsed().as_secs_f64());

        let mut bmc = Bmc::new(&ts);
        let started = Instant::now();
        let bmc_result = bmc.check(BMC_DEPTH);
        let bmc_text = format!("{} ({:.3}s)", bmc_result, started.elapsed().as_secs_f64());

        let mut kind = KInduction::new(&ts);
        let started = Instant::now();
        let kind_result = kind.check(KIND_DEPTH);
        let kind_text = format!("{} ({:.3}s)", kind_result, started.elapsed().as_secs_f64());

        // Cross-check: engines must never contradict each other or the truth.
        match bench.expected() {
            ExpectedResult::Safe => {
                assert!(ic3_result.is_safe(), "IC3 wrong on {}", bench.name());
                assert!(!bmc_result.is_unsafe(), "BMC wrong on {}", bench.name());
                assert!(
                    !kind_result.is_unsafe(),
                    "k-induction wrong on {}",
                    bench.name()
                );
            }
            ExpectedResult::Unsafe { .. } => {
                assert!(ic3_result.is_unsafe(), "IC3 wrong on {}", bench.name());
                assert!(
                    matches!(bmc_result, BmcResult::Unsafe { .. }),
                    "BMC misses the bug in {} within depth {BMC_DEPTH}",
                    bench.name()
                );
                assert!(
                    matches!(kind_result, KInductionResult::Unsafe { .. }),
                    "k-induction misses the bug in {}",
                    bench.name()
                );
            }
        }

        println!(
            "{:<28} {:<16} {:<22} {:<22} {:<18}",
            bench.name(),
            bench.expected().to_string(),
            ic3_text,
            bmc_text,
            kind_text
        );
    }
    println!("\nall verdicts agree with the ground truth");
}
