//! Quickstart: build a small circuit, check it with and without the paper's
//! lemma prediction, and inspect the statistics.
//!
//! Run with `cargo run --example quickstart`.

use plic3_repro::aig::AigBuilder;
use plic3_repro::ic3::{verify_certificate, Config, Ic3};

fn main() {
    // A saturating 5-bit counter plus a shadow register; the bad value lies
    // above the saturation point and is therefore unreachable.
    let mut b = AigBuilder::new();
    let state = b.latches(5, Some(false));
    let shadow = b.latches(5, Some(false));
    let at_max = b.vec_equals_const(&state, 29);
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        let next = b.ite(at_max, *s, *n);
        b.set_latch_next(*s, next);
    }
    for (sh, s) in shadow.iter().zip(&state) {
        b.set_latch_next(*sh, *s);
    }
    let state_bad = b.vec_equals_const(&state, 31);
    let shadow_bad = b.vec_equals_const(&shadow, 31);
    let bad = b.or(state_bad, shadow_bad);
    b.add_bad(bad);
    let aig = b.build();
    println!("circuit: {aig}");

    for (label, config) in [
        ("baseline IC3        ", Config::ric3_like()),
        (
            "IC3 + lemma predict ",
            Config::ric3_like().with_lemma_prediction(true),
        ),
    ] {
        let mut engine = Ic3::from_aig(&aig, config);
        let result = engine.check();
        let stats = engine.statistics();
        print!(
            "{label}: {result}, {} relative SAT queries, {} generalizations",
            stats.relative_queries, stats.generalizations
        );
        if let Some(sr_adv) = stats.sr_adv() {
            print!(
                ", avoided dropping in {:.1}% of generalizations",
                100.0 * sr_adv
            );
        }
        println!();
        if let Some(cert) = result.certificate() {
            verify_certificate(engine.ts(), cert).expect("certificate must verify");
            println!(
                "    certificate with {} lemmas verified independently",
                cert.len()
            );
        }
    }
}
