//! Engine-level workloads for the tracked IC3 benchmark (`plic3-bench-ic3`).
//!
//! The circuits here are deliberately *redundant* in the ways real HWMCC
//! netlists are — duplicated cones, shadow registers, stuck configuration
//! latches — so the raw-vs-preprocessed pairs measure the end-to-end effect
//! of the `plic3-prep` pipeline on the IC3 engine, not just the SAT backend.

use plic3_aig::{Aig, AigBuilder, AigLit};

/// A safe circuit of `copies` identical one-hot token rings with `cells`
/// latches each; bad = two adjacent cells of *any* copy both hold the token.
///
/// Every copy feeds the property, so cone-of-influence reduction alone cannot
/// remove anything — only latch-equivalence merging collapses the copies onto
/// one ring, shrinking the IC3 state space by a factor of `copies`.
pub fn redundant_rings(copies: usize, cells: usize) -> Aig {
    assert!(copies >= 1 && cells >= 3);
    let mut b = AigBuilder::new();
    let mut bads = Vec::new();
    for _ in 0..copies {
        let ring: Vec<AigLit> = (0..cells).map(|i| b.latch(Some(i == 0))).collect();
        for i in 0..cells {
            b.set_latch_next(ring[i], ring[(i + cells - 1) % cells]);
        }
        for i in 0..cells {
            let pair = b.and(ring[i], ring[(i + 1) % cells]);
            bads.push(pair);
        }
    }
    let bad = b.or_many(&bads);
    b.add_bad(bad);
    b.build()
}

/// A safe saturating counter whose bad state is additionally gated by a
/// conjunction of `guards` stuck-at-one configuration latches.
///
/// The guards are part of the property cone, so raw IC3 drags them through
/// every counterexample-to-induction and every MIC drop; constant sweeping
/// removes them (and the gating logic) entirely.
pub fn guarded_counter(bits: usize, guards: usize) -> Aig {
    assert!(bits >= 2);
    let mut b = AigBuilder::new();
    let state = b.latches(bits, Some(false));
    let saturate = (1u64 << bits) - 2;
    let at_max = b.vec_equals_const(&state, saturate);
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        let held = b.ite(at_max, *s, *n);
        b.set_latch_next(*s, held);
    }
    let guard_latches: Vec<AigLit> = (0..guards).map(|_| b.latch(Some(true))).collect();
    for &g in &guard_latches {
        b.set_latch_next(g, g);
    }
    let enabled = b.and_many(&guard_latches);
    let all_ones = b.vec_equals_const(&state, (1 << bits) - 1);
    let bad = b.and(all_ones, enabled);
    b.add_bad(bad);
    b.build()
}

/// An unsafe circuit: a free-running counter duplicated `copies` times, bad =
/// any copy reaching the all-ones value. Exercises the witness-mapping path
/// end to end — the counterexample is found on the merged single-copy circuit
/// and must replay on the original.
pub fn redundant_unsafe_counter(copies: usize, bits: usize) -> Aig {
    assert!(copies >= 1 && bits >= 2);
    let mut b = AigBuilder::new();
    let mut bads = Vec::new();
    for _ in 0..copies {
        let state = b.latches(bits, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        bads.push(b.vec_equals_const(&state, (1 << bits) - 1));
    }
    let bad = b.or_many(&bads);
    b.add_bad(bad);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3::{Config, Ic3};
    use plic3_prep::preprocess;
    use plic3_ts::TransitionSystem;

    #[test]
    fn redundant_rings_collapse_to_one_copy() {
        let aig = redundant_rings(3, 5);
        assert_eq!(aig.num_latches(), 15);
        let prep = preprocess(&aig);
        assert_eq!(prep.aig.num_latches(), 5);
        let mut engine = Ic3::from_aig(&prep.aig, Config::ric3_like());
        assert!(engine.check().is_safe());
    }

    #[test]
    fn guarded_counter_loses_its_guards() {
        let aig = guarded_counter(4, 6);
        assert_eq!(aig.num_latches(), 10);
        let prep = preprocess(&aig);
        assert_eq!(prep.aig.num_latches(), 4);
        let mut engine = Ic3::from_aig(&prep.aig, Config::ric3_like());
        assert!(engine.check().is_safe());
    }

    #[test]
    fn unsafe_counter_witness_replays_on_the_original() {
        let aig = redundant_unsafe_counter(3, 3);
        let prep = preprocess(&aig);
        assert_eq!(prep.aig.num_latches(), 3);
        let ts = TransitionSystem::from_aig(&prep.aig);
        let mut engine = Ic3::new(ts, Config::ric3_like());
        let result = engine.check();
        let trace = result.trace().expect("counter reaches all-ones");
        assert!(prep.replay_on_original(engine.ts(), trace));
    }
}
