//! Shared fixtures and a dependency-free timing harness for the PLIC3 benches.
//!
//! The benches in `benches/` regenerate (scaled-down versions of) every table
//! and figure of *Predicting Lemmas in Generalization of IC3* (DAC 2024); this
//! small library provides the workload selections they share so the benches and
//! the tests agree on what gets measured, plus [`timing`] — a minimal
//! Criterion-compatible measurement loop so the workspace stays free of
//! external dependencies.
//!
//! # Example
//!
//! Timing an arbitrary closure with the in-tree harness:
//!
//! ```
//! use plic3_bench::timing::Criterion;
//!
//! let mut criterion = Criterion::with_sample_size(3);
//! criterion.bench_function("sum_1k", |b| {
//!     b.iter(|| (0..1000u64).sum::<u64>())
//! });
//! let results = criterion.results();
//! assert_eq!(results.len(), 1);
//! assert_eq!(results[0].samples, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ic3_workloads;
pub mod sat_workloads;
pub mod timing;

use plic3_benchmarks::Suite;
use plic3_harness::{Configuration, RunnerConfig};
use std::time::Duration;

/// The per-case budgets used by the benches: tight enough to keep Criterion
/// iterations fast, generous enough that nothing in the bench workload times
/// out.
pub fn bench_runner() -> RunnerConfig {
    RunnerConfig {
        timeout: Duration::from_secs(5),
        max_conflicts: Some(500_000),
        fast_case_threshold: Duration::ZERO,
        ..RunnerConfig::default()
    }
}

/// The workload used by the table/figure benches: the quick suite (one small
/// instance per family).
pub fn bench_suite() -> Suite {
    Suite::quick()
}

/// A single mid-sized safe instance on which prediction visibly saves work,
/// used by the per-engine micro-benchmarks.
pub fn prediction_showcase() -> plic3_benchmarks::Benchmark {
    Suite::hwmcc_like()
        .find("shift_parity_safe_6")
        .expect("the shift family always contains the parity_6 instance")
        .clone()
}

/// The configuration pairs measured by the scatter benches.
pub fn scatter_pairs() -> [(Configuration, Configuration); 2] {
    [
        (Configuration::Ric3, Configuration::Ric3Pl),
        (Configuration::Ic3ref, Configuration::Ic3refPl),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_available() {
        assert!(!bench_suite().is_empty());
        assert_eq!(prediction_showcase().family(), "shift");
        assert!(bench_runner().timeout >= Duration::from_secs(1));
        for (base, pl) in scatter_pairs() {
            assert_eq!(pl.base(), Some(base));
        }
    }
}
