//! Shared SAT formula constructors used by the `engine` micro-benchmarks and
//! the `plic3-bench-sat` baseline emitter, so both measure the same workloads.
//!
//! Every constructor takes a [`SearchConfig`], because the bench binary
//! measures each workload as a *paired A/B*: once with the modern search
//! defaults and once with [`SearchConfig::classic`] (the pre-modernization
//! engine), so `BENCH_sat.json` records before/after entries from the same
//! binary on the same machine.

use plic3_logic::{Lit, SplitMix64, Var};
use plic3_sat::{SatResult, SearchConfig, Solver, SolverConfig};

fn solver_with(search: SearchConfig) -> Solver {
    Solver::with_config(SolverConfig {
        search,
        ..SolverConfig::default()
    })
}

/// Pigeonhole formula: `n + 1` pigeons into `n` holes (unsatisfiable).
///
/// The classic resolution-hard instance; its solve time is dominated by
/// conflict analysis and learnt-clause management.
pub fn pigeonhole(n: u32) -> Solver {
    pigeonhole_with(n, SearchConfig::default())
}

/// [`pigeonhole`] with an explicit search configuration.
pub fn pigeonhole_with(n: u32, search: SearchConfig) -> Solver {
    let mut solver = solver_with(search);
    let pigeons = n + 1;
    let var = |p: u32, h: u32| Lit::pos(Var::new(p * n + h));
    solver.ensure_vars((pigeons * n) as usize);
    for p in 0..pigeons {
        solver.add_clause((0..n).map(|h| var(p, h)));
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                solver.add_clause([!var(p1, h), !var(p2, h)]);
            }
        }
    }
    solver
}

/// A long chained-implication formula `x_0 → x_1 → … → x_{n-1}`, returned with
/// the trigger literal `x_0`.
///
/// Solving under the assumption `x_0` forces one unit propagation per link
/// with no conflicts, so `solve(&[trigger])` isolates raw propagation /
/// watch-list throughput: `n - 1` propagations per call, dominated by the
/// two-watched-literal walk. (Search configuration is irrelevant here — the
/// workload never conflicts — so there is no `_with` variant.)
pub fn implication_chain(n: usize) -> (Solver, Lit) {
    assert!(n >= 2, "a chain needs at least two variables");
    let mut solver = Solver::new();
    let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(solver.new_var())).collect();
    for w in lits.windows(2) {
        solver.add_clause([!w[0], w[1]]);
    }
    (solver, lits[0])
}

/// A seeded uniform random 3-CNF over `vars` variables with `clauses`
/// clauses (distinct variables within each clause).
///
/// At clause/variable ratios near the phase transition (≈ 4.26) these are
/// the standard restart-policy-sensitive workloads: the EMA-vs-Luby and
/// phase-handling differences show up here much more strongly than on
/// structured instances.
pub fn random_3sat(vars: u32, clauses: u32, seed: u64, search: SearchConfig) -> Solver {
    let mut rng = SplitMix64::new(seed);
    let mut solver = solver_with(search);
    solver.ensure_vars(vars as usize);
    for _ in 0..clauses {
        let mut picked = [0u32; 3];
        for i in 0..3 {
            loop {
                let candidate = rng.below(vars as u64) as u32;
                if !picked[..i].contains(&candidate) {
                    picked[i] = candidate;
                    break;
                }
            }
        }
        solver.add_clause(picked.iter().map(|&v| Lit::new(Var::new(v), rng.bool())));
    }
    solver
}

/// An IC3-shaped incremental workload: a fixed random 3-CNF base (at a
/// satisfiable ratio) solved over and over under per-round activation
/// clauses and assumption sets, with the activation variable released after
/// each round — the access pattern of `Ic3::solve_relative`.
///
/// Returns the number of `Sat` verdicts over `rounds` rounds (a deterministic
/// function of the seed, asserted by the bench so a broken solver cannot
/// masquerade as a fast one). Phase saving, best-phase reuse, and
/// chronological backtracking all pay off here: consecutive queries differ
/// only in one activation clause, so most of the previous model is reusable.
pub fn incremental_activation_rounds(
    vars: u32,
    clauses: u32,
    rounds: u32,
    seed: u64,
    search: SearchConfig,
) -> u32 {
    let mut rng = SplitMix64::new(seed);
    let mut solver = random_3sat(vars, clauses, seed ^ 0xba5e, search);
    let mut sat_count = 0u32;
    for _ in 0..rounds {
        let act = Lit::pos(solver.new_var());
        // act → (random ternary clause): the "negated cube" of the round.
        let mut clause = vec![!act];
        for _ in 0..3 {
            let v = rng.below(vars as u64) as u32;
            clause.push(Lit::new(Var::new(v), rng.bool()));
        }
        solver.add_clause(clause);
        // Two assumption literals next to the activation literal.
        let mut assumptions = vec![act];
        for _ in 0..2 {
            let v = rng.below(vars as u64) as u32;
            assumptions.push(Lit::new(Var::new(v), rng.bool()));
        }
        match solver.solve(&assumptions) {
            SatResult::Sat => sat_count += 1,
            SatResult::Unsat => {}
            SatResult::Unknown => unreachable!("no budget or stop flag is set"),
        }
        solver.release_var(!act);
    }
    sat_count
}

/// A circuit miter: two copies of the same seeded random AND/OR/XOR netlist
/// over shared inputs, Tseitin-encoded, with the two outputs asserted to
/// differ (unsatisfiable — the copies compute the same function).
///
/// This is the canonical workload where CNF *inprocessing* earns its keep:
/// every gate variable is definitional (its polarity occurrences are the
/// Tseitin clauses of one gate), so bounded variable elimination can
/// substitute gates away and subsumption/strengthening collapses the
/// duplicated structure — none of which plain CDCL search exploits. Each
/// gate reads the immediately preceding signal plus one random earlier
/// signal, so the outputs' cone of influence covers the whole netlist
/// (no dead gates to make the miter trivially easy).
pub fn circuit_miter(inputs: u32, gates: u32, seed: u64, search: SearchConfig) -> Solver {
    assert!(inputs >= 2 && gates >= 1);
    let mut rng = SplitMix64::new(seed);
    let mut solver = solver_with(search);
    solver.ensure_vars((inputs + 2 * gates) as usize);
    // The shared netlist: gate `g` combines the latest signal (chaining the
    // whole circuit) with a random earlier one, under random polarities.
    // Signals are numbered inputs-first, then gates in creation order. One
    // gate in four is an XOR — AND/OR-only miters collapse under unit
    // propagation too easily to measure search.
    let netlist: Vec<(u8, u32, bool, u32, bool)> = (0..gates)
        .map(|g| {
            let pool = inputs + g;
            let a = pool - 1;
            let mut b = rng.below(pool as u64) as u32;
            while b == a {
                b = rng.below(pool as u64) as u32;
            }
            let op = rng.below(4) as u8; // 0 = XOR, 1 = AND/AND/OR mix below
            (op, a, rng.bool(), b, rng.bool())
        })
        .collect();
    for copy in 0..2u32 {
        let signal = |s: u32| {
            if s < inputs {
                Var::new(s)
            } else {
                Var::new(s + copy * gates)
            }
        };
        for (g, &(op, a, neg_a, b, neg_b)) in netlist.iter().enumerate() {
            let gate = Lit::pos(Var::new(inputs + copy * gates + g as u32));
            let la = Lit::new(signal(a), neg_a);
            let lb = Lit::new(signal(b), neg_b);
            match op {
                0 => {
                    // gate ↔ la ⊕ lb
                    solver.add_clause([!gate, la, lb]);
                    solver.add_clause([!gate, !la, !lb]);
                    solver.add_clause([gate, la, !lb]);
                    solver.add_clause([gate, !la, lb]);
                }
                1 | 2 => {
                    // gate ↔ la ∧ lb
                    solver.add_clause([!gate, la]);
                    solver.add_clause([!gate, lb]);
                    solver.add_clause([gate, !la, !lb]);
                }
                _ => {
                    // gate ↔ la ∨ lb
                    solver.add_clause([gate, !la]);
                    solver.add_clause([gate, !lb]);
                    solver.add_clause([!gate, la, lb]);
                }
            }
        }
    }
    // The miter: the two copies' outputs (their last gates) must differ.
    let out_a = Lit::pos(Var::new(inputs + gates - 1));
    let out_b = Lit::pos(Var::new(inputs + 2 * gates - 1));
    solver.add_clause([out_a, out_b]);
    solver.add_clause([!out_a, !out_b]);
    solver
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pigeonhole_is_unsat() {
        let mut s = pigeonhole(3);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
        let mut s = pigeonhole_with(3, SearchConfig::classic());
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn chain_propagates_every_link() {
        let (mut s, trigger) = implication_chain(64);
        let before = s.stats().propagations;
        assert_eq!(s.solve(&[trigger]), SatResult::Sat);
        let propagated = s.stats().propagations - before;
        assert!(propagated >= 63, "expected ≥ 63 propagations: {propagated}");
    }

    #[test]
    fn random_3sat_verdicts_are_search_independent() {
        // The verdict is a property of the formula: classic and modern search
        // must agree (this is what lets the bench pair them honestly).
        for seed in 0..4u64 {
            let mut modern = random_3sat(60, 250, seed, SearchConfig::default());
            let mut classic = random_3sat(60, 250, seed, SearchConfig::classic());
            assert_eq!(modern.solve(&[]), classic.solve(&[]), "seed {seed}");
        }
    }

    #[test]
    fn circuit_miter_is_unsat_under_both_configs() {
        for seed in 0..3u64 {
            let mut modern = circuit_miter(12, 40, seed, SearchConfig::default());
            assert_eq!(modern.solve(&[]), SatResult::Unsat, "seed {seed}");
            let mut classic = circuit_miter(12, 40, seed, SearchConfig::classic());
            assert_eq!(classic.solve(&[]), SatResult::Unsat, "seed {seed}");
        }
    }

    #[test]
    fn incremental_rounds_are_deterministic_per_config() {
        let a = incremental_activation_rounds(40, 150, 20, 7, SearchConfig::default());
        let b = incremental_activation_rounds(40, 150, 20, 7, SearchConfig::default());
        assert_eq!(a, b, "same seed and config, same verdict sequence");
        // Different search settings may take different paths but must count
        // the same verdicts.
        let c = incremental_activation_rounds(40, 150, 20, 7, SearchConfig::classic());
        assert_eq!(a, c, "verdicts are search-independent");
    }
}
