//! Shared SAT formula constructors used by the `engine` micro-benchmarks and
//! the `plic3-bench-sat` baseline emitter, so both measure the same workloads.

use plic3_logic::{Lit, Var};
use plic3_sat::Solver;

/// Pigeonhole formula: `n + 1` pigeons into `n` holes (unsatisfiable).
///
/// The classic resolution-hard instance; its solve time is dominated by
/// conflict analysis and learnt-clause management.
pub fn pigeonhole(n: u32) -> Solver {
    let mut solver = Solver::new();
    let pigeons = n + 1;
    let var = |p: u32, h: u32| Lit::pos(Var::new(p * n + h));
    solver.ensure_vars((pigeons * n) as usize);
    for p in 0..pigeons {
        solver.add_clause((0..n).map(|h| var(p, h)));
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                solver.add_clause([!var(p1, h), !var(p2, h)]);
            }
        }
    }
    solver
}

/// A long chained-implication formula `x_0 → x_1 → … → x_{n-1}`, returned with
/// the trigger literal `x_0`.
///
/// Solving under the assumption `x_0` forces one unit propagation per link
/// with no conflicts, so `solve(&[trigger])` isolates raw propagation /
/// watch-list throughput: `n - 1` propagations per call, dominated by the
/// two-watched-literal walk.
pub fn implication_chain(n: usize) -> (Solver, Lit) {
    assert!(n >= 2, "a chain needs at least two variables");
    let mut solver = Solver::new();
    let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(solver.new_var())).collect();
    for w in lits.windows(2) {
        solver.add_clause([!w[0], w[1]]);
    }
    (solver, lits[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_sat::SatResult;

    #[test]
    fn pigeonhole_is_unsat() {
        let mut s = pigeonhole(3);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn chain_propagates_every_link() {
        let (mut s, trigger) = implication_chain(64);
        let before = s.stats().propagations;
        assert_eq!(s.solve(&[trigger]), SatResult::Sat);
        let propagated = s.stats().propagations - before;
        assert!(propagated >= 63, "expected ≥ 63 propagations: {propagated}");
    }
}
