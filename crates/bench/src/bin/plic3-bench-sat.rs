//! `plic3-bench-sat` — measures the SAT backend's micro-benchmarks and writes
//! a machine-readable `BENCH_sat.json`, so the perf trajectory of the solver
//! is tracked from one PR to the next.
//!
//! ```text
//! plic3-bench-sat [OPTIONS]
//!
//! Options:
//!   --out <path>      where to write the JSON report (default: BENCH_sat.json)
//!   --samples <n>     timed samples per benchmark (default: 20, or the
//!                     PLIC3_BENCH_SAMPLES environment variable; an explicit
//!                     --samples always wins)
//! ```
//!
//! Every conflict-driven workload is measured as a **paired A/B**: once under
//! the modern search defaults (EMA restarts, rephasing, chronological
//! backtracking, inprocessing) and once under [`SearchConfig::classic`] — the
//! pre-modernization engine (fixed Luby restarts, plain phase saving, no
//! inprocessing). The modern entry carries `speedup_vs_classic`
//! (`classic_median / modern_median`), so the before/after effect of the
//! search engine is recorded from one binary on one machine. Verdicts are
//! asserted inside the measured closures: a broken solver cannot masquerade
//! as a fast one.
//!
//! ```json
//! {
//!   "schema": "plic3-bench-sat/v2",
//!   "benches": {
//!     "sat/pigeonhole_7":         { "median_ns": 1234, ..., "speedup_vs_classic": 1.4 },
//!     "sat/pigeonhole_7_classic": { "median_ns": 1728, ... },
//!     "sat/propagate_chain_100k": { "median_ns": 1234, ..., "propagations_per_sec": 5.6e8 }
//!   }
//! }
//! ```

use plic3_bench::sat_workloads::{
    circuit_miter, implication_chain, incremental_activation_rounds, pigeonhole_with, random_3sat,
};
use plic3_bench::timing::{BenchResult, Criterion};
use plic3_sat::{SatResult, SearchConfig};
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;

/// Length of the implication chain driven by the propagation bench.
const CHAIN_LEN: usize = 100_000;

/// Variables / clauses of the satisfiable-leaning random 3-CNF workload
/// (ratio ≈ 4.0, below the phase transition) and the seed range solved per
/// iteration — several instances per sample smooth out the huge per-instance
/// variance of random SAT, so the A/B compares search engines rather than
/// the luck of one seed.
const RAND_SAT: (u32, u32, std::ops::Range<u64>) = (150, 600, 10..16);

/// Variables / clauses / seed range of the unsatisfiable-leaning random
/// 3-CNF workload (ratio ≈ 4.7, above the phase transition). Uniform random
/// UNSAT is the classic workload where glucose-style heuristics do *not*
/// pay; it is kept in the suite precisely so that regression stays visible.
const RAND_UNSAT: (u32, u32, std::ops::Range<u64>) = (110, 517, 0..6);

/// Inputs / gates / seed range of the circuit-miter workload: two copies of
/// one random AND/OR/XOR netlist over shared inputs with outputs asserted
/// to differ (always unsatisfiable). Tseitin gate variables are
/// definitional, so this is the workload where CNF inprocessing (variable
/// elimination, subsumption) pays — the A/B against classic search tracks
/// exactly that. Sized so each instance runs well past the inprocessing
/// pacing interval; smaller miters never reach their first elimination
/// round.
const MITER: (u32, u32, std::ops::Range<u64>) = (32, 340, 0..4);

/// Variables / clauses / rounds / seed of the IC3-shaped incremental
/// activation-literal workload (base ratio ≈ 3.6: satisfiable, so the rounds
/// mix Sat and Unsat verdicts like real relative-induction queries).
const INCREMENTAL: (u32, u32, u32, u64) = (120, 430, 400, 21);

struct Options {
    out: PathBuf,
    samples: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        out: PathBuf::from("BENCH_sat.json"),
        samples: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let value = args.next().ok_or("--out needs a path")?;
                options.out = PathBuf::from(value);
            }
            "--samples" => {
                let value = args.next().ok_or("--samples needs a value")?;
                let samples: usize = value.parse().map_err(|_| "invalid --samples value")?;
                if samples == 0 {
                    return Err("--samples must be at least 1".to_string());
                }
                options.samples = Some(samples);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(options)
}

/// Runs the chain workload once to count how many propagations one timed
/// iteration performs (the count is deterministic across iterations).
fn chain_propagations() -> u64 {
    let (mut solver, trigger) = implication_chain(CHAIN_LEN);
    let before = solver.stats().propagations;
    assert_eq!(solver.solve(&[trigger]), SatResult::Sat);
    solver.stats().propagations - before
}

/// Registers the modern/classic pair of one conflict-driven workload. The
/// workload returns a verdict fingerprint (any `Eq` summary of its results);
/// the fingerprint of the modern run is pinned and asserted against the
/// classic run inside the measured closures, so both sides provably solve
/// the same problems to the same answers.
fn bench_pair<T: PartialEq + std::fmt::Debug>(
    criterion: &mut Criterion,
    name: &str,
    mut run: impl FnMut(SearchConfig) -> T,
) {
    let modern = SearchConfig::default();
    let classic = SearchConfig::classic();
    let expected = run(modern);
    criterion.bench_function(&format!("sat/{name}"), |b| {
        b.iter(|| assert_eq!(black_box(run(modern)), expected, "{name}: modern verdict"))
    });
    criterion.bench_function(&format!("sat/{name}_classic"), |b| {
        b.iter(|| assert_eq!(black_box(run(classic)), expected, "{name}: classic verdict"))
    });
}

/// The pairing rule shared by the JSON report and the console summary: for a
/// modern entry, the median-over-median speedup against its `<name>_classic`
/// twin, if the entry is measurable and the twin exists.
fn classic_speedup(results: &[BenchResult], r: &BenchResult) -> Option<f64> {
    if r.name.ends_with("_classic") || r.median.as_nanos() == 0 {
        return None;
    }
    results
        .iter()
        .find(|c| c.name == format!("{}_classic", r.name))
        .map(|c| c.median.as_secs_f64() / r.median.as_secs_f64())
}

fn render_json(results: &[BenchResult], props_per_iter: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"plic3-bench-sat/v2\",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{}\": {{ \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}",
            r.name,
            r.median.as_nanos(),
            r.min.as_nanos(),
            r.mean.as_nanos(),
            r.samples
        );
        if r.name.starts_with("sat/propagate_chain") && r.median.as_nanos() > 0 {
            let per_sec = props_per_iter as f64 / r.median.as_secs_f64();
            let _ = write!(out, ", \"propagations_per_sec\": {per_sec:.0}");
        }
        // The modern side of a pair records its speedup over the classic side.
        if let Some(speedup) = classic_speedup(results, r) {
            let _ = write!(out, ", \"speedup_vs_classic\": {speedup:.3}");
        }
        out.push_str(" }");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let props_per_iter = chain_propagations();
    // An explicit --samples beats the PLIC3_BENCH_SAMPLES environment
    // override; without it the environment (or the default of 20) applies.
    let mut criterion = match options.samples {
        Some(samples) => Criterion::with_sample_size(samples),
        None => Criterion::default().sample_size(20),
    };

    bench_pair(&mut criterion, "pigeonhole_7", |search| {
        let mut solver = pigeonhole_with(7, search);
        let verdict = solver.solve(&[]);
        assert_eq!(verdict, SatResult::Unsat, "pigeonhole must be unsat");
        verdict
    });
    let (sv, sc, ss) = RAND_SAT;
    bench_pair(&mut criterion, "random3sat_sat_150v_x6", move |search| {
        ss.clone()
            .map(|seed| {
                let mut solver = random_3sat(sv, sc, seed, search);
                solver.solve(&[])
            })
            .collect::<Vec<_>>()
    });
    let (uv, uc, us) = RAND_UNSAT;
    bench_pair(&mut criterion, "random3sat_unsat_110v_x6", move |search| {
        us.clone()
            .map(|seed| {
                let mut solver = random_3sat(uv, uc, seed, search);
                solver.solve(&[])
            })
            .collect::<Vec<_>>()
    });
    let (mi, mg, ms) = MITER;
    bench_pair(&mut criterion, "circuit_miter_32i_340g_x4", move |search| {
        ms.clone()
            .map(|seed| {
                let mut solver = circuit_miter(mi, mg, seed, search);
                let verdict = solver.solve(&[]);
                assert_eq!(verdict, SatResult::Unsat, "a miter of equal circuits");
                verdict
            })
            .collect::<Vec<_>>()
    });
    // The incremental workload's "verdict" is the number of Sat rounds; it is
    // search-independent and pinned the same way.
    let (iv, ic, ir, is) = INCREMENTAL;
    bench_pair(&mut criterion, "incremental_act_400r", |search| {
        incremental_activation_rounds(iv, ic, ir, is, search)
    });
    criterion.bench_function("sat/propagate_chain_100k", |b| {
        // The solver (and its clause arena) is built once; every iteration
        // re-propagates the whole chain under the trigger assumption.
        let (mut solver, trigger) = implication_chain(CHAIN_LEN);
        b.iter(|| black_box(solver.solve(&[trigger])))
    });

    let json = render_json(criterion.results(), props_per_iter);
    if let Some(result) = criterion
        .results()
        .iter()
        .find(|r| r.name.starts_with("sat/propagate_chain"))
    {
        let per_sec = props_per_iter as f64 / result.median.as_secs_f64();
        println!("{:<40} {per_sec:.3e} propagations/s", "sat/throughput");
    }
    for r in criterion.results() {
        if let Some(speedup) = classic_speedup(criterion.results(), r) {
            println!("{:<40} {speedup:.2}x vs classic", r.name);
        }
    }
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("error: cannot write {:?}: {e}", options.out);
        std::process::exit(1);
    }
    eprintln!("wrote {:?}", options.out);
}
