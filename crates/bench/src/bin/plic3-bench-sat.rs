//! `plic3-bench-sat` — measures the SAT backend's micro-benchmarks and writes
//! a machine-readable `BENCH_sat.json`, so the perf trajectory of the solver
//! is tracked from one PR to the next.
//!
//! ```text
//! plic3-bench-sat [OPTIONS]
//!
//! Options:
//!   --out <path>      where to write the JSON report (default: BENCH_sat.json)
//!   --samples <n>     timed samples per benchmark (default: 20, or the
//!                     PLIC3_BENCH_SAMPLES environment variable; an explicit
//!                     --samples always wins)
//! ```
//!
//! The JSON maps each benchmark to its median/min/mean nanoseconds, plus a
//! `propagations_per_sec` figure for the propagation-throughput bench:
//!
//! ```json
//! {
//!   "schema": "plic3-bench-sat/v1",
//!   "benches": {
//!     "sat/pigeonhole_7": { "median_ns": 1234, ... },
//!     "sat/propagate_chain_100k": { "median_ns": 1234, ..., "propagations_per_sec": 5.6e8 }
//!   }
//! }
//! ```

use plic3_bench::sat_workloads::{implication_chain, pigeonhole};
use plic3_bench::timing::{BenchResult, Criterion};
use plic3_sat::SatResult;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;

/// Length of the implication chain driven by the propagation bench.
const CHAIN_LEN: usize = 100_000;

struct Options {
    out: PathBuf,
    samples: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        out: PathBuf::from("BENCH_sat.json"),
        samples: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let value = args.next().ok_or("--out needs a path")?;
                options.out = PathBuf::from(value);
            }
            "--samples" => {
                let value = args.next().ok_or("--samples needs a value")?;
                let samples: usize = value.parse().map_err(|_| "invalid --samples value")?;
                if samples == 0 {
                    return Err("--samples must be at least 1".to_string());
                }
                options.samples = Some(samples);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(options)
}

/// Runs the chain workload once to count how many propagations one timed
/// iteration performs (the count is deterministic across iterations).
fn chain_propagations() -> u64 {
    let (mut solver, trigger) = implication_chain(CHAIN_LEN);
    let before = solver.stats().propagations;
    assert_eq!(solver.solve(&[trigger]), SatResult::Sat);
    solver.stats().propagations - before
}

fn render_json(results: &[BenchResult], props_per_iter: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"plic3-bench-sat/v1\",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{}\": {{ \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}",
            r.name,
            r.median.as_nanos(),
            r.min.as_nanos(),
            r.mean.as_nanos(),
            r.samples
        );
        if r.name.starts_with("sat/propagate_chain") && r.median.as_nanos() > 0 {
            let per_sec = props_per_iter as f64 / r.median.as_secs_f64();
            let _ = write!(out, ", \"propagations_per_sec\": {per_sec:.0}");
        }
        out.push_str(" }");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let props_per_iter = chain_propagations();
    // An explicit --samples beats the PLIC3_BENCH_SAMPLES environment
    // override; without it the environment (or the default of 20) applies.
    let mut criterion = match options.samples {
        Some(samples) => Criterion::with_sample_size(samples),
        None => Criterion::default().sample_size(20),
    };
    criterion.bench_function("sat/pigeonhole_7", |b| {
        b.iter(|| {
            let mut solver = pigeonhole(7);
            black_box(solver.solve(&[]))
        })
    });
    criterion.bench_function("sat/propagate_chain_100k", |b| {
        // The solver (and its clause arena) is built once; every iteration
        // re-propagates the whole chain under the trigger assumption.
        let (mut solver, trigger) = implication_chain(CHAIN_LEN);
        b.iter(|| black_box(solver.solve(&[trigger])))
    });
    let json = render_json(criterion.results(), props_per_iter);
    if let Some(result) = criterion
        .results()
        .iter()
        .find(|r| r.name.starts_with("sat/propagate_chain"))
    {
        let per_sec = props_per_iter as f64 / result.median.as_secs_f64();
        println!("{:<40} {per_sec:.3e} propagations/s", "sat/throughput");
    }
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("error: cannot write {:?}: {e}", options.out);
        std::process::exit(1);
    }
    eprintln!("wrote {:?}", options.out);
}
