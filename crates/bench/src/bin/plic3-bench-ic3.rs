//! `plic3-bench-ic3` — measures the IC3 engine end to end (encode → check →
//! verify) on raw-vs-preprocessed workload pairs and writes a machine-readable
//! `BENCH_ic3.json`, so the perf trajectory of the *engine* — not just the SAT
//! backend — is tracked from one PR to the next.
//!
//! ```text
//! plic3-bench-ic3 [OPTIONS]
//!
//! Options:
//!   --out <path>      where to write the JSON report (default: BENCH_ic3.json)
//!   --samples <n>     timed samples per benchmark (default: 10, or the
//!                     PLIC3_BENCH_SAMPLES environment variable; an explicit
//!                     --samples always wins)
//! ```
//!
//! Each workload is measured three times — `…_raw` checks the original
//! circuit with the single IC3 engine, `…_prep` runs the `plic3-prep`
//! pipeline first (its cost is part of the measured time), and
//! `…_portfolio` runs preprocessing plus the in-process portfolio engine
//! (BMC, k-induction and four IC3 variants racing; the verdict is verified
//! like the others). The JSON records the pairwise speedups:
//!
//! ```json
//! {
//!   "schema": "plic3-bench-ic3/v1",
//!   "benches": {
//!     "ic3/redundant_rings_raw":  { "median_ns": 1234, ... },
//!     "ic3/redundant_rings_prep": { "median_ns": 617, ..., "speedup_vs_raw": 2.0 },
//!     "ic3/redundant_rings_portfolio": { "median_ns": 400, ...,
//!         "speedup_vs_best_single": 1.5 }
//!   }
//! }
//! ```
//!
//! `speedup_vs_best_single` compares the portfolio against the **better** of
//! the two single-engine runs of the same workload.

use plic3::{Config, Ic3};
use plic3_aig::Aig;
use plic3_bench::ic3_workloads::{guarded_counter, redundant_rings, redundant_unsafe_counter};
use plic3_bench::timing::{BenchResult, Criterion};
use plic3_portfolio::{Portfolio, PortfolioConfig};
use plic3_prep::preprocess;
use plic3_ts::TransitionSystem;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;

struct Options {
    out: PathBuf,
    samples: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        out: PathBuf::from("BENCH_ic3.json"),
        samples: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let value = args.next().ok_or("--out needs a path")?;
                options.out = PathBuf::from(value);
            }
            "--samples" => {
                let value = args.next().ok_or("--samples needs a value")?;
                let samples: usize = value.parse().map_err(|_| "invalid --samples value")?;
                if samples == 0 {
                    return Err("--samples must be at least 1".to_string());
                }
                options.samples = Some(samples);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(options)
}

/// One timed iteration without preprocessing: encode the original circuit and
/// run IC3 on it. Panics if the verdict is not the expected one, so a broken
/// engine cannot masquerade as a fast one.
fn check_raw(aig: &Aig, expect_safe: bool) {
    let mut engine = Ic3::from_aig(aig, Config::ric3_like().with_lemma_prediction(true));
    let result = engine.check();
    assert_eq!(result.is_safe(), expect_safe, "raw verdict flipped");
    black_box(result);
}

/// One timed iteration with preprocessing: simplify, encode, check, and — for
/// unsafe circuits — map the witness back and replay it on the original, so
/// the measured time covers the entire pipeline the harness runs.
fn check_prep(aig: &Aig, expect_safe: bool) {
    let prep = preprocess(aig);
    let ts = TransitionSystem::from_aig(&prep.aig);
    let mut engine = Ic3::new(ts, Config::ric3_like().with_lemma_prediction(true));
    let result = engine.check();
    assert_eq!(
        result.is_safe(),
        expect_safe,
        "preprocessed verdict flipped"
    );
    if let Some(trace) = result.trace() {
        assert!(
            prep.replay_on_original(engine.ts(), trace),
            "witness failed to replay on the original circuit"
        );
    }
    black_box(result);
}

/// One timed iteration of the portfolio engine: simplify, encode, race the
/// default worker set, and verify the winning verdict — the same pipeline the
/// harness runs under `--engine portfolio`. Panics on a wrong or unverified
/// verdict.
fn check_portfolio(aig: &Aig, expect_safe: bool) {
    let prep = preprocess(aig);
    let ts = TransitionSystem::from_aig(&prep.aig);
    let mut portfolio = Portfolio::new(ts, PortfolioConfig::default());
    let outcome = portfolio.check();
    match &outcome.result {
        plic3_portfolio::PortfolioResult::Safe(proof) => {
            assert!(expect_safe, "portfolio verdict flipped");
            plic3_portfolio::verify_safety_proof(portfolio.ts(), proof)
                .expect("winning proof verifies");
        }
        plic3_portfolio::PortfolioResult::Unsafe(trace) => {
            assert!(!expect_safe, "portfolio verdict flipped");
            assert!(
                prep.replay_on_original(portfolio.ts(), trace),
                "witness failed to replay on the original circuit"
            );
        }
        plic3_portfolio::PortfolioResult::Unknown(reason) => {
            panic!("portfolio gave up ({reason}) on a tracked workload")
        }
    }
    black_box(outcome);
}

fn render_json(results: &[BenchResult]) -> String {
    let median_of = |name: &str| -> Option<u128> {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median.as_nanos())
    };
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"plic3-bench-ic3/v1\",\n  \"benches\": {\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    \"{}\": {{ \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"samples\": {}",
            r.name,
            r.median.as_nanos(),
            r.min.as_nanos(),
            r.mean.as_nanos(),
            r.samples
        );
        if let Some(raw_name) = r.name.strip_suffix("_prep").map(|b| format!("{b}_raw")) {
            if let Some(raw_median) = median_of(&raw_name) {
                if r.median.as_nanos() > 0 {
                    let speedup = raw_median as f64 / r.median.as_nanos() as f64;
                    let _ = write!(out, ", \"speedup_vs_raw\": {speedup:.3}");
                }
            }
        }
        if let Some(base) = r.name.strip_suffix("_portfolio") {
            let best_single = [format!("{base}_raw"), format!("{base}_prep")]
                .iter()
                .filter_map(|name| median_of(name))
                .min();
            if let Some(best) = best_single {
                if r.median.as_nanos() > 0 {
                    let speedup = best as f64 / r.median.as_nanos() as f64;
                    let _ = write!(out, ", \"speedup_vs_best_single\": {speedup:.3}");
                }
            }
        }
        out.push_str(" }");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    // An explicit --samples beats the PLIC3_BENCH_SAMPLES environment
    // override; without it the environment (or the default of 10) applies.
    let mut criterion = match options.samples {
        Some(samples) => Criterion::with_sample_size(samples),
        None => Criterion::default().sample_size(10),
    };
    let workloads: [(&str, Aig, bool); 3] = [
        ("ic3/redundant_rings", redundant_rings(3, 7), true),
        ("ic3/guarded_counter", guarded_counter(5, 8), true),
        (
            "ic3/redundant_unsafe_counter",
            redundant_unsafe_counter(3, 4),
            false,
        ),
    ];
    for (name, aig, expect_safe) in &workloads {
        criterion.bench_function(&format!("{name}_raw"), |b| {
            b.iter(|| check_raw(aig, *expect_safe))
        });
        criterion.bench_function(&format!("{name}_prep"), |b| {
            b.iter(|| check_prep(aig, *expect_safe))
        });
        criterion.bench_function(&format!("{name}_portfolio"), |b| {
            b.iter(|| check_portfolio(aig, *expect_safe))
        });
    }
    let json = render_json(criterion.results());
    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("error: cannot write {:?}: {e}", options.out);
        std::process::exit(1);
    }
    eprintln!("wrote {:?}", options.out);
}
