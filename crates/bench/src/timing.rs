//! A minimal, dependency-free stand-in for the slice of the Criterion API the
//! benches use.
//!
//! The workspace deliberately has no external dependencies, so instead of
//! pulling in Criterion the bench binaries (`harness = false`) drive this
//! module: [`Criterion::bench_function`] runs the measured closure a fixed
//! number of times and reports min / median / mean wall-clock times to stdout.
//! The API mirrors Criterion's (`sample_size`, `benchmark_group`,
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main)), so swapping the real Criterion
//! back in later is a one-line import change per bench file.

use std::time::{Duration, Instant};

/// Aggregated timings of one benchmark, kept by the driver so binaries can
/// export machine-readable results (see `BENCH_sat.json`).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Group-qualified benchmark name, e.g. `sat/pigeonhole_7`.
    pub name: String,
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Number of samples collected.
    pub samples: usize,
}

/// The measurement driver: holds the sample count and renders results.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `PLIC3_BENCH_SAMPLES` overrides the sample count globally; CI sets
        // it to 1 so the bench smoke step compiles and runs everything without
        // paying for statistics.
        let sample_size = std::env::var("PLIC3_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Criterion {
            sample_size: sample_size.max(1),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Creates a driver with an explicit sample count that is *not* subject
    /// to the `PLIC3_BENCH_SAMPLES` override (for binaries whose own CLI flag
    /// must win over the environment).
    pub fn with_sample_size(samples: usize) -> Self {
        Criterion {
            sample_size: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Sets how many timed samples each benchmark collects (ignored when the
    /// `PLIC3_BENCH_SAMPLES` environment variable is set, so CI can collapse
    /// every bench to a single smoke iteration).
    pub fn sample_size(mut self, samples: usize) -> Self {
        if std::env::var_os("PLIC3_BENCH_SAMPLES").is_none() {
            self.sample_size = samples.max(1);
        }
        self
    }

    /// Measures `f` (which must call [`Bencher::iter`]) and prints a summary
    /// line for `name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if let Some(result) = summarize(name, &mut bencher.samples) {
            self.results.push(result);
        }
        self
    }

    /// The results of every benchmark measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Opens a named group; benchmarks inside it are reported as
    /// `group/benchmark`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
        }
    }
}

/// A named collection of related benchmarks (mirrors Criterion's groups).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Measures `f` under the group-qualified name.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (a no-op, kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects one wall-clock sample per invocation of the measured closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample, timing each run individually.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..self.sample_size {
            let started = Instant::now();
            let value = f();
            self.samples.push(started.elapsed());
            drop(value);
        }
    }
}

fn summarize(name: &str, samples: &mut [Duration]) -> Option<BenchResult> {
    if samples.is_empty() {
        println!("{name:<40} no samples (did the bench call iter()?)");
        return None;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{name:<40} min {min:>12?}   median {median:>12?}   mean {mean:>12?}   ({} samples)",
        samples.len()
    );
    Some(BenchResult {
        name: name.to_string(),
        min,
        median,
        mean,
        samples: samples.len(),
    })
}

/// Declares a bench group function, mirroring Criterion's macro of the same
/// name: both the `name = …; config = …; targets = …` form and the positional
/// form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::timing::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` of a `harness = false` bench binary, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests build drivers with `with_sample_size`, which is exempt from
    // the PLIC3_BENCH_SAMPLES override, so they pass in any environment
    // (including a shell reproducing the CI bench-smoke step).

    #[test]
    fn bencher_collects_requested_samples() {
        let mut criterion = Criterion::with_sample_size(3);
        let mut runs = 0;
        criterion.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
        assert_eq!(criterion.results().len(), 1);
        assert_eq!(criterion.results()[0].samples, 3);
    }

    #[test]
    fn groups_share_the_driver_sample_size() {
        let mut criterion = Criterion::with_sample_size(2);
        let mut runs = 0;
        let mut group = criterion.benchmark_group("group");
        group.bench_function("a", |b| b.iter(|| runs += 1));
        group.bench_function("b", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4);
        assert_eq!(criterion.results()[1].name, "group/b");
    }
}
