//! One Criterion target per table and figure of the paper's evaluation.
//!
//! * `table1/*`  — Table 1, cases solved per configuration,
//! * `table2/*`  — Table 2, average success rates of the `-pl` configurations,
//! * `fig2/*`    — Figure 2, solved-within-time-limit curves,
//! * `fig3/*`    — Figure 3, base vs prediction runtime scatter,
//! * `fig4/*`    — Figure 4, runtime ratio vs `SR_adv`,
//! * `ablation/*`— the DESIGN.md ablation variants.
//!
//! Each bench measures the work behind the artifact (running the scaled-down
//! workload and building the report), so `cargo bench` regenerates every
//! experiment end to end.

use plic3_bench::timing::Criterion;
use plic3_bench::{bench_runner, bench_suite, criterion_group, criterion_main, scatter_pairs};
use plic3_harness::{ablation, fig2, fig3, fig4, run_experiment, table1, table2, Configuration};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let suite = bench_suite();
    let runner = bench_runner();
    c.bench_function("table1/solved_per_configuration", |b| {
        b.iter(|| {
            let data = run_experiment(&suite, &Configuration::all(), &runner);
            let table = table1::build(&data);
            assert_eq!(table.rows.len(), 6);
            black_box(table1::render(&table))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let suite = bench_suite();
    let runner = bench_runner();
    c.bench_function("table2/success_rates", |b| {
        b.iter(|| {
            let data = run_experiment(
                &suite,
                &[Configuration::Ric3Pl, Configuration::Ic3refPl],
                &runner,
            );
            let table = table2::build(&data);
            assert_eq!(table.rows.len(), 2);
            black_box(table2::render(&table))
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let suite = bench_suite();
    let runner = bench_runner();
    c.bench_function("fig2/cactus_curves", |b| {
        b.iter(|| {
            let data = run_experiment(&suite, &Configuration::all(), &runner);
            let fig = fig2::build(&data, &fig2::default_limits(runner.timeout));
            assert_eq!(fig.series.len(), 6);
            black_box(fig2::render(&fig))
        })
    });
}

fn bench_fig3(c: &mut Criterion) {
    let suite = bench_suite();
    let runner = bench_runner();
    let configs: Vec<Configuration> = scatter_pairs()
        .into_iter()
        .flat_map(|(a, b)| [a, b])
        .collect();
    c.bench_function("fig3/runtime_scatter", |b| {
        b.iter(|| {
            let data = run_experiment(&suite, &configs, &runner);
            let fig = fig3::build(&data);
            assert_eq!(fig.scatters.len(), 2);
            black_box(fig3::render(&fig))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let suite = bench_suite();
    let runner = bench_runner();
    c.bench_function("fig4/ratio_vs_sr_adv", |b| {
        b.iter(|| {
            let data = run_experiment(
                &suite,
                &[Configuration::Ric3, Configuration::Ric3Pl],
                &runner,
            );
            let fig = fig4::build(&data, runner.fast_case_threshold);
            black_box(fig4::render(&fig))
        })
    });
}

fn bench_ablation(c: &mut Criterion) {
    let suite = bench_suite().filter(|b| matches!(b.family(), "shift" | "gray" | "ring"));
    let runner = bench_runner();
    let variants = ablation::default_variants();
    c.bench_function("ablation/design_knobs", |b| {
        b.iter(|| {
            let report = ablation::run(&suite, &variants, &runner);
            assert_eq!(report.rows.len(), variants.len());
            black_box(ablation::render(&report))
        })
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_fig2, bench_fig3, bench_fig4, bench_ablation
}
criterion_main!(experiments);
