//! Micro-benchmarks of the individual engines and of the generalization /
//! prediction machinery (the "where does the time go" companion to the
//! experiment benches).

use plic3::{Config, GeneralizeMode, Ic3};
use plic3_bench::sat_workloads::{implication_chain, pigeonhole};
use plic3_bench::timing::Criterion;
use plic3_bench::{criterion_group, criterion_main, prediction_showcase};
use plic3_bmc::{Bmc, KInduction};
use std::hint::black_box;

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole_7", |b| {
        b.iter(|| {
            let mut solver = pigeonhole(7);
            black_box(solver.solve(&[]))
        })
    });
    // Raw propagation throughput: one long implication chain, re-propagated
    // from scratch on every solve call (~100k propagations per iteration, no
    // conflicts). `plic3-bench-sat` reports the same workload as
    // propagations/s in BENCH_sat.json.
    c.bench_function("sat/propagate_chain_100k", |b| {
        let (mut solver, trigger) = implication_chain(100_000);
        b.iter(|| black_box(solver.solve(&[trigger])))
    });
}

fn bench_ic3_prediction(c: &mut Criterion) {
    let bench = prediction_showcase();
    let mut group = c.benchmark_group("ic3/generalization");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut engine = Ic3::new(bench.ts(), Config::ric3_like());
            black_box(engine.check())
        })
    });
    group.bench_function("lemma_prediction", |b| {
        b.iter(|| {
            let mut engine = Ic3::new(bench.ts(), Config::ric3_like().with_lemma_prediction(true));
            black_box(engine.check())
        })
    });
    group.bench_function("plain_mic", |b| {
        b.iter(|| {
            let mut engine = Ic3::new(
                bench.ts(),
                Config::ric3_like().with_generalize(GeneralizeMode::Mic),
            );
            black_box(engine.check())
        })
    });
    group.finish();
}

fn bench_bmc_and_kind(c: &mut Criterion) {
    let suite = plic3_benchmarks::Suite::hwmcc_like();
    let unsafe_counter = suite
        .find("counter_enabled_unsafe_6")
        .expect("instance exists")
        .clone();
    let safe_shift = suite
        .find("shift_zero_safe_8")
        .expect("instance exists")
        .clone();
    let mut group = c.benchmark_group("baselines");
    group.bench_function("bmc/counter_bug", |b| {
        let ts = unsafe_counter.ts();
        b.iter(|| {
            let mut bmc = Bmc::new(&ts);
            black_box(bmc.check(12))
        })
    });
    group.bench_function("kind/shift_register", |b| {
        let ts = safe_shift.ts();
        b.iter(|| {
            let mut kind = KInduction::new(&ts);
            black_box(kind.check(10))
        })
    });
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = bench_sat, bench_ic3_prediction, bench_bmc_and_kind
}
criterion_main!(engine);
