//! Micro-benchmarks of the individual engines and of the generalization /
//! prediction machinery (the "where does the time go" companion to the
//! experiment benches).

use plic3::{Config, GeneralizeMode, Ic3};
use plic3_bench::timing::Criterion;
use plic3_bench::{criterion_group, criterion_main, prediction_showcase};
use plic3_bmc::{Bmc, KInduction};
use plic3_logic::{Lit, Var};
use plic3_sat::Solver;
use std::hint::black_box;

/// Pigeonhole formula: n+1 pigeons into n holes (unsatisfiable).
fn pigeonhole(n: u32) -> Solver {
    let mut solver = Solver::new();
    let pigeons = n + 1;
    let var = |p: u32, h: u32| Lit::pos(Var::new(p * n + h));
    solver.ensure_vars((pigeons * n) as usize);
    for p in 0..pigeons {
        solver.add_clause((0..n).map(|h| var(p, h)));
    }
    for h in 0..n {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                solver.add_clause([!var(p1, h), !var(p2, h)]);
            }
        }
    }
    solver
}

fn bench_sat(c: &mut Criterion) {
    c.bench_function("sat/pigeonhole_7", |b| {
        b.iter(|| {
            let mut solver = pigeonhole(7);
            black_box(solver.solve(&[]))
        })
    });
}

fn bench_ic3_prediction(c: &mut Criterion) {
    let bench = prediction_showcase();
    let mut group = c.benchmark_group("ic3/generalization");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut engine = Ic3::new(bench.ts(), Config::ric3_like());
            black_box(engine.check())
        })
    });
    group.bench_function("lemma_prediction", |b| {
        b.iter(|| {
            let mut engine = Ic3::new(bench.ts(), Config::ric3_like().with_lemma_prediction(true));
            black_box(engine.check())
        })
    });
    group.bench_function("plain_mic", |b| {
        b.iter(|| {
            let mut engine = Ic3::new(
                bench.ts(),
                Config::ric3_like().with_generalize(GeneralizeMode::Mic),
            );
            black_box(engine.check())
        })
    });
    group.finish();
}

fn bench_bmc_and_kind(c: &mut Criterion) {
    let suite = plic3_benchmarks::Suite::hwmcc_like();
    let unsafe_counter = suite
        .find("counter_enabled_unsafe_6")
        .expect("instance exists")
        .clone();
    let safe_shift = suite
        .find("shift_zero_safe_8")
        .expect("instance exists")
        .clone();
    let mut group = c.benchmark_group("baselines");
    group.bench_function("bmc/counter_bug", |b| {
        let ts = unsafe_counter.ts();
        b.iter(|| {
            let mut bmc = Bmc::new(&ts);
            black_box(bmc.check(12))
        })
    });
    group.bench_function("kind/shift_register", |b| {
        let ts = safe_shift.ts();
        b.iter(|| {
            let mut kind = KInduction::new(&ts);
            black_box(kind.check(10))
        })
    });
    group.finish();
}

criterion_group! {
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = bench_sat, bench_ic3_prediction, bench_bmc_and_kind
}
criterion_main!(engine);
