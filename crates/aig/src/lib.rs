//! And-Inverter Graphs and the AIGER exchange format.
//!
//! The HWMCC benchmark suites used by *Predicting Lemmas in Generalization of
//! IC3* (DAC 2024) are distributed as AIGER circuits. This crate provides the
//! circuit layer of the reproduction:
//!
//! * [`Aig`] — an and-inverter graph with inputs, latches, and gates, outputs,
//!   bad-state properties and invariant constraints (AIGER 1.9 features),
//! * [`AigBuilder`] — programmatic construction with structural hashing and
//!   constant folding, used by the synthetic benchmark families,
//! * [`parse_aiger`] / [`Aig::to_ascii`] / [`Aig::to_binary`] — readers and
//!   writers for both the ASCII (`aag`) and binary (`aig`) formats,
//! * [`Simulator`] — cycle-accurate simulation, used to replay and validate
//!   counterexample traces produced by the model checkers.
//!
//! # Example
//!
//! ```
//! use plic3_aig::AigBuilder;
//!
//! // A 1-bit counter that toggles every cycle; the bad state is "latch is 1
//! // while the freeze input is 1".
//! let mut b = AigBuilder::new();
//! let freeze = b.input();
//! let state = b.latch(Some(false));
//! b.set_latch_next(state, !state);
//! let bad = b.and(state, freeze);
//! b.add_bad(bad);
//! let aig = b.build();
//! assert_eq!(aig.num_inputs(), 1);
//! assert_eq!(aig.num_latches(), 1);
//! assert_eq!(aig.num_bad(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aig;
mod builder;
mod lit;
mod parser;
mod sim;
mod writer;

pub use aig::{Aig, AndGate, Latch, ValidateAigError};
pub use builder::AigBuilder;
pub use lit::AigLit;
pub use parser::{parse_aiger, ParseAigerError};
pub use sim::{SimStep, Simulator};
