//! The and-inverter graph data structure.

use crate::AigLit;
use std::error::Error;
use std::fmt;

/// A latch (state-holding element) of an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Latch {
    /// The (positive) literal representing the latch output.
    pub lit: AigLit,
    /// The literal driving the next-state value.
    pub next: AigLit,
    /// The reset value: `Some(false)` / `Some(true)` for constant resets, `None`
    /// for an uninitialized latch (free initial value).
    pub init: Option<bool>,
}

/// A two-input AND gate of an [`Aig`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AndGate {
    /// The (positive, even) literal defined by this gate.
    pub lhs: AigLit,
    /// First operand.
    pub rhs0: AigLit,
    /// Second operand.
    pub rhs1: AigLit,
}

/// An and-inverter graph in the AIGER variable numbering:
/// variable `0` is the constant, variables `1..=I` are inputs, the next `L`
/// variables are latches, and the remaining `A` variables are AND gates.
///
/// Sequential properties are expressed through `bad` literals (AIGER 1.9) or,
/// for AIGER 1.0 files, through `outputs` which are conventionally interpreted
/// as bad-state indicators by HWMCC tools. Invariant `constraints` restrict the
/// reachable state space.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Aig {
    pub(crate) num_inputs: usize,
    pub(crate) latches: Vec<Latch>,
    pub(crate) ands: Vec<AndGate>,
    pub(crate) outputs: Vec<AigLit>,
    pub(crate) bad: Vec<AigLit>,
    pub(crate) constraints: Vec<AigLit>,
    pub(crate) comments: Vec<String>,
}

impl Aig {
    /// Creates an empty graph (no inputs, latches, gates, or properties).
    pub fn new() -> Self {
        Aig::default()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.ands.len()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of bad-state properties.
    pub fn num_bad(&self) -> usize {
        self.bad.len()
    }

    /// Number of invariant constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The maximum variable index (the `M` of the AIGER header).
    pub fn max_var(&self) -> u32 {
        (self.num_inputs + self.latches.len() + self.ands.len()) as u32
    }

    /// Estimated heap footprint of the graph in bytes, for memory-budget
    /// accounting (e.g. against a `ResourceBudget` held by a caller). An
    /// estimate is enough: budgets are advisory, not allocator hooks.
    pub fn estimated_bytes(&self) -> u64 {
        (self.latches.len() * std::mem::size_of::<Latch>()
            + self.ands.len() * std::mem::size_of::<AndGate>()
            + (self.outputs.len() + self.bad.len() + self.constraints.len())
                * std::mem::size_of::<AigLit>()
            + self.comments.iter().map(String::len).sum::<usize>()) as u64
    }

    /// The literal of the `i`-th primary input (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    pub fn input(&self, i: usize) -> AigLit {
        assert!(i < self.num_inputs, "input index out of range");
        AigLit::positive(1 + i as u32)
    }

    /// The latches of the graph.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The AND gates of the graph, in topological (increasing-variable) order.
    pub fn ands(&self) -> &[AndGate] {
        &self.ands
    }

    /// The output literals.
    pub fn outputs(&self) -> &[AigLit] {
        &self.outputs
    }

    /// The bad-state literals.
    pub fn bad(&self) -> &[AigLit] {
        &self.bad
    }

    /// The invariant-constraint literals.
    pub fn constraints(&self) -> &[AigLit] {
        &self.constraints
    }

    /// Comment lines carried by the AIGER file (if any).
    pub fn comments(&self) -> &[String] {
        &self.comments
    }

    /// The literal to be used as *the* safety property for model checking: the
    /// first bad literal if present, otherwise the first output (the HWMCC
    /// convention for AIGER 1.0 files), otherwise `None`.
    pub fn property_literal(&self) -> Option<AigLit> {
        self.bad.first().or_else(|| self.outputs.first()).copied()
    }

    /// Returns `true` if `lit` refers to an input variable.
    pub fn is_input_lit(&self, lit: AigLit) -> bool {
        let v = lit.variable() as usize;
        v >= 1 && v <= self.num_inputs
    }

    /// Returns `true` if `lit` refers to a latch variable.
    pub fn is_latch_lit(&self, lit: AigLit) -> bool {
        let v = lit.variable() as usize;
        v > self.num_inputs && v <= self.num_inputs + self.latches.len()
    }

    /// Returns `true` if `lit` refers to an AND-gate variable.
    pub fn is_and_lit(&self, lit: AigLit) -> bool {
        let v = lit.variable() as usize;
        v > self.num_inputs + self.latches.len() && v <= self.max_var() as usize
    }

    /// The index of the latch whose output variable is `lit.variable()`, if any.
    pub fn latch_index(&self, lit: AigLit) -> Option<usize> {
        if self.is_latch_lit(lit) {
            Some(lit.variable() as usize - self.num_inputs - 1)
        } else {
            None
        }
    }

    /// The gate defining `lit.variable()`, if it is an AND variable.
    pub fn and_for(&self, lit: AigLit) -> Option<&AndGate> {
        if self.is_and_lit(lit) {
            let idx = lit.variable() as usize - self.num_inputs - self.latches.len() - 1;
            Some(&self.ands[idx])
        } else {
            None
        }
    }

    /// Checks the structural invariants of the AIGER format.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateAigError`] if a gate is defined by a negated or
    /// non-increasing literal, if an operand refers to a variable defined later
    /// (a combinational cycle), or if a latch/property refers to an unknown
    /// variable.
    pub fn validate(&self) -> Result<(), ValidateAigError> {
        let max = self.max_var();
        let check_ref = |lit: AigLit, what: &str| {
            if lit.variable() > max {
                Err(ValidateAigError::new(format!(
                    "{what} literal {lit} refers to unknown variable {}",
                    lit.variable()
                )))
            } else {
                Ok(())
            }
        };
        let first_and_var = (self.num_inputs + self.latches.len() + 1) as u32;
        for (i, gate) in self.ands.iter().enumerate() {
            let expected = first_and_var + i as u32;
            if gate.lhs.is_negated() || gate.lhs.variable() != expected {
                return Err(ValidateAigError::new(format!(
                    "gate {i} must be defined by literal {}, found {}",
                    AigLit::positive(expected),
                    gate.lhs
                )));
            }
            for rhs in [gate.rhs0, gate.rhs1] {
                check_ref(rhs, "gate operand")?;
                if rhs.variable() >= gate.lhs.variable() {
                    return Err(ValidateAigError::new(format!(
                        "gate {} uses operand {} that is not defined earlier",
                        gate.lhs, rhs
                    )));
                }
            }
        }
        for (i, latch) in self.latches.iter().enumerate() {
            let expected = (self.num_inputs + 1 + i) as u32;
            if latch.lit.is_negated() || latch.lit.variable() != expected {
                return Err(ValidateAigError::new(format!(
                    "latch {i} must be variable {expected}, found {}",
                    latch.lit
                )));
            }
            check_ref(latch.next, "latch next-state")?;
        }
        for &o in &self.outputs {
            check_ref(o, "output")?;
        }
        for &b in &self.bad {
            check_ref(b, "bad")?;
        }
        for &c in &self.constraints {
            check_ref(c, "constraint")?;
        }
        Ok(())
    }
}

impl fmt::Display for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aig M={} I={} L={} O={} A={} B={} C={}",
            self.max_var(),
            self.num_inputs,
            self.latches.len(),
            self.outputs.len(),
            self.ands.len(),
            self.bad.len(),
            self.constraints.len()
        )
    }
}

/// Error returned by [`Aig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateAigError {
    message: String,
}

impl ValidateAigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ValidateAigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidateAigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIG: {}", self.message)
    }
}

impl Error for ValidateAigError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AigBuilder;

    fn toggle_aig() -> Aig {
        let mut b = AigBuilder::new();
        let enable = b.input();
        let state = b.latch(Some(false));
        let toggled = b.xor(state, enable);
        b.set_latch_next(state, toggled);
        b.add_bad(state);
        b.add_output(state);
        b.build()
    }

    #[test]
    fn counts_and_classification() {
        let aig = toggle_aig();
        assert_eq!(aig.num_inputs(), 1);
        assert_eq!(aig.num_latches(), 1);
        assert!(aig.num_ands() >= 1);
        assert_eq!(aig.num_bad(), 1);
        assert_eq!(aig.num_outputs(), 1);
        let input = aig.input(0);
        assert!(aig.is_input_lit(input));
        assert!(!aig.is_latch_lit(input));
        let latch = aig.latches()[0].lit;
        assert!(aig.is_latch_lit(latch));
        assert_eq!(aig.latch_index(latch), Some(0));
        assert_eq!(aig.latch_index(input), None);
        let gate = aig.ands()[0].lhs;
        assert!(aig.is_and_lit(gate));
        assert!(aig.and_for(gate).is_some());
        assert!(aig.and_for(input).is_none());
    }

    #[test]
    fn property_literal_prefers_bad_over_output() {
        let aig = toggle_aig();
        assert_eq!(aig.property_literal(), Some(aig.bad()[0]));
        let mut b = AigBuilder::new();
        let i = b.input();
        b.add_output(i);
        let out_only = b.build();
        assert_eq!(out_only.property_literal(), Some(out_only.outputs()[0]));
        assert_eq!(Aig::new().property_literal(), None);
    }

    #[test]
    fn validation_accepts_builder_output() {
        toggle_aig().validate().expect("builder output is valid");
    }

    #[test]
    fn validation_rejects_forward_references() {
        let mut aig = toggle_aig();
        // Point a gate operand at a variable defined later.
        let last = aig.max_var();
        aig.ands[0].rhs0 = AigLit::positive(last + 5);
        assert!(aig.validate().is_err());
    }

    #[test]
    fn validation_rejects_negated_definitions() {
        let mut aig = toggle_aig();
        aig.ands[0].lhs = !aig.ands[0].lhs;
        let err = aig.validate().unwrap_err();
        assert!(err.to_string().contains("must be defined"));
    }

    #[test]
    #[should_panic(expected = "input index out of range")]
    fn input_accessor_bounds_checked() {
        let aig = toggle_aig();
        let _ = aig.input(5);
    }

    #[test]
    fn display_summarises_sizes() {
        let s = toggle_aig().to_string();
        assert!(s.starts_with("aig M="));
        assert!(s.contains("I=1"));
        assert!(s.contains("L=1"));
    }
}
