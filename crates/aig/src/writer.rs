//! AIGER writers (ASCII `aag` and binary `aig`).

use crate::{Aig, AigLit};
use std::fmt::Write as _;

impl Aig {
    /// Serializes the graph in the ASCII AIGER (`aag`) format.
    ///
    /// The extended `B C` header fields are emitted only when the graph has
    /// bad-state literals or invariant constraints.
    ///
    /// # Example
    ///
    /// ```
    /// use plic3_aig::AigBuilder;
    /// let mut b = AigBuilder::new();
    /// let x = b.input();
    /// b.add_output(x);
    /// let text = b.build().to_ascii();
    /// assert!(text.starts_with("aag 1 1 0 1 0"));
    /// ```
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "aag {} {} {} {} {}",
            self.max_var(),
            self.num_inputs(),
            self.num_latches(),
            self.num_outputs(),
            self.num_ands()
        );
        if self.num_bad() > 0 || self.num_constraints() > 0 {
            let _ = write!(out, " {} {}", self.num_bad(), self.num_constraints());
        }
        out.push('\n');
        for i in 0..self.num_inputs() {
            let _ = writeln!(out, "{}", self.input(i));
        }
        for latch in self.latches() {
            match latch.init {
                Some(false) => {
                    let _ = writeln!(out, "{} {}", latch.lit, latch.next);
                }
                Some(true) => {
                    let _ = writeln!(out, "{} {} 1", latch.lit, latch.next);
                }
                None => {
                    let _ = writeln!(out, "{} {} {}", latch.lit, latch.next, latch.lit);
                }
            }
        }
        for &o in self.outputs() {
            let _ = writeln!(out, "{o}");
        }
        for &b in self.bad() {
            let _ = writeln!(out, "{b}");
        }
        for &c in self.constraints() {
            let _ = writeln!(out, "{c}");
        }
        for gate in self.ands() {
            let _ = writeln!(out, "{} {} {}", gate.lhs, gate.rhs0, gate.rhs1);
        }
        if !self.comments().is_empty() {
            out.push_str("c\n");
            for line in self.comments() {
                let _ = writeln!(out, "{line}");
            }
        }
        out
    }

    /// Serializes the graph in the binary AIGER (`aig`) format.
    ///
    /// AND-gate operands are delta-compressed exactly as specified by the AIGER
    /// format documentation.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut header = format!(
            "aig {} {} {} {} {}",
            self.max_var(),
            self.num_inputs(),
            self.num_latches(),
            self.num_outputs(),
            self.num_ands()
        );
        if self.num_bad() > 0 || self.num_constraints() > 0 {
            header.push_str(&format!(" {} {}", self.num_bad(), self.num_constraints()));
        }
        header.push('\n');
        out.extend_from_slice(header.as_bytes());
        for latch in self.latches() {
            let line = match latch.init {
                Some(false) => format!("{}\n", latch.next),
                Some(true) => format!("{} 1\n", latch.next),
                None => format!("{} {}\n", latch.next, latch.lit),
            };
            out.extend_from_slice(line.as_bytes());
        }
        for &o in self.outputs() {
            out.extend_from_slice(format!("{o}\n").as_bytes());
        }
        for &b in self.bad() {
            out.extend_from_slice(format!("{b}\n").as_bytes());
        }
        for &c in self.constraints() {
            out.extend_from_slice(format!("{c}\n").as_bytes());
        }
        for gate in self.ands() {
            let lhs = gate.lhs.code();
            let (rhs0, rhs1) = normalize(gate.rhs0, gate.rhs1);
            debug_assert!(lhs > rhs0 && rhs0 >= rhs1);
            write_delta(&mut out, lhs - rhs0);
            write_delta(&mut out, rhs0 - rhs1);
        }
        if !self.comments().is_empty() {
            out.extend_from_slice(b"c\n");
            for line in self.comments() {
                out.extend_from_slice(format!("{line}\n").as_bytes());
            }
        }
        out
    }
}

fn normalize(a: AigLit, b: AigLit) -> (u32, u32) {
    if a.code() >= b.code() {
        (a.code(), b.code())
    } else {
        (b.code(), a.code())
    }
}

/// Writes a non-negative delta in the AIGER variable-length encoding
/// (7 bits per byte, high bit set on continuation bytes).
fn write_delta(out: &mut Vec<u8>, mut delta: u32) {
    loop {
        let byte = (delta & 0x7f) as u8;
        delta >>= 7;
        if delta == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AigBuilder;

    fn sample() -> Aig {
        let mut b = AigBuilder::new();
        let x = b.input();
        let l = b.latch(Some(false));
        let l2 = b.latch(None);
        let g = b.and(x, l);
        b.set_latch_next(l, g);
        b.set_latch_next(l2, l);
        b.add_bad(g);
        b.add_constraint(!l2);
        b.add_comment("sample");
        b.build()
    }

    #[test]
    fn ascii_header_and_sections() {
        let aig = sample();
        let text = aig.to_ascii();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("aag 4 1 2 0 1 1 1"));
        // 1 input line, 2 latch lines, 1 bad, 1 constraint, 1 and.
        assert_eq!(text.lines().count(), 1 + 1 + 2 + 1 + 1 + 1 + 2);
        assert!(text.contains("\nc\nsample\n"));
    }

    #[test]
    fn ascii_encodes_latch_resets() {
        let aig = sample();
        let text = aig.to_ascii();
        // Latch with init=None repeats its own literal as the reset value.
        let uninit = aig.latches()[1];
        assert!(text.contains(&format!("{} {} {}", uninit.lit, uninit.next, uninit.lit)));
    }

    #[test]
    fn delta_encoding_is_7_bit_groups() {
        let mut buf = Vec::new();
        write_delta(&mut buf, 0);
        write_delta(&mut buf, 0x7f);
        write_delta(&mut buf, 0x80);
        assert_eq!(buf, vec![0x00, 0x7f, 0x80, 0x01]);
    }

    #[test]
    fn binary_starts_with_header_line() {
        let aig = sample();
        let bytes = aig.to_binary();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.starts_with("aig 4 1 2 0 1 1 1\n"));
    }
}
