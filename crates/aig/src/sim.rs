//! Cycle-accurate simulation of and-inverter graphs.

use crate::{Aig, AigLit};

/// The values observed during one simulation step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimStep {
    /// Values of the output literals during the step.
    pub outputs: Vec<bool>,
    /// Values of the bad-state literals during the step.
    pub bad: Vec<bool>,
    /// Values of the invariant-constraint literals during the step.
    pub constraints: Vec<bool>,
}

impl SimStep {
    /// Returns `true` if the circuit's *checked property* was violated this
    /// step: the first bad-state literal when the circuit has any, otherwise
    /// the first output (the HWMCC convention for AIGER 1.0 files).
    ///
    /// This deliberately mirrors [`Aig::property_literal`] — the literal the
    /// transition-system encoding and the model checkers prove or refute — so
    /// that replaying an engine trace on the simulator agrees with the engine
    /// about what counts as "bad".
    pub fn property_violated(&self) -> bool {
        match self.bad.first() {
            Some(&b) => b,
            None => self.outputs.first().copied().unwrap_or(false),
        }
    }

    /// Returns `true` if every invariant constraint held this step.
    pub fn constraints_hold(&self) -> bool {
        self.constraints.iter().all(|&c| c)
    }
}

/// A cycle-accurate simulator for an [`Aig`].
///
/// Used by the model checkers to replay counterexample traces and confirm that
/// they really drive a bad-state literal to `1`.
///
/// # Example
///
/// ```
/// use plic3_aig::{AigBuilder, Simulator};
/// let mut b = AigBuilder::new();
/// let s = b.latch(Some(false));
/// b.set_latch_next(s, !s);
/// b.add_bad(s);
/// let aig = b.build();
/// let mut sim = Simulator::new(&aig);
/// assert!(!sim.step(&[]).property_violated()); // starts at 0
/// assert!(sim.step(&[]).property_violated());  // toggles to 1
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    aig: &'a Aig,
    latch_values: Vec<bool>,
    steps: usize,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator positioned at the reset state (uninitialized latches
    /// start at `false`).
    pub fn new(aig: &'a Aig) -> Self {
        let latch_values = aig
            .latches()
            .iter()
            .map(|l| l.init.unwrap_or(false))
            .collect();
        Simulator {
            aig,
            latch_values,
            steps: 0,
        }
    }

    /// Creates a simulator starting from an explicit latch valuation.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the number of latches.
    pub fn from_state(aig: &'a Aig, state: Vec<bool>) -> Self {
        assert_eq!(state.len(), aig.num_latches(), "latch state width mismatch");
        Simulator {
            aig,
            latch_values: state,
            steps: 0,
        }
    }

    /// The current latch valuation (little-endian in latch order).
    pub fn latch_values(&self) -> &[bool] {
        &self.latch_values
    }

    /// Number of steps simulated so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Simulates one clock cycle with the given primary-input values.
    /// Missing input values default to `false`; extra values are ignored.
    pub fn step(&mut self, inputs: &[bool]) -> SimStep {
        let aig = self.aig;
        let mut values = vec![false; aig.max_var() as usize + 1];
        for i in 0..aig.num_inputs() {
            values[aig.input(i).variable() as usize] = inputs.get(i).copied().unwrap_or(false);
        }
        for (latch, &v) in aig.latches().iter().zip(&self.latch_values) {
            values[latch.lit.variable() as usize] = v;
        }
        for gate in aig.ands() {
            let a = eval(&values, gate.rhs0);
            let b = eval(&values, gate.rhs1);
            values[gate.lhs.variable() as usize] = a && b;
        }
        let step = SimStep {
            outputs: aig.outputs().iter().map(|&l| eval(&values, l)).collect(),
            bad: aig.bad().iter().map(|&l| eval(&values, l)).collect(),
            constraints: aig
                .constraints()
                .iter()
                .map(|&l| eval(&values, l))
                .collect(),
        };
        self.latch_values = aig
            .latches()
            .iter()
            .map(|latch| eval(&values, latch.next))
            .collect();
        self.steps += 1;
        step
    }

    /// Runs `inputs.len()` steps and returns `true` if the checked property
    /// (see [`SimStep::property_violated`]) was violated in any of them while
    /// all constraints held up to and including that step.
    pub fn run_reaches_bad(&mut self, inputs: &[Vec<bool>]) -> bool {
        for frame in inputs {
            let step = self.step(frame);
            if !step.constraints_hold() {
                return false;
            }
            if step.property_violated() {
                return true;
            }
        }
        false
    }
}

fn eval(values: &[bool], lit: AigLit) -> bool {
    let v = values[lit.variable() as usize];
    v != lit.is_negated()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AigBuilder;

    /// A 2-bit counter with an enable input; bad when the counter reaches 3.
    fn counter() -> Aig {
        let mut b = AigBuilder::new();
        let enable = b.input();
        let bits = b.latches(2, Some(false));
        let incremented = b.vec_increment(&bits);
        for (s, n) in bits.iter().zip(&incremented) {
            let held = b.ite(enable, *n, *s);
            b.set_latch_next(*s, held);
        }
        let bad = b.vec_equals_const(&bits, 3);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn counter_reaches_bad_only_when_enabled() {
        let aig = counter();
        let mut sim = Simulator::new(&aig);
        // Never enabled: never bad.
        assert!(!sim.run_reaches_bad(&vec![vec![false]; 10]));
        let mut sim = Simulator::new(&aig);
        // Enabled every cycle: bad at the fourth step (counter value 3).
        assert!(sim.run_reaches_bad(&vec![vec![true]; 4]));
        assert_eq!(sim.steps(), 4);
    }

    #[test]
    fn from_state_starts_where_requested() {
        let aig = counter();
        let mut sim = Simulator::from_state(&aig, vec![true, true]);
        assert!(sim.step(&[false]).property_violated());
    }

    #[test]
    #[should_panic(expected = "latch state width mismatch")]
    fn from_state_checks_width() {
        let aig = counter();
        let _ = Simulator::from_state(&aig, vec![true]);
    }

    #[test]
    fn missing_inputs_default_to_false() {
        let aig = counter();
        let mut sim = Simulator::new(&aig);
        let step = sim.step(&[]);
        assert!(!step.property_violated());
        assert_eq!(sim.latch_values(), &[false, false]);
    }

    #[test]
    fn outputs_count_as_bad_for_aiger_1_0_circuits() {
        // A toggling latch exposed through an *output* (AIGER 1.0 / HWMCC
        // style, no bad literal): property_violated must track the output so traces on
        // such circuits replay.
        let mut b = AigBuilder::new();
        let l = b.latch(Some(false));
        b.set_latch_next(l, !l);
        b.add_output(l);
        let aig = b.build();
        assert_eq!(aig.num_bad(), 0);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.step(&[]).property_violated());
        assert!(sim.step(&[]).property_violated());
    }

    #[test]
    fn constraints_are_reported() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let l = b.latch(Some(false));
        b.set_latch_next(l, x);
        b.add_constraint(!l);
        b.add_bad(l);
        let aig = b.build();
        let mut sim = Simulator::new(&aig);
        let s1 = sim.step(&[true]);
        assert!(s1.constraints_hold());
        let s2 = sim.step(&[true]);
        assert!(!s2.constraints_hold());
        assert!(s2.property_violated());
        // run_reaches_bad refuses traces that violate constraints.
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&[vec![true], vec![true]]));
    }
}
