//! Programmatic construction of and-inverter graphs.

use crate::{Aig, AigLit, AndGate, Latch};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodeKind {
    Const,
    Input,
    Latch,
    And,
}

/// Builds an [`Aig`] incrementally, with structural hashing and constant folding.
///
/// Nodes may be created in any order; [`AigBuilder::build`] renumbers them into
/// the canonical AIGER layout (inputs, then latches, then AND gates in
/// topological order). All the word-level helpers ([`AigBuilder::or`],
/// [`AigBuilder::xor`], [`AigBuilder::ite`], …) reduce to AND gates and
/// negations.
///
/// # Example
///
/// ```
/// use plic3_aig::AigBuilder;
/// let mut b = AigBuilder::new();
/// let x = b.input();
/// let y = b.input();
/// let both = b.and(x, y);
/// b.add_output(both);
/// let aig = b.build();
/// assert_eq!(aig.num_ands(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct AigBuilder {
    kinds: Vec<NodeKind>,
    // Parallel to `kinds`, meaningful for And nodes only.
    and_operands: Vec<(AigLit, AigLit)>,
    // Latch bookkeeping indexed by builder variable.
    latch_init: HashMap<u32, Option<bool>>,
    latch_next: HashMap<u32, AigLit>,
    strash: HashMap<(u32, u32), AigLit>,
    outputs: Vec<AigLit>,
    bad: Vec<AigLit>,
    constraints: Vec<AigLit>,
    comments: Vec<String>,
}

impl AigBuilder {
    /// Creates a builder containing only the constant node.
    pub fn new() -> Self {
        AigBuilder {
            kinds: vec![NodeKind::Const],
            and_operands: vec![(AigLit::FALSE, AigLit::FALSE)],
            ..Default::default()
        }
    }

    fn new_node(&mut self, kind: NodeKind) -> AigLit {
        let var = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.and_operands.push((AigLit::FALSE, AigLit::FALSE));
        AigLit::positive(var)
    }

    /// The constant-true literal.
    pub fn constant_true(&self) -> AigLit {
        AigLit::TRUE
    }

    /// The constant-false literal.
    pub fn constant_false(&self) -> AigLit {
        AigLit::FALSE
    }

    /// Creates a fresh primary input and returns its literal.
    pub fn input(&mut self) -> AigLit {
        self.new_node(NodeKind::Input)
    }

    /// Creates `n` fresh primary inputs.
    pub fn inputs(&mut self, n: usize) -> Vec<AigLit> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Creates a fresh latch with the given reset value (`None` = uninitialized)
    /// and returns its output literal. The next-state function must be set later
    /// with [`AigBuilder::set_latch_next`].
    pub fn latch(&mut self, init: Option<bool>) -> AigLit {
        let lit = self.new_node(NodeKind::Latch);
        self.latch_init.insert(lit.variable(), init);
        lit
    }

    /// Creates `n` latches with the same reset value.
    pub fn latches(&mut self, n: usize, init: Option<bool>) -> Vec<AigLit> {
        (0..n).map(|_| self.latch(init)).collect()
    }

    /// Sets the next-state function of a latch created by [`AigBuilder::latch`].
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not a (positive) latch literal of this builder.
    pub fn set_latch_next(&mut self, latch: AigLit, next: AigLit) {
        assert!(
            !latch.is_negated()
                && self.kinds.get(latch.variable() as usize) == Some(&NodeKind::Latch),
            "set_latch_next requires a positive latch literal"
        );
        self.latch_next.insert(latch.variable(), next);
    }

    /// The conjunction of two literals, with constant folding and structural
    /// hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let key = if a.code() <= b.code() {
            (a.code(), b.code())
        } else {
            (b.code(), a.code())
        };
        if let Some(&lit) = self.strash.get(&key) {
            return lit;
        }
        let lit = self.new_node(NodeKind::And);
        self.and_operands[lit.variable() as usize] =
            (AigLit::from_code(key.0), AigLit::from_code(key.1));
        self.strash.insert(key, lit);
        lit
    }

    /// The disjunction of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// The exclusive or of two literals.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let not_both = !self.and(a, b);
        let either = self.or(a, b);
        self.and(not_both, either)
    }

    /// The equivalence (XNOR) of two literals.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// The implication `a → b`.
    pub fn implies(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(a, !b)
    }

    /// The multiplexer `if c then t else e`.
    pub fn ite(&mut self, c: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let then_branch = self.and(c, t);
        let else_branch = self.and(!c, e);
        self.or(then_branch, else_branch)
    }

    /// The conjunction of all literals in `lits` (true for an empty slice).
    pub fn and_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// The disjunction of all literals in `lits` (false for an empty slice).
    pub fn or_many(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Equality of two bit-vectors given as little-endian literal slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn vec_equals(&mut self, a: &[AigLit], b: &[AigLit]) -> AigLit {
        assert_eq!(a.len(), b.len(), "bit-vector width mismatch");
        let bits: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| self.xnor(x, y)).collect();
        self.and_many(&bits)
    }

    /// Compares a little-endian bit-vector with a constant.
    pub fn vec_equals_const(&mut self, a: &[AigLit], value: u64) -> AigLit {
        let bits: Vec<AigLit> = a
            .iter()
            .enumerate()
            .map(|(i, &x)| x.negate_if(value >> i & 1 == 0))
            .collect();
        self.and_many(&bits)
    }

    /// A ripple-carry incrementer over a little-endian bit-vector; returns the
    /// incremented bits (the final carry is dropped, i.e. the counter wraps).
    pub fn vec_increment(&mut self, a: &[AigLit]) -> Vec<AigLit> {
        let mut carry = AigLit::TRUE;
        let mut out = Vec::with_capacity(a.len());
        for &bit in a {
            out.push(self.xor(bit, carry));
            carry = self.and(bit, carry);
        }
        out
    }

    /// Adds an output literal.
    pub fn add_output(&mut self, lit: AigLit) {
        self.outputs.push(lit);
    }

    /// Adds a bad-state literal (the circuit is unsafe iff it can be made true).
    pub fn add_bad(&mut self, lit: AigLit) {
        self.bad.push(lit);
    }

    /// Adds an invariant constraint literal (only executions keeping it true are
    /// considered).
    pub fn add_constraint(&mut self, lit: AigLit) {
        self.constraints.push(lit);
    }

    /// Adds a comment line to be carried into the AIGER output.
    pub fn add_comment(&mut self, comment: impl Into<String>) {
        self.comments.push(comment.into());
    }

    /// Estimated heap footprint of the builder in bytes, for memory-budget
    /// accounting by callers that grow circuits under a `ResourceBudget`
    /// (the builder itself stays dependency-free). Covers the node tables
    /// and the structural-hashing map; an estimate is enough.
    pub fn estimated_bytes(&self) -> u64 {
        let per_node = std::mem::size_of::<NodeKind>() + std::mem::size_of::<(AigLit, AigLit)>();
        // HashMap entries cost roughly key + value + control byte, times the
        // load-factor slack; 2x is a serviceable upper bound.
        let strash = self.strash.len() * 2 * (std::mem::size_of::<(u32, u32)>() + 8);
        let latches = (self.latch_init.len() + self.latch_next.len()) * 2 * 16;
        (self.kinds.len() * per_node
            + strash
            + latches
            + (self.outputs.len() + self.bad.len() + self.constraints.len())
                * std::mem::size_of::<AigLit>()) as u64
    }

    /// Number of nodes created so far (excluding the constant).
    pub fn num_nodes(&self) -> usize {
        self.kinds.len() - 1
    }

    /// Finalizes the graph, renumbering nodes into the canonical AIGER layout.
    ///
    /// # Panics
    ///
    /// Panics if a latch was created but never given a next-state function.
    pub fn build(&self) -> Aig {
        // Assign AIGER variable numbers: inputs, then latches, then ands, each
        // group in creation order.
        let mut remap: Vec<u32> = vec![0; self.kinds.len()];
        let mut next = 1u32;
        for kind in [NodeKind::Input, NodeKind::Latch, NodeKind::And] {
            for (var, k) in self.kinds.iter().enumerate() {
                if *k == kind {
                    remap[var] = next;
                    next += 1;
                }
            }
        }
        let map = |lit: AigLit| -> AigLit {
            AigLit::positive(remap[lit.variable() as usize]).negate_if(lit.is_negated())
        };

        let num_inputs = self.kinds.iter().filter(|k| **k == NodeKind::Input).count();
        let mut latches = Vec::new();
        let mut ands = Vec::new();
        for (var, kind) in self.kinds.iter().enumerate() {
            let var = var as u32;
            match kind {
                NodeKind::Latch => {
                    let next_lit = *self
                        .latch_next
                        .get(&var)
                        .unwrap_or_else(|| panic!("latch {var} has no next-state function"));
                    latches.push(Latch {
                        lit: AigLit::positive(remap[var as usize]),
                        next: map(next_lit),
                        init: self.latch_init[&var],
                    });
                }
                NodeKind::And => {
                    let (a, b) = self.and_operands[var as usize];
                    ands.push(AndGate {
                        lhs: AigLit::positive(remap[var as usize]),
                        rhs0: map(a),
                        rhs1: map(b),
                    });
                }
                NodeKind::Const | NodeKind::Input => {}
            }
        }
        latches.sort_by_key(|l| l.lit.variable());
        ands.sort_by_key(|g| g.lhs.variable());
        // Normalize operand order so rhs0 >= rhs1 (the AIGER binary convention).
        for gate in &mut ands {
            if gate.rhs0.code() < gate.rhs1.code() {
                std::mem::swap(&mut gate.rhs0, &mut gate.rhs1);
            }
        }
        let aig = Aig {
            num_inputs,
            latches,
            ands,
            outputs: self.outputs.iter().map(|&l| map(l)).collect(),
            bad: self.bad.iter().map(|&l| map(l)).collect(),
            constraints: self.constraints.iter().map(|&l| map(l)).collect(),
            comments: self.comments.clone(),
        };
        debug_assert!(aig.validate().is_ok(), "builder produced an invalid AIG");
        aig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn constant_folding() {
        let mut b = AigBuilder::new();
        let x = b.input();
        assert_eq!(b.and(x, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(b.and(AigLit::TRUE, x), x);
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.and(x, !x), AigLit::FALSE);
        assert_eq!(b.num_nodes(), 1, "no gates should have been created");
    }

    #[test]
    fn structural_hashing_reuses_gates() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let y = b.input();
        let g1 = b.and(x, y);
        let g2 = b.and(y, x);
        assert_eq!(g1, g2);
        assert_eq!(b.build().num_ands(), 1);
    }

    #[test]
    fn or_xor_ite_truth_tables() {
        // Check the derived operators by exhaustive simulation over two inputs.
        for bits in 0..4u32 {
            let a_val = bits & 1 == 1;
            let b_val = bits & 2 == 2;
            let mut b = AigBuilder::new();
            let x = b.input();
            let y = b.input();
            let or = b.or(x, y);
            let xor = b.xor(x, y);
            let xnor = b.xnor(x, y);
            let imp = b.implies(x, y);
            let ite = b.ite(x, y, !y);
            for lit in [or, xor, xnor, imp, ite] {
                b.add_output(lit);
            }
            let aig = b.build();
            let mut sim = Simulator::new(&aig);
            let step = sim.step(&[a_val, b_val]);
            assert_eq!(step.outputs[0], a_val || b_val);
            assert_eq!(step.outputs[1], a_val ^ b_val);
            assert_eq!(step.outputs[2], a_val == b_val);
            assert_eq!(step.outputs[3], !a_val || b_val);
            assert_eq!(step.outputs[4], if a_val { b_val } else { !b_val });
        }
    }

    #[test]
    fn vector_helpers() {
        let mut b = AigBuilder::new();
        let bits = b.inputs(3);
        let eq5 = b.vec_equals_const(&bits, 5);
        let other = b.inputs(3);
        let eq = b.vec_equals(&bits, &other);
        b.add_output(eq5);
        b.add_output(eq);
        let aig = b.build();
        let mut sim = Simulator::new(&aig);
        // bits = 5 (101), other = 5 → both outputs true.
        let step = sim.step(&[true, false, true, true, false, true]);
        assert!(step.outputs[0]);
        assert!(step.outputs[1]);
        let step = sim.step(&[true, false, true, false, false, true]);
        assert!(step.outputs[0]);
        assert!(!step.outputs[1]);
    }

    #[test]
    fn increment_wraps_around() {
        let mut b = AigBuilder::new();
        let state = b.latches(2, Some(false));
        let next = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&next) {
            b.set_latch_next(*s, *n);
        }
        let at3 = b.vec_equals_const(&state, 3);
        b.add_output(at3);
        let aig = b.build();
        let mut sim = Simulator::new(&aig);
        let values: Vec<bool> = (0..5).map(|_| sim.step(&[]).outputs[0]).collect();
        // Counter visits 0,1,2,3,0 → output true exactly at the fourth step.
        assert_eq!(values, vec![false, false, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "no next-state function")]
    fn build_panics_on_dangling_latch() {
        let mut b = AigBuilder::new();
        let _ = b.latch(Some(false));
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "positive latch literal")]
    fn set_latch_next_rejects_non_latch() {
        let mut b = AigBuilder::new();
        let x = b.input();
        b.set_latch_next(x, x);
    }

    #[test]
    fn renumbering_handles_interleaved_creation() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let l1 = b.latch(Some(false));
        let g = b.and(x, l1);
        let y = b.input(); // input created after a gate
        let l2 = b.latch(Some(true));
        let g2 = b.and(g, y);
        b.set_latch_next(l1, g2);
        b.set_latch_next(l2, l1);
        b.add_bad(g2);
        let aig = b.build();
        aig.validate().expect("renumbered AIG is valid");
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_latches(), 2);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn comments_are_carried_through() {
        let mut b = AigBuilder::new();
        let x = b.input();
        b.add_output(x);
        b.add_comment("generated by unit test");
        let aig = b.build();
        assert_eq!(aig.comments(), &["generated by unit test".to_string()]);
    }
}
