//! AIGER literals.

use std::fmt;
use std::ops::Not;

/// A literal of an and-inverter graph, in the AIGER encoding `2 * variable + sign`.
///
/// Variable `0` is the constant, so [`AigLit::FALSE`] has code `0` and
/// [`AigLit::TRUE`] has code `1`.
///
/// # Example
///
/// ```
/// use plic3_aig::AigLit;
/// let l = AigLit::positive(3);
/// assert_eq!(l.code(), 6);
/// assert_eq!((!l).code(), 7);
/// assert_eq!(l.variable(), 3);
/// assert!(!l.is_negated());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false literal (AIGER code 0).
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal (AIGER code 1).
    pub const TRUE: AigLit = AigLit(1);

    /// Creates a literal from its raw AIGER code.
    pub const fn from_code(code: u32) -> Self {
        AigLit(code)
    }

    /// The positive literal of `variable`.
    pub const fn positive(variable: u32) -> Self {
        AigLit(variable << 1)
    }

    /// The negative literal of `variable`.
    pub const fn negative(variable: u32) -> Self {
        AigLit((variable << 1) | 1)
    }

    /// The raw AIGER code (`2 * variable + sign`).
    pub const fn code(self) -> u32 {
        self.0
    }

    /// The AIGER variable index of this literal.
    pub const fn variable(self) -> u32 {
        self.0 >> 1
    }

    /// Returns `true` if the literal is negated.
    pub const fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is one of the two constant literals.
    pub const fn is_constant(self) -> bool {
        self.variable() == 0
    }

    /// For constant literals, the Boolean value; `None` otherwise.
    pub const fn constant_value(self) -> Option<bool> {
        match self.0 {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// The positive (non-negated) literal of the same variable.
    pub const fn without_negation(self) -> Self {
        AigLit(self.0 & !1)
    }

    /// Applies a negation conditionally: returns `!self` if `negate` is true.
    pub const fn negate_if(self, negate: bool) -> Self {
        AigLit(self.0 ^ negate as u32)
    }
}

impl Not for AigLit {
    type Output = AigLit;

    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Display for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(AigLit::FALSE.code(), 0);
        assert_eq!(AigLit::TRUE.code(), 1);
        assert_eq!(!AigLit::FALSE, AigLit::TRUE);
        assert!(AigLit::FALSE.is_constant());
        assert_eq!(AigLit::FALSE.constant_value(), Some(false));
        assert_eq!(AigLit::TRUE.constant_value(), Some(true));
        assert_eq!(AigLit::positive(2).constant_value(), None);
    }

    #[test]
    fn variable_and_sign() {
        let l = AigLit::negative(5);
        assert_eq!(l.variable(), 5);
        assert!(l.is_negated());
        assert_eq!(l.without_negation(), AigLit::positive(5));
        assert_eq!(!l, AigLit::positive(5));
        assert_eq!(AigLit::from_code(11), l);
    }

    #[test]
    fn negate_if_is_conditional() {
        let l = AigLit::positive(4);
        assert_eq!(l.negate_if(false), l);
        assert_eq!(l.negate_if(true), !l);
    }

    #[test]
    fn display_is_the_raw_code() {
        assert_eq!(AigLit::negative(3).to_string(), "7");
    }
}
