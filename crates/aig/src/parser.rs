//! AIGER readers (ASCII `aag` and binary `aig`).

use crate::{Aig, AigLit, AndGate, Latch};
use std::error::Error;
use std::fmt;

/// Error returned by [`parse_aiger`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAigerError {
    message: String,
}

impl ParseAigerError {
    fn new(message: impl Into<String>) -> Self {
        ParseAigerError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AIGER input: {}", self.message)
    }
}

impl Error for ParseAigerError {}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn eof(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn read_line(&mut self) -> Option<&'a str> {
        if self.eof() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.data.len() && self.data[self.pos] != b'\n' {
            self.pos += 1;
        }
        let end = self.pos;
        if self.pos < self.data.len() {
            self.pos += 1; // consume the newline
        }
        std::str::from_utf8(&self.data[start..end])
            .ok()
            .map(str::trim_end)
    }

    fn read_byte(&mut self) -> Option<u8> {
        if self.eof() {
            None
        } else {
            let b = self.data[self.pos];
            self.pos += 1;
            Some(b)
        }
    }
}

fn parse_counts(header: &str) -> Result<(bool, Vec<usize>), ParseAigerError> {
    let mut parts = header.split_whitespace();
    let binary = match parts.next() {
        Some("aag") => false,
        Some("aig") => true,
        other => {
            return Err(ParseAigerError::new(format!(
                "expected 'aag' or 'aig' magic, found {other:?}"
            )))
        }
    };
    let counts: Result<Vec<usize>, _> = parts.map(str::parse).collect();
    let counts = counts.map_err(|_| ParseAigerError::new("non-numeric header field"))?;
    if counts.len() < 5 {
        return Err(ParseAigerError::new(
            "header must declare at least M I L O A",
        ));
    }
    Ok((binary, counts))
}

fn parse_lit(token: &str, what: &str) -> Result<AigLit, ParseAigerError> {
    token
        .parse::<u32>()
        .map(AigLit::from_code)
        .map_err(|_| ParseAigerError::new(format!("bad {what} literal '{token}'")))
}

fn parse_init(token: Option<&str>, latch_lit: AigLit) -> Result<Option<bool>, ParseAigerError> {
    match token {
        None => Ok(Some(false)),
        Some("0") => Ok(Some(false)),
        Some("1") => Ok(Some(true)),
        Some(other) => {
            let lit = parse_lit(other, "latch reset")?;
            if lit == latch_lit {
                Ok(None)
            } else {
                Err(ParseAigerError::new(format!(
                    "latch reset must be 0, 1 or the latch literal, found {other}"
                )))
            }
        }
    }
}

/// Parses an AIGER document, automatically detecting the ASCII (`aag`) or
/// binary (`aig`) variant, including the AIGER 1.9 `B` (bad) and `C`
/// (invariant constraint) sections, the symbol table, and trailing comments.
///
/// # Errors
///
/// Returns [`ParseAigerError`] when the header, a literal, or the binary
/// delta stream is malformed, or when the resulting graph fails
/// [`Aig::validate`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), plic3_aig::ParseAigerError> {
/// let text = "aag 1 1 0 1 0\n2\n2\n";
/// let aig = plic3_aig::parse_aiger(text.as_bytes())?;
/// assert_eq!(aig.num_inputs(), 1);
/// assert_eq!(aig.num_outputs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_aiger(input: &[u8]) -> Result<Aig, ParseAigerError> {
    let mut cursor = Cursor::new(input);
    let header = cursor
        .read_line()
        .ok_or_else(|| ParseAigerError::new("empty input"))?;
    let (binary, counts) = parse_counts(header)?;
    let (_m, i, l, o, a) = (counts[0], counts[1], counts[2], counts[3], counts[4]);
    let b = counts.get(5).copied().unwrap_or(0);
    let c = counts.get(6).copied().unwrap_or(0);

    let mut aig = Aig {
        num_inputs: i,
        ..Aig::new()
    };

    fn expect_line<'a>(cursor: &mut Cursor<'a>, what: &str) -> Result<&'a str, ParseAigerError> {
        cursor
            .read_line()
            .ok_or_else(|| ParseAigerError::new(format!("unexpected end of file in {what}")))
    }

    // Inputs (explicit only in the ASCII format).
    if !binary {
        for k in 0..i {
            let line = expect_line(&mut cursor, "inputs")?;
            let lit = parse_lit(line.split_whitespace().next().unwrap_or(""), "input")?;
            if lit != AigLit::positive(k as u32 + 1) {
                return Err(ParseAigerError::new(format!(
                    "input {k} must be literal {}, found {lit}",
                    AigLit::positive(k as u32 + 1)
                )));
            }
        }
    }

    // Latches.
    for k in 0..l {
        let line = expect_line(&mut cursor, "latches")?;
        let mut tokens = line.split_whitespace();
        let latch_lit = AigLit::positive((i + k + 1) as u32);
        let (lit, next, init_tok) = if binary {
            let next = parse_lit(tokens.next().unwrap_or(""), "latch next")?;
            (latch_lit, next, tokens.next())
        } else {
            let lit = parse_lit(tokens.next().unwrap_or(""), "latch")?;
            let next = parse_lit(tokens.next().unwrap_or(""), "latch next")?;
            (lit, next, tokens.next())
        };
        if lit != latch_lit {
            return Err(ParseAigerError::new(format!(
                "latch {k} must be literal {latch_lit}, found {lit}"
            )));
        }
        let init = parse_init(init_tok, latch_lit)?;
        aig.latches.push(Latch { lit, next, init });
    }

    // Outputs, bad, constraints.
    for _ in 0..o {
        let line = expect_line(&mut cursor, "outputs")?;
        aig.outputs.push(parse_lit(line, "output")?);
    }
    for _ in 0..b {
        let line = expect_line(&mut cursor, "bad states")?;
        aig.bad.push(parse_lit(line, "bad")?);
    }
    for _ in 0..c {
        let line = expect_line(&mut cursor, "constraints")?;
        aig.constraints.push(parse_lit(line, "constraint")?);
    }

    // AND gates.
    if binary {
        for k in 0..a {
            let lhs = AigLit::positive((i + l + k + 1) as u32);
            let delta0 = read_delta(&mut cursor)?;
            let delta1 = read_delta(&mut cursor)?;
            let rhs0 = lhs
                .code()
                .checked_sub(delta0)
                .ok_or_else(|| ParseAigerError::new("delta0 larger than lhs"))?;
            let rhs1 = rhs0
                .checked_sub(delta1)
                .ok_or_else(|| ParseAigerError::new("delta1 larger than rhs0"))?;
            aig.ands.push(AndGate {
                lhs,
                rhs0: AigLit::from_code(rhs0),
                rhs1: AigLit::from_code(rhs1),
            });
        }
    } else {
        for k in 0..a {
            let line = expect_line(&mut cursor, "and gates")?;
            let mut tokens = line.split_whitespace();
            let lhs = parse_lit(tokens.next().unwrap_or(""), "and lhs")?;
            let rhs0 = parse_lit(tokens.next().unwrap_or(""), "and rhs0")?;
            let rhs1 = parse_lit(tokens.next().unwrap_or(""), "and rhs1")?;
            let expected = AigLit::positive((i + l + k + 1) as u32);
            if lhs != expected {
                return Err(ParseAigerError::new(format!(
                    "and gate {k} must define literal {expected}, found {lhs}"
                )));
            }
            aig.ands.push(AndGate { lhs, rhs0, rhs1 });
        }
    }

    // Symbol table and comments.
    let mut in_comments = false;
    while let Some(line) = cursor.read_line() {
        if in_comments {
            aig.comments.push(line.to_string());
        } else if line == "c" {
            in_comments = true;
        } else if line.is_empty()
            || line.starts_with('i')
            || line.starts_with('l')
            || line.starts_with('o')
            || line.starts_with('b')
            || line.starts_with('j')
            || line.starts_with('f')
        {
            // Symbol table entries are accepted and ignored.
            continue;
        } else {
            return Err(ParseAigerError::new(format!(
                "unexpected trailing line '{line}'"
            )));
        }
    }

    aig.validate()
        .map_err(|e| ParseAigerError::new(e.to_string()))?;
    Ok(aig)
}

fn read_delta(cursor: &mut Cursor<'_>) -> Result<u32, ParseAigerError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let byte = cursor
            .read_byte()
            .ok_or_else(|| ParseAigerError::new("unexpected end of binary delta stream"))?;
        value |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(ParseAigerError::new("binary delta overflows 32 bits"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AigBuilder, Simulator};

    fn sample() -> Aig {
        let mut b = AigBuilder::new();
        let x = b.input();
        let y = b.input();
        let l = b.latch(Some(false));
        let l2 = b.latch(Some(true));
        let g = b.and(x, l);
        let h = b.or(g, y);
        b.set_latch_next(l, h);
        b.set_latch_next(l2, l);
        b.add_bad(g);
        b.add_constraint(!l2);
        b.add_output(h);
        b.add_comment("roundtrip sample");
        b.build()
    }

    #[test]
    fn ascii_roundtrip_preserves_structure() {
        let aig = sample();
        let parsed = parse_aiger(aig.to_ascii().as_bytes()).expect("parse own output");
        assert_eq!(parsed, aig);
    }

    #[test]
    fn binary_roundtrip_preserves_structure() {
        let aig = sample();
        let parsed = parse_aiger(&aig.to_binary()).expect("parse own binary output");
        assert_eq!(parsed, aig);
    }

    #[test]
    fn roundtrip_preserves_simulation_behaviour() {
        let aig = sample();
        let parsed = parse_aiger(aig.to_ascii().as_bytes()).expect("parse");
        let inputs: Vec<Vec<bool>> = (0..8).map(|i| vec![i % 2 == 0, i % 3 == 0]).collect();
        let mut sim_a = Simulator::new(&aig);
        let mut sim_b = Simulator::new(&parsed);
        for frame in &inputs {
            assert_eq!(sim_a.step(frame), sim_b.step(frame));
        }
    }

    #[test]
    fn parses_reference_ascii_example() {
        // The classic toggle flip-flop example from the AIGER documentation.
        let text = "aag 1 0 1 2 0\n2 3\n2\n3\n";
        let aig = parse_aiger(text.as_bytes()).expect("valid");
        assert_eq!(aig.num_latches(), 1);
        assert_eq!(aig.num_outputs(), 2);
        assert_eq!(aig.latches()[0].next, AigLit::from_code(3));
    }

    #[test]
    fn parses_symbol_table_and_comments() {
        let text = "aag 1 1 0 1 0\n2\n2\ni0 request\no0 grant\nc\nhello\nworld\n";
        let aig = parse_aiger(text.as_bytes()).expect("valid");
        assert_eq!(aig.comments(), &["hello".to_string(), "world".to_string()]);
    }

    #[test]
    fn rejects_bad_magic_and_headers() {
        assert!(parse_aiger(b"xyz 1 1 0 1 0\n").is_err());
        assert!(parse_aiger(b"aag 1 1\n").is_err());
        assert!(parse_aiger(b"aag a b c d e\n").is_err());
        assert!(parse_aiger(b"").is_err());
    }

    #[test]
    fn rejects_truncated_sections() {
        let err = parse_aiger(b"aag 2 2 0 1 0\n2\n").unwrap_err();
        assert!(err.to_string().contains("unexpected end of file"));
    }

    #[test]
    fn rejects_misnumbered_inputs_and_gates() {
        assert!(parse_aiger(b"aag 1 1 0 0 0\n4\n").is_err());
        assert!(parse_aiger(b"aag 3 2 0 0 1\n2\n4\n8 2 4\n").is_err());
    }

    #[test]
    fn uninitialized_latch_roundtrip() {
        let mut b = AigBuilder::new();
        let l = b.latch(None);
        b.set_latch_next(l, l);
        b.add_output(l);
        let aig = b.build();
        let parsed = parse_aiger(aig.to_ascii().as_bytes()).expect("valid");
        assert_eq!(parsed.latches()[0].init, None);
        let parsed_bin = parse_aiger(&aig.to_binary()).expect("valid");
        assert_eq!(parsed_bin.latches()[0].init, None);
    }

    #[test]
    fn rejects_invalid_latch_reset() {
        let text = "aag 2 1 1 0 0\n2\n4 2 6\n";
        assert!(parse_aiger(text.as_bytes()).is_err());
    }
}
