//! Differential property test: the Tseitin-encoded transition relation must
//! agree, transition by transition, with the cycle-accurate AIG simulator on
//! randomly generated circuits.
//!
//! The circuits come from a deterministic seeded generator (the workspace is
//! dependency-free, so no proptest); failures report the seed that produced
//! the circuit.

use plic3_aig::{AigBuilder, AigLit, Simulator};
use plic3_logic::{Lit, SplitMix64 as Rng};
use plic3_sat::{SatResult, Solver};
use plic3_ts::TransitionSystem;

const CASES: u64 = 48;

/// A reproducible random circuit description: gate operands are indices into
/// the pool of already-available nodes.
#[derive(Clone, Debug)]
struct CircuitSpec {
    inputs: usize,
    /// (operand index, negate, operand index, negate) per gate.
    gates: Vec<(usize, bool, usize, bool)>,
    /// Next-state selector per latch: index into the pool, plus negation.
    nexts: Vec<(usize, bool)>,
    /// Bad literal selector.
    bad: (usize, bool),
    init: Vec<bool>,
}

fn arb_spec(rng: &mut Rng) -> CircuitSpec {
    let latches = rng.range(2, 5) as usize;
    let inputs = rng.range(1, 3) as usize;
    let num_gates = rng.below(12) as usize;
    let pool0 = 1 + latches + inputs; // constant + latches + inputs
    let operand = |rng: &mut Rng| (rng.below((pool0 + num_gates) as u64) as usize, rng.bool());
    CircuitSpec {
        inputs,
        gates: (0..num_gates)
            .map(|_| {
                let (x, nx) = operand(rng);
                let (y, ny) = operand(rng);
                (x, nx, y, ny)
            })
            .collect(),
        nexts: (0..latches).map(|_| operand(rng)).collect(),
        bad: operand(rng),
        init: (0..latches).map(|_| rng.bool()).collect(),
    }
}

/// Materializes a spec into an AIG. Operand indices are clamped to the part of
/// the pool that already exists, which keeps the construction well-founded.
fn build(spec: &CircuitSpec) -> plic3_aig::Aig {
    let mut b = AigBuilder::new();
    let mut pool: Vec<AigLit> = vec![b.constant_true()];
    let latches: Vec<AigLit> = spec.init.iter().map(|&v| b.latch(Some(v))).collect();
    pool.extend(latches.iter().copied());
    pool.extend(b.inputs(spec.inputs));
    for &(x, nx, y, ny) in &spec.gates {
        let a = pool[x % pool.len()].negate_if(nx);
        let c = pool[y % pool.len()].negate_if(ny);
        let gate = b.and(a, c);
        pool.push(gate);
    }
    for (latch, &(idx, neg)) in latches.iter().zip(&spec.nexts) {
        b.set_latch_next(*latch, pool[idx % pool.len()].negate_if(neg));
    }
    b.add_bad(pool[spec.bad.0 % pool.len()].negate_if(spec.bad.1));
    b.build()
}

/// For every random circuit, random starting state, and random input
/// sequence, the successor computed by the simulator is the unique
/// successor admitted by the CNF transition relation.
#[test]
fn transition_relation_matches_simulator() {
    let mut rng = Rng::new(0x75_0001);
    for seed in 0..CASES {
        let spec = arb_spec(&mut rng);
        let start: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
        let num_steps = rng.range(1, 4) as usize;
        let steps: Vec<Vec<bool>> = (0..num_steps)
            .map(|_| (0..4).map(|_| rng.bool()).collect())
            .collect();

        let aig = build(&spec);
        let ts = TransitionSystem::from_aig(&aig);
        let mut solver = Solver::new();
        solver.ensure_vars(ts.num_vars());
        for clause in ts.trans() {
            solver.add_clause_ref(clause);
        }
        // Note: cone-of-influence reduction may drop latches/inputs; drive the
        // simulator with the full-width vectors and the solver with the
        // projections onto the kept variables.
        let full_state: Vec<bool> = (0..aig.num_latches())
            .map(|i| start.get(i).copied().unwrap_or(false))
            .collect();
        let mut sim = Simulator::from_state(&aig, full_state.clone());
        let mut current: Vec<bool> = (0..ts.num_latches())
            .map(|i| full_state[ts.aig_latch_index(i)])
            .collect();
        for frame in &steps {
            let full_inputs: Vec<bool> = (0..aig.num_inputs())
                .map(|i| frame.get(i).copied().unwrap_or(false))
                .collect();
            sim.step(&full_inputs);
            let next_full = sim.latch_values().to_vec();
            let next: Vec<bool> = (0..ts.num_latches())
                .map(|i| next_full[ts.aig_latch_index(i)])
                .collect();

            // Assumptions: current state, inputs, and the simulator's successor.
            let mut assumptions: Vec<Lit> = Vec::new();
            for (i, &v) in current.iter().enumerate() {
                assumptions.push(Lit::new(ts.latch_var(i), v));
            }
            for i in 0..ts.num_inputs() {
                assumptions.push(Lit::new(
                    ts.input_var(i),
                    full_inputs[ts.aig_input_index(i)],
                ));
            }
            let state_and_inputs = assumptions.clone();
            for (i, &v) in next.iter().enumerate() {
                assumptions.push(Lit::new(ts.primed_var(i), v));
            }
            assert_eq!(
                solver.solve(&assumptions),
                SatResult::Sat,
                "seed {seed}: simulator successor rejected by the transition relation"
            );
            // And it is the *only* successor: flipping any single primed bit is
            // inconsistent with the (deterministic) transition relation.
            for (i, &v) in next.iter().enumerate() {
                let mut flipped = state_and_inputs.clone();
                flipped.push(Lit::new(ts.primed_var(i), !v));
                assert_eq!(
                    solver.solve(&flipped),
                    SatResult::Unsat,
                    "seed {seed}: transition relation admits a second successor"
                );
            }
            current = next;
        }
    }
}

/// The bad literal of the encoding agrees with the simulator's bad output
/// in the very first step.
#[test]
fn bad_literal_matches_simulator() {
    let mut rng = Rng::new(0x75_0002);
    for seed in 0..CASES {
        let spec = arb_spec(&mut rng);
        let start: Vec<bool> = (0..8).map(|_| rng.bool()).collect();
        let inputs: Vec<bool> = (0..4).map(|_| rng.bool()).collect();

        let aig = build(&spec);
        let ts = TransitionSystem::from_aig(&aig);
        let full_state: Vec<bool> = (0..aig.num_latches())
            .map(|i| start.get(i).copied().unwrap_or(false))
            .collect();
        let full_inputs: Vec<bool> = (0..aig.num_inputs())
            .map(|i| inputs.get(i).copied().unwrap_or(false))
            .collect();
        let mut sim = Simulator::from_state(&aig, full_state.clone());
        let observed_bad = sim.step(&full_inputs).property_violated();

        let mut solver = Solver::new();
        solver.ensure_vars(ts.num_vars());
        for clause in ts.trans() {
            solver.add_clause_ref(clause);
        }
        let mut assumptions: Vec<Lit> = Vec::new();
        for i in 0..ts.num_latches() {
            assumptions.push(Lit::new(ts.latch_var(i), full_state[ts.aig_latch_index(i)]));
        }
        for i in 0..ts.num_inputs() {
            assumptions.push(Lit::new(
                ts.input_var(i),
                full_inputs[ts.aig_input_index(i)],
            ));
        }
        assumptions.push(if observed_bad {
            ts.bad_lit()
        } else {
            !ts.bad_lit()
        });
        assert_eq!(solver.solve(&assumptions), SatResult::Sat, "seed {seed}");
        // The opposite polarity must be impossible.
        *assumptions.last_mut().expect("non-empty") = if observed_bad {
            !ts.bad_lit()
        } else {
            ts.bad_lit()
        };
        assert_eq!(solver.solve(&assumptions), SatResult::Unsat, "seed {seed}");
    }
}
