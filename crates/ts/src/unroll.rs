//! Time-frame expansion of the transition relation.

use crate::TransitionSystem;
use plic3_logic::{Clause, Cnf, Cube, Lit, Var};

/// Unrolls a [`TransitionSystem`] over time frames for bounded model checking
/// and k-induction.
///
/// Frame `k` gets its own copy of every transition-system variable; the primed
/// variables of frame `k` are identified with the state variables of frame
/// `k + 1`, so consecutive copies of the transition relation chain together
/// without extra equality clauses.
///
/// # Example
///
/// ```
/// use plic3_aig::AigBuilder;
/// use plic3_ts::{TransitionSystem, Unroller};
///
/// let mut b = AigBuilder::new();
/// let s = b.latch(Some(false));
/// b.set_latch_next(s, !s);
/// b.add_bad(s);
/// let ts = TransitionSystem::from_aig(&b.build());
/// let unroller = Unroller::new(&ts);
/// // The initial-state constraint and two copies of the transition relation:
/// let mut clauses = unroller.init_clauses();
/// clauses.extend(unroller.trans_clauses(0));
/// clauses.extend(unroller.trans_clauses(1));
/// assert!(clauses.len() > 2 * ts.trans().len());
/// ```
#[derive(Clone, Debug)]
pub struct Unroller<'a> {
    ts: &'a TransitionSystem,
    stride: usize,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller for `ts`.
    pub fn new(ts: &'a TransitionSystem) -> Self {
        Unroller {
            ts,
            stride: ts.num_vars(),
        }
    }

    /// The transition system being unrolled.
    pub fn ts(&self) -> &TransitionSystem {
        self.ts
    }

    /// Number of solver variables needed to hold frames `0..=frame`.
    pub fn num_vars_through(&self, frame: usize) -> usize {
        (frame + 1) * self.stride
    }

    /// Maps a transition-system variable into time frame `frame`.
    ///
    /// State variables of frame `k + 1` coincide with the primed variables of
    /// frame `k`.
    pub fn var_at(&self, frame: usize, var: Var) -> Var {
        debug_assert!(var.index() < self.stride);
        if frame > 0 && self.ts.is_latch_var(var) {
            // Identify with the primed copy of the previous frame.
            let i = var.index();
            self.var_at(frame - 1, self.ts.primed_var(i))
        } else {
            Var::new((frame * self.stride + var.index()) as u32)
        }
    }

    /// Maps a literal into time frame `frame`.
    pub fn lit_at(&self, frame: usize, lit: Lit) -> Lit {
        Lit::new(self.var_at(frame, lit.var()), lit.asserted_value())
    }

    /// Maps a cube into time frame `frame`.
    pub fn cube_at(&self, frame: usize, cube: &Cube) -> Cube {
        cube.iter().map(|l| self.lit_at(frame, l)).collect()
    }

    /// The initial-state constraint, expressed in frame 0.
    pub fn init_clauses(&self) -> Vec<Clause> {
        self.map_cnf(0, self.ts.init_cnf())
    }

    /// A copy of the transition relation for the step from frame `frame` to
    /// frame `frame + 1`.
    pub fn trans_clauses(&self, frame: usize) -> Vec<Clause> {
        self.map_cnf(frame, self.ts.trans())
    }

    /// The bad literal evaluated in frame `frame` (with the constraints that
    /// must hold there), as assumption literals.
    pub fn bad_assumptions_at(&self, frame: usize) -> Vec<Lit> {
        self.ts
            .bad_assumptions()
            .into_iter()
            .map(|l| self.lit_at(frame, l))
            .collect()
    }

    /// Extracts the state cube of frame `frame` from a SAT model over the
    /// unrolled variables.
    pub fn state_cube_at(&self, frame: usize, model: impl Fn(Var) -> Option<bool>) -> Cube {
        Cube::from_lits(self.ts.latch_vars().filter_map(|v| {
            let fv = self.var_at(frame, v);
            model(fv).map(|val| Lit::new(v, val))
        }))
    }

    /// Extracts the input cube of frame `frame` from a SAT model over the
    /// unrolled variables.
    pub fn input_cube_at(&self, frame: usize, model: impl Fn(Var) -> Option<bool>) -> Cube {
        Cube::from_lits(self.ts.input_vars().filter_map(|v| {
            let fv = self.var_at(frame, v);
            model(fv).map(|val| Lit::new(v, val))
        }))
    }

    fn map_cnf(&self, frame: usize, cnf: &Cnf) -> Vec<Clause> {
        cnf.iter()
            .map(|clause| clause.iter().map(|l| self.lit_at(frame, l)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;
    use plic3_sat::{SatResult, Solver};

    fn counter_ts(bits: usize, bad_at: u64) -> TransitionSystem {
        let mut b = AigBuilder::new();
        let state = b.latches(bits, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, bad_at);
        b.add_bad(bad);
        TransitionSystem::from_aig(&b.build())
    }

    fn bmc_reaches_bad(ts: &TransitionSystem, depth: usize) -> Option<usize> {
        let unroller = Unroller::new(ts);
        let mut solver = Solver::new();
        solver.ensure_vars(unroller.num_vars_through(depth + 1));
        for clause in unroller.init_clauses() {
            solver.add_clause_ref(&clause);
        }
        for k in 0..=depth {
            if k > 0 {
                for clause in unroller.trans_clauses(k - 1) {
                    solver.add_clause_ref(&clause);
                }
            }
            // Frame k's own copy of the combinational logic is needed to
            // evaluate the bad literal there.
            for clause in unroller.trans_clauses(k) {
                solver.add_clause_ref(&clause);
            }
            if solver.solve(&unroller.bad_assumptions_at(k)) == SatResult::Sat {
                return Some(k);
            }
        }
        None
    }

    #[test]
    fn frame_zero_is_identity() {
        let ts = counter_ts(2, 3);
        let u = Unroller::new(&ts);
        let v = ts.latch_var(1);
        assert_eq!(u.var_at(0, v), v);
        assert_eq!(u.lit_at(0, Lit::neg(v)), Lit::neg(v));
    }

    #[test]
    fn consecutive_frames_share_state_variables() {
        let ts = counter_ts(2, 3);
        let u = Unroller::new(&ts);
        // State var of frame 1 == primed var of frame 0.
        assert_eq!(u.var_at(1, ts.latch_var(0)), u.var_at(0, ts.primed_var(0)));
        // And frame 2 chains through frame 1.
        assert_eq!(u.var_at(2, ts.latch_var(1)), u.var_at(1, ts.primed_var(1)));
        // Input variables are frame-local.
        let ts_inputs = counter_input_ts();
        let u = Unroller::new(&ts_inputs);
        assert_ne!(
            u.var_at(0, ts_inputs.input_var(0)),
            u.var_at(1, ts_inputs.input_var(0))
        );
    }

    fn counter_input_ts() -> TransitionSystem {
        let mut b = AigBuilder::new();
        let en = b.input();
        let s = b.latch(Some(false));
        let next = b.xor(s, en);
        b.set_latch_next(s, next);
        b.add_bad(s);
        TransitionSystem::from_aig(&b.build())
    }

    #[test]
    fn bmc_finds_counter_bug_at_exact_depth() {
        // A 3-bit counter that is bad when it reaches 5: exactly 5 steps.
        let ts = counter_ts(3, 5);
        assert_eq!(bmc_reaches_bad(&ts, 10), Some(5));
    }

    #[test]
    fn bmc_respects_unreachable_bad_value() {
        // A 2-bit counter can never reach value 7.
        let mut b = AigBuilder::new();
        let state = b.latches(2, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let three = b.vec_equals_const(&state, 3);
        let extra = b.input();
        let bad = b.and(three, extra);
        // The bad also needs the input to be high.
        b.add_bad(bad);
        // Constraint forbids the input from ever being high: unreachable.
        b.add_constraint(!extra);
        let ts = TransitionSystem::from_aig(&b.build());
        assert_eq!(bmc_reaches_bad(&ts, 8), None);
    }

    #[test]
    fn state_and_input_extraction_from_bmc_model() {
        let ts = counter_input_ts();
        let u = Unroller::new(&ts);
        let mut solver = Solver::new();
        solver.ensure_vars(u.num_vars_through(2));
        for clause in u.init_clauses() {
            solver.add_clause_ref(&clause);
        }
        for clause in u.trans_clauses(0) {
            solver.add_clause_ref(&clause);
        }
        for clause in u.trans_clauses(1) {
            solver.add_clause_ref(&clause);
        }
        // Reach the bad state (latch = 1) at frame 1.
        assert_eq!(solver.solve(&u.bad_assumptions_at(1)), SatResult::Sat);
        let s0 = u.state_cube_at(0, |v| solver.model_value(v));
        let i0 = u.input_cube_at(0, |v| solver.model_value(v));
        let s1 = u.state_cube_at(1, |v| solver.model_value(v));
        assert!(s0.contains(Lit::neg(ts.latch_var(0))));
        assert!(i0.contains(Lit::pos(ts.input_var(0))));
        assert!(s1.contains(Lit::pos(ts.latch_var(0))));
    }

    #[test]
    fn num_vars_through_grows_linearly() {
        let ts = counter_ts(2, 3);
        let u = Unroller::new(&ts);
        assert_eq!(u.num_vars_through(0), ts.num_vars());
        assert_eq!(u.num_vars_through(3), 4 * ts.num_vars());
    }
}
