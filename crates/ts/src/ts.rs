//! The symbolic transition-system representation.

use plic3_logic::{Assignment, Cnf, Cube, Lit, Var};
use std::fmt;

/// A Boolean transition system `⟨X, Y, I, T⟩` with a bad-state literal and
/// optional invariant constraints, encoded in CNF.
///
/// The variable space is laid out in fixed ranges:
///
/// * `0 .. L` — current-state (latch) variables `X`,
/// * `L .. L+I` — primary-input variables `Y`,
/// * `L+I .. L+I+L` — next-state variables `X'` (the *primed* copies of `X`),
/// * `L+I+L` — a constant-true variable,
/// * the remainder — Tseitin auxiliaries for the AND gates of the circuit.
///
/// The transition relation [`TransitionSystem::trans`] constrains all of them:
/// it defines every auxiliary gate variable, ties each primed variable to the
/// latch's next-state function, asserts the constant variable, and asserts the
/// invariant constraints on the *source* state of the transition. Use
/// [`TransitionSystem::from_aig`] to build one (with cone-of-influence
/// reduction) from a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransitionSystem {
    pub(crate) num_latches: usize,
    pub(crate) num_inputs: usize,
    pub(crate) num_vars: usize,
    pub(crate) init_cube: Cube,
    pub(crate) init_cnf: Cnf,
    pub(crate) trans: Cnf,
    pub(crate) bad: Lit,
    pub(crate) constraints: Vec<Lit>,
    /// For each kept latch, the index of the corresponding latch in the source AIG.
    pub(crate) latch_aig_index: Vec<usize>,
    /// For each kept input, the index of the corresponding input in the source AIG.
    pub(crate) input_aig_index: Vec<usize>,
    /// Total number of latches of the source AIG (before cone-of-influence
    /// reduction); needed to reconstruct full-width witnesses.
    pub(crate) aig_num_latches: usize,
    pub(crate) aig_num_inputs: usize,
}

impl TransitionSystem {
    // ------------------------------------------------------------------
    // Sizes and variable ranges
    // ------------------------------------------------------------------

    /// Number of state (latch) variables after cone-of-influence reduction.
    pub fn num_latches(&self) -> usize {
        self.num_latches
    }

    /// Number of primary-input variables after cone-of-influence reduction.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total number of CNF variables used by the encoding (latches, inputs,
    /// primed copies, the constant, and Tseitin auxiliaries).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The `i`-th current-state variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_latches()`.
    pub fn latch_var(&self, i: usize) -> Var {
        assert!(i < self.num_latches, "latch index out of range");
        Var::new(i as u32)
    }

    /// The `i`-th primary-input variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs()`.
    pub fn input_var(&self, i: usize) -> Var {
        assert!(i < self.num_inputs, "input index out of range");
        Var::new((self.num_latches + i) as u32)
    }

    /// The primed (next-state) copy of the `i`-th latch variable.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_latches()`.
    pub fn primed_var(&self, i: usize) -> Var {
        assert!(i < self.num_latches, "latch index out of range");
        Var::new((self.num_latches + self.num_inputs + i) as u32)
    }

    /// The always-true variable of the encoding.
    pub fn const_true_var(&self) -> Var {
        Var::new((2 * self.num_latches + self.num_inputs) as u32)
    }

    /// Iterator over the current-state variables.
    pub fn latch_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.num_latches).map(|i| self.latch_var(i))
    }

    /// Iterator over the input variables.
    pub fn input_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.num_inputs).map(|i| self.input_var(i))
    }

    /// Iterator over the primed state variables.
    pub fn primed_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.num_latches).map(|i| self.primed_var(i))
    }

    /// Returns `true` if `var` is a current-state variable.
    pub fn is_latch_var(&self, var: Var) -> bool {
        var.index() < self.num_latches
    }

    /// Returns `true` if `var` is an input variable.
    pub fn is_input_var(&self, var: Var) -> bool {
        var.index() >= self.num_latches && var.index() < self.num_latches + self.num_inputs
    }

    /// Returns `true` if `var` is a primed state variable.
    pub fn is_primed_var(&self, var: Var) -> bool {
        let start = self.num_latches + self.num_inputs;
        var.index() >= start && var.index() < start + self.num_latches
    }

    /// The latch index of a current-state variable, if it is one.
    pub fn latch_index_of(&self, var: Var) -> Option<usize> {
        self.is_latch_var(var).then_some(var.index())
    }

    // ------------------------------------------------------------------
    // Formulas
    // ------------------------------------------------------------------

    /// The initial states as a cube over the current-state variables
    /// (uninitialized latches are unconstrained and simply absent).
    pub fn init_cube(&self) -> &Cube {
        &self.init_cube
    }

    /// The initial states as CNF, including the constant-true unit and the
    /// invariant constraints evaluated in the initial state.
    pub fn init_cnf(&self) -> &Cnf {
        &self.init_cnf
    }

    /// The transition relation `T(X, Y, X')` in CNF.
    pub fn trans(&self) -> &Cnf {
        &self.trans
    }

    /// The literal that is true exactly in the bad states (`¬P`).
    pub fn bad_lit(&self) -> Lit {
        self.bad
    }

    /// The invariant-constraint literals (over the current-state network).
    pub fn constraint_lits(&self) -> &[Lit] {
        &self.constraints
    }

    /// Assumption literals for a "does a bad state exist here" query: the bad
    /// literal plus all invariant constraints.
    pub fn bad_assumptions(&self) -> Vec<Lit> {
        let mut lits = self.constraints.clone();
        lits.push(self.bad);
        lits
    }

    // ------------------------------------------------------------------
    // Priming and projection helpers
    // ------------------------------------------------------------------

    /// Maps a literal over a current-state variable to the primed copy.
    ///
    /// # Panics
    ///
    /// Panics if the literal is not over a current-state variable.
    pub fn prime_lit(&self, lit: Lit) -> Lit {
        let i = self
            .latch_index_of(lit.var())
            .expect("prime_lit requires a current-state literal");
        Lit::new(self.primed_var(i), lit.asserted_value())
    }

    /// Maps a literal over a primed variable back to the current-state copy.
    ///
    /// # Panics
    ///
    /// Panics if the literal is not over a primed variable.
    pub fn unprime_lit(&self, lit: Lit) -> Lit {
        assert!(
            self.is_primed_var(lit.var()),
            "unprime_lit requires a primed literal"
        );
        let i = lit.var().index() - self.num_latches - self.num_inputs;
        Lit::new(self.latch_var(i), lit.asserted_value())
    }

    /// Maps a cube over current-state variables to the primed copy.
    pub fn prime_cube(&self, cube: &Cube) -> Cube {
        cube.iter().map(|l| self.prime_lit(l)).collect()
    }

    /// Maps a cube over primed variables back to current-state variables.
    pub fn unprime_cube(&self, cube: &Cube) -> Cube {
        cube.iter().map(|l| self.unprime_lit(l)).collect()
    }

    /// Extracts the current-state cube from a (total or partial) SAT model.
    pub fn state_cube_from(&self, model: impl Fn(Var) -> Option<bool>) -> Cube {
        Cube::from_lits(
            self.latch_vars()
                .filter_map(|v| model(v).map(|val| Lit::new(v, val))),
        )
    }

    /// Extracts the successor-state cube (over current-state variables) from a
    /// SAT model by reading the primed variables.
    pub fn next_state_cube_from(&self, model: impl Fn(Var) -> Option<bool>) -> Cube {
        Cube::from_lits(
            (0..self.num_latches).filter_map(|i| {
                model(self.primed_var(i)).map(|val| Lit::new(self.latch_var(i), val))
            }),
        )
    }

    /// Extracts the input cube from a SAT model.
    pub fn input_cube_from(&self, model: impl Fn(Var) -> Option<bool>) -> Cube {
        Cube::from_lits(
            self.input_vars()
                .filter_map(|v| model(v).map(|val| Lit::new(v, val))),
        )
    }

    // ------------------------------------------------------------------
    // Initial-state tests
    // ------------------------------------------------------------------

    /// Returns `true` if the cube (over current-state variables) has a non-empty
    /// intersection with the initial states.
    ///
    /// Because the initial states form a cube, this is a simple syntactic check:
    /// the intersection is empty iff some literal of `cube` is negated in the
    /// initial cube.
    pub fn cube_intersects_init(&self, cube: &Cube) -> bool {
        cube.diff(&self.init_cube).is_empty()
    }

    /// Returns `true` if the clause `¬cube` holds in all initial states, i.e.
    /// the cube excludes the initial states. This is the `I ⇒ ¬cand` side
    /// condition of the generalization algorithms.
    pub fn cube_excludes_init(&self, cube: &Cube) -> bool {
        !self.cube_intersects_init(cube)
    }

    /// Evaluates whether a full assignment over the latch variables is an
    /// initial state.
    pub fn assignment_is_initial(&self, assignment: &Assignment) -> bool {
        assignment.satisfies_cube(&self.init_cube)
    }

    // ------------------------------------------------------------------
    // Witness reconstruction
    // ------------------------------------------------------------------

    /// Number of latches in the original AIG (before cone-of-influence
    /// reduction).
    pub fn aig_num_latches(&self) -> usize {
        self.aig_num_latches
    }

    /// Number of inputs in the original AIG.
    pub fn aig_num_inputs(&self) -> usize {
        self.aig_num_inputs
    }

    /// The AIG latch index corresponding to transition-system latch `i`.
    pub fn aig_latch_index(&self, i: usize) -> usize {
        self.latch_aig_index[i]
    }

    /// The AIG input index corresponding to transition-system input `i`.
    pub fn aig_input_index(&self, i: usize) -> usize {
        self.input_aig_index[i]
    }
}

impl fmt::Display for TransitionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ts latches={} inputs={} vars={} trans_clauses={} constraints={}",
            self.num_latches,
            self.num_inputs,
            self.num_vars,
            self.trans.len(),
            self.constraints.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;

    fn two_bit_counter() -> TransitionSystem {
        let mut b = AigBuilder::new();
        let en = b.input();
        let bits = b.latches(2, Some(false));
        let inc = b.vec_increment(&bits);
        for (s, n) in bits.iter().zip(&inc) {
            let nxt = b.ite(en, *n, *s);
            b.set_latch_next(*s, nxt);
        }
        let bad = b.vec_equals_const(&bits, 3);
        b.add_bad(bad);
        TransitionSystem::from_aig(&b.build())
    }

    #[test]
    fn variable_ranges_are_disjoint_and_classified() {
        let ts = two_bit_counter();
        assert_eq!(ts.num_latches(), 2);
        assert_eq!(ts.num_inputs(), 1);
        let l0 = ts.latch_var(0);
        let i0 = ts.input_var(0);
        let p0 = ts.primed_var(0);
        assert!(ts.is_latch_var(l0) && !ts.is_input_var(l0) && !ts.is_primed_var(l0));
        assert!(ts.is_input_var(i0) && !ts.is_latch_var(i0));
        assert!(ts.is_primed_var(p0) && !ts.is_latch_var(p0));
        assert!(ts.num_vars() > 2 * ts.num_latches() + ts.num_inputs());
        assert_eq!(ts.latch_vars().count(), 2);
        assert_eq!(ts.primed_vars().count(), 2);
        assert_eq!(ts.input_vars().count(), 1);
    }

    #[test]
    fn priming_roundtrip() {
        let ts = two_bit_counter();
        let cube = Cube::from_lits([Lit::pos(ts.latch_var(0)), Lit::neg(ts.latch_var(1))]);
        let primed = ts.prime_cube(&cube);
        assert!(primed.iter().all(|l| ts.is_primed_var(l.var())));
        assert_eq!(ts.unprime_cube(&primed), cube);
    }

    #[test]
    #[should_panic(expected = "current-state literal")]
    fn prime_rejects_non_latch_literal() {
        let ts = two_bit_counter();
        let _ = ts.prime_lit(Lit::pos(ts.input_var(0)));
    }

    #[test]
    fn init_cube_and_intersection_checks() {
        let ts = two_bit_counter();
        // Both latches reset to 0.
        assert_eq!(ts.init_cube().len(), 2);
        let zero = Cube::from_lits([Lit::neg(ts.latch_var(0)), Lit::neg(ts.latch_var(1))]);
        let three = Cube::from_lits([Lit::pos(ts.latch_var(0)), Lit::pos(ts.latch_var(1))]);
        assert!(ts.cube_intersects_init(&zero));
        assert!(!ts.cube_intersects_init(&three));
        assert!(ts.cube_excludes_init(&three));
        // A cube mentioning only one latch still intersects init if compatible.
        let partial = Cube::from_lits([Lit::neg(ts.latch_var(1))]);
        assert!(ts.cube_intersects_init(&partial));
    }

    #[test]
    fn model_projection_helpers() {
        let ts = two_bit_counter();
        let mut assignment = Assignment::new(ts.num_vars());
        assignment.assign(ts.latch_var(0), true);
        assignment.assign(ts.latch_var(1), false);
        assignment.assign(ts.input_var(0), true);
        assignment.assign(ts.primed_var(0), false);
        assignment.assign(ts.primed_var(1), true);
        let state = ts.state_cube_from(|v| assignment.value(v));
        assert_eq!(state.len(), 2);
        assert!(state.contains(Lit::pos(ts.latch_var(0))));
        let next = ts.next_state_cube_from(|v| assignment.value(v));
        assert_eq!(
            next,
            Cube::from_lits([Lit::neg(ts.latch_var(0)), Lit::pos(ts.latch_var(1))])
        );
        let inputs = ts.input_cube_from(|v| assignment.value(v));
        assert_eq!(inputs, Cube::from_lits([Lit::pos(ts.input_var(0))]));
    }

    #[test]
    fn bad_assumptions_include_constraints() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let l = b.latch(Some(false));
        b.set_latch_next(l, x);
        b.add_bad(l);
        b.add_constraint(!x);
        let ts = TransitionSystem::from_aig(&b.build());
        assert_eq!(ts.constraint_lits().len(), 1);
        let assumptions = ts.bad_assumptions();
        assert_eq!(assumptions.len(), 2);
        assert_eq!(*assumptions.last().expect("non-empty"), ts.bad_lit());
    }

    #[test]
    fn display_reports_sizes() {
        let ts = two_bit_counter();
        let s = ts.to_string();
        assert!(s.contains("latches=2"));
        assert!(s.contains("inputs=1"));
    }
}
