//! Tseitin encoding of an AIG into a [`TransitionSystem`], with
//! cone-of-influence reduction.

use crate::TransitionSystem;
use plic3_aig::{Aig, AigLit};
use plic3_logic::{Clause, Cnf, Cube, Lit, Var};
use std::collections::HashSet;

impl TransitionSystem {
    /// Encodes `aig` into a CNF transition system.
    ///
    /// The encoding:
    ///
    /// 1. computes the cone of influence of the property (the first bad literal,
    ///    or the first output for AIGER 1.0 circuits) and of all invariant
    ///    constraints, dropping latches, inputs and gates outside of it,
    /// 2. allocates the variable ranges documented on [`TransitionSystem`],
    /// 3. Tseitin-encodes every kept AND gate over the current-state variables,
    /// 4. ties each primed state variable to its latch's next-state literal, and
    /// 5. asserts the constant-true variable and the constraints on the source
    ///    state of every transition.
    ///
    /// Circuits without any bad literal or output get a constant-false property
    /// (trivially safe).
    ///
    /// # Panics
    ///
    /// Panics if `aig` fails [`Aig::validate`].
    pub fn from_aig(aig: &Aig) -> Self {
        aig.validate().expect("cannot encode an invalid AIG");
        let property = aig.property_literal().unwrap_or(AigLit::FALSE);

        // ------------------------------------------------------------------
        // Cone of influence: collect every AIG variable transitively feeding the
        // property, the constraints, or the next-state function of a kept latch.
        // ------------------------------------------------------------------
        let mut needed: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        let push = |lit: AigLit, stack: &mut Vec<u32>, needed: &mut HashSet<u32>| {
            let v = lit.variable();
            if v != 0 && needed.insert(v) {
                stack.push(v);
            }
        };
        push(property, &mut stack, &mut needed);
        for &c in aig.constraints() {
            push(c, &mut stack, &mut needed);
        }
        while let Some(v) = stack.pop() {
            let lit = AigLit::positive(v);
            if let Some(gate) = aig.and_for(lit) {
                push(gate.rhs0, &mut stack, &mut needed);
                push(gate.rhs1, &mut stack, &mut needed);
            } else if let Some(idx) = aig.latch_index(lit) {
                push(aig.latches()[idx].next, &mut stack, &mut needed);
            }
        }

        // Kept latches and inputs, in their original order.
        let latch_aig_index: Vec<usize> = (0..aig.num_latches())
            .filter(|&i| needed.contains(&aig.latches()[i].lit.variable()))
            .collect();
        let input_aig_index: Vec<usize> = (0..aig.num_inputs())
            .filter(|&i| needed.contains(&aig.input(i).variable()))
            .collect();
        let num_latches = latch_aig_index.len();
        let num_inputs = input_aig_index.len();

        // ------------------------------------------------------------------
        // Variable allocation.
        // ------------------------------------------------------------------
        let const_true = Var::new((2 * num_latches + num_inputs) as u32);
        let mut next_free = const_true.raw() + 1;
        // Map from AIG variable to CNF literal (positive phase).
        let mut var_map: Vec<Option<Lit>> = vec![None; aig.max_var() as usize + 1];
        var_map[0] = Some(Lit::pos(const_true)); // AIG constant TRUE is variable 0 lit 1
        for (ts_idx, &aig_idx) in latch_aig_index.iter().enumerate() {
            var_map[aig.latches()[aig_idx].lit.variable() as usize] =
                Some(Lit::pos(Var::new(ts_idx as u32)));
        }
        for (ts_idx, &aig_idx) in input_aig_index.iter().enumerate() {
            var_map[aig.input(aig_idx).variable() as usize] =
                Some(Lit::pos(Var::new((num_latches + ts_idx) as u32)));
        }
        for gate in aig.ands() {
            if needed.contains(&gate.lhs.variable()) {
                var_map[gate.lhs.variable() as usize] = Some(Lit::pos(Var::new(next_free)));
                next_free += 1;
            }
        }
        let num_vars = next_free as usize;

        // Maps an AIG literal (constant, input, latch or gate) to a CNF literal.
        // The AIG constant variable 0 maps so that literal 1 (TRUE) becomes the
        // positive constant literal and literal 0 (FALSE) its negation.
        let map_lit = |lit: AigLit| -> Lit {
            let base =
                var_map[lit.variable() as usize].expect("literal outside the cone of influence");
            if lit.variable() == 0 {
                // AIG code 1 = TRUE  -> +const, code 0 = FALSE -> -const.
                base.with_polarity(lit.code() == 1)
            } else {
                base.with_polarity(!lit.is_negated())
            }
        };

        // ------------------------------------------------------------------
        // Transition relation.
        // ------------------------------------------------------------------
        let mut trans = Cnf::new();
        trans.push_unit(Lit::pos(const_true));
        for gate in aig.ands() {
            if !needed.contains(&gate.lhs.variable()) {
                continue;
            }
            let g = map_lit(gate.lhs);
            let a = map_lit(gate.rhs0);
            let b = map_lit(gate.rhs1);
            // g ↔ a ∧ b
            trans.push(Clause::from_lits([!g, a]));
            trans.push(Clause::from_lits([!g, b]));
            trans.push(Clause::from_lits([g, !a, !b]));
        }
        for (ts_idx, &aig_idx) in latch_aig_index.iter().enumerate() {
            let primed = Lit::pos(Var::new((num_latches + num_inputs + ts_idx) as u32));
            let next = map_lit(aig.latches()[aig_idx].next);
            // primed ↔ next
            trans.push(Clause::from_lits([!primed, next]));
            trans.push(Clause::from_lits([primed, !next]));
        }
        let constraints: Vec<Lit> = aig.constraints().iter().map(|&c| map_lit(c)).collect();
        for &c in &constraints {
            trans.push_unit(c);
        }

        // ------------------------------------------------------------------
        // Initial states.
        // ------------------------------------------------------------------
        let init_cube = Cube::from_lits(latch_aig_index.iter().enumerate().filter_map(
            |(ts_idx, &aig_idx)| {
                aig.latches()[aig_idx]
                    .init
                    .map(|v| Lit::new(Var::new(ts_idx as u32), v))
            },
        ));
        let mut init_cnf = Cnf::new();
        init_cnf.push_unit(Lit::pos(const_true));
        for l in &init_cube {
            init_cnf.push_unit(l);
        }

        let bad = map_lit(property);

        TransitionSystem {
            num_latches,
            num_inputs,
            num_vars,
            init_cube,
            init_cnf,
            trans,
            bad,
            constraints,
            latch_aig_index,
            input_aig_index,
            aig_num_latches: aig.num_latches(),
            aig_num_inputs: aig.num_inputs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;
    use plic3_sat::{SatResult, Solver};

    /// Loads the transition relation into a fresh solver.
    fn trans_solver(ts: &TransitionSystem) -> Solver {
        let mut solver = Solver::new();
        solver.ensure_vars(ts.num_vars());
        for clause in ts.trans() {
            solver.add_clause_ref(clause);
        }
        solver
    }

    fn toggle_ts() -> TransitionSystem {
        let mut b = AigBuilder::new();
        let s = b.latch(Some(false));
        b.set_latch_next(s, !s);
        b.add_bad(s);
        TransitionSystem::from_aig(&b.build())
    }

    #[test]
    fn toggle_transition_semantics() {
        let ts = toggle_ts();
        let mut solver = trans_solver(&ts);
        let s = Lit::pos(ts.latch_var(0));
        let s_next = Lit::pos(ts.primed_var(0));
        // From s=0 the only successor has s'=1.
        assert_eq!(solver.solve(&[!s, s_next]), SatResult::Sat);
        assert_eq!(solver.solve(&[!s, !s_next]), SatResult::Unsat);
        // From s=1 the only successor has s'=0.
        assert_eq!(solver.solve(&[s, !s_next]), SatResult::Sat);
        assert_eq!(solver.solve(&[s, s_next]), SatResult::Unsat);
    }

    #[test]
    fn counter_transition_semantics() {
        // A 2-bit free-running counter: check 01 -> 10 and 11 -> 00 transitions.
        let mut b = AigBuilder::new();
        let bits = b.latches(2, Some(false));
        let inc = b.vec_increment(&bits);
        for (s, n) in bits.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&bits, 3);
        b.add_bad(bad);
        let ts = TransitionSystem::from_aig(&b.build());
        let mut solver = trans_solver(&ts);
        let b0 = Lit::pos(ts.latch_var(0));
        let b1 = Lit::pos(ts.latch_var(1));
        let p0 = Lit::pos(ts.primed_var(0));
        let p1 = Lit::pos(ts.primed_var(1));
        // 01 (b0=1,b1=0) -> 10 (b0'=0,b1'=1)
        assert_eq!(solver.solve(&[b0, !b1, !p0, p1]), SatResult::Sat);
        assert_eq!(solver.solve(&[b0, !b1, p0]), SatResult::Unsat);
        // 11 -> 00 (wrap-around)
        assert_eq!(solver.solve(&[b0, b1, !p0, !p1]), SatResult::Sat);
        assert_eq!(solver.solve(&[b0, b1, p1]), SatResult::Unsat);
    }

    #[test]
    fn bad_literal_tracks_property() {
        let ts = toggle_ts();
        let mut solver = trans_solver(&ts);
        let s = Lit::pos(ts.latch_var(0));
        // bad ↔ s for the toggle circuit.
        assert_eq!(solver.solve(&[s, !ts.bad_lit()]), SatResult::Unsat);
        assert_eq!(solver.solve(&[!s, ts.bad_lit()]), SatResult::Unsat);
        assert_eq!(solver.solve(&[s, ts.bad_lit()]), SatResult::Sat);
    }

    #[test]
    fn cone_of_influence_drops_unrelated_logic() {
        let mut b = AigBuilder::new();
        // Relevant part: one latch toggling, bad = latch.
        let s = b.latch(Some(false));
        b.set_latch_next(s, !s);
        b.add_bad(s);
        // Irrelevant part: a 4-bit counter driven by 2 unused inputs.
        let junk_in = b.inputs(2);
        let junk = b.latches(4, Some(false));
        let inc = b.vec_increment(&junk);
        for ((j, n), g) in junk.iter().zip(&inc).zip(junk_in.iter().cycle()) {
            let nxt = b.ite(*g, *n, *j);
            b.set_latch_next(*j, nxt);
        }
        let aig = b.build();
        assert_eq!(aig.num_latches(), 5);
        assert_eq!(aig.num_inputs(), 2);
        let ts = TransitionSystem::from_aig(&aig);
        assert_eq!(ts.num_latches(), 1, "junk latches must be cut away");
        assert_eq!(ts.num_inputs(), 0, "junk inputs must be cut away");
        assert_eq!(ts.aig_num_latches(), 5);
        assert_eq!(ts.aig_latch_index(0), 0);
    }

    #[test]
    fn circuit_without_property_is_trivially_safe() {
        let mut b = AigBuilder::new();
        let s = b.latch(Some(false));
        b.set_latch_next(s, s);
        let ts = TransitionSystem::from_aig(&b.build());
        // bad literal is the negated constant: unsatisfiable together with trans.
        let mut solver = trans_solver(&ts);
        assert_eq!(solver.solve(&[ts.bad_lit()]), SatResult::Unsat);
    }

    #[test]
    fn uninitialized_latches_are_unconstrained_in_init() {
        let mut b = AigBuilder::new();
        let s = b.latch(None);
        let t = b.latch(Some(true));
        b.set_latch_next(s, s);
        b.set_latch_next(t, t);
        let both = b.and(s, t);
        b.add_bad(both);
        let ts = TransitionSystem::from_aig(&b.build());
        assert_eq!(ts.num_latches(), 2);
        assert_eq!(
            ts.init_cube().len(),
            1,
            "only the initialized latch is constrained"
        );
    }

    #[test]
    fn constraints_are_enforced_on_source_states() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let l = b.latch(Some(false));
        b.set_latch_next(l, x);
        b.add_bad(l);
        b.add_constraint(!l);
        let ts = TransitionSystem::from_aig(&b.build());
        let mut solver = trans_solver(&ts);
        // The constraint ¬l is part of the transition relation, so a source
        // state with l=1 admits no transition.
        assert_eq!(solver.solve(&[Lit::pos(ts.latch_var(0))]), SatResult::Unsat);
        assert_eq!(solver.solve(&[Lit::neg(ts.latch_var(0))]), SatResult::Sat);
    }
}
