//! Boolean transition systems for the PLIC3 model checkers.
//!
//! This crate turns an [`plic3_aig::Aig`] circuit into the symbolic
//! transition-system representation `⟨X, Y, I, T⟩` that IC3, BMC and
//! k-induction operate on (Section 2.1 of *Predicting Lemmas in Generalization
//! of IC3*, DAC 2024):
//!
//! * [`TransitionSystem`] — state variables `X`, input variables `Y`, the
//!   initial-state cube `I`, the Tseitin-encoded transition relation
//!   `T(X, Y, X')`, the bad-state literal and invariant constraints, together
//!   with the current/next (`prime`) variable maps and cone-of-influence
//!   reduction,
//! * [`Unroller`] — time-frame expansion of `T` for bounded model checking and
//!   k-induction,
//! * [`Trace`] — a finite counterexample path, replayable on the original AIG.
//!
//! # Example
//!
//! ```
//! use plic3_aig::AigBuilder;
//! use plic3_ts::TransitionSystem;
//!
//! let mut b = AigBuilder::new();
//! let s = b.latch(Some(false));
//! b.set_latch_next(s, !s);
//! b.add_bad(s);
//! let ts = TransitionSystem::from_aig(&b.build());
//! assert_eq!(ts.num_latches(), 1);
//! assert!(!ts.trans().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod trace;
mod ts;
mod unroll;

pub use trace::Trace;
pub use ts::TransitionSystem;
pub use unroll::Unroller;
