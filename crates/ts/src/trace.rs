//! Counterexample traces.

use crate::TransitionSystem;
use plic3_aig::{Aig, Simulator};
use plic3_logic::{Cube, Lit};
use std::fmt;

/// A finite execution of a [`TransitionSystem`] demonstrating a property
/// violation: a sequence of states (cubes over the current-state variables) and
/// the input valuations used to move between them.
///
/// `states[0]` is an initial state, `states.last()` is a bad state, and for
/// each step `i` the inputs `inputs[i]` drive the system from `states[i]` to
/// `states[i + 1]`. States and inputs may be partial cubes (variables the SAT
/// solver left unconstrained are absent); [`Trace::replay_on_aig`] fills the
/// gaps with `false` when replaying.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Trace {
    states: Vec<Cube>,
    inputs: Vec<Cube>,
}

impl Trace {
    /// Creates a trace from state and input sequences.
    ///
    /// A trace over `k` transition steps has `k + 1` states and either `k` input
    /// valuations (one per transition) or `k + 1` (the extra final valuation is
    /// the one under which the bad literal is observed in the last state, for
    /// properties that also depend on primary inputs).
    ///
    /// # Panics
    ///
    /// Panics if the lengths do not satisfy the relation above (the empty trace
    /// is allowed).
    pub fn new(states: Vec<Cube>, inputs: Vec<Cube>) -> Self {
        if !(states.is_empty() && inputs.is_empty()) {
            assert!(
                inputs.len() + 1 == states.len() || inputs.len() == states.len(),
                "a trace over k steps has k+1 states and k or k+1 input valuations"
            );
        }
        Trace { states, inputs }
    }

    /// The state sequence.
    pub fn states(&self) -> &[Cube] {
        &self.states
    }

    /// The input sequence.
    pub fn inputs(&self) -> &[Cube] {
        &self.inputs
    }

    /// Number of transition steps (states minus one).
    pub fn len(&self) -> usize {
        self.states.len().saturating_sub(1)
    }

    /// Returns `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Converts the trace into per-step input vectors over the *original AIG*
    /// input ordering (inputs outside the cone of influence default to `false`).
    pub fn aig_input_vectors(&self, ts: &TransitionSystem) -> Vec<Vec<bool>> {
        self.inputs
            .iter()
            .map(|cube| {
                let mut frame = vec![false; ts.aig_num_inputs()];
                for i in 0..ts.num_inputs() {
                    let var = ts.input_var(i);
                    if let Some(value) = cube.value_of(var) {
                        frame[ts.aig_input_index(i)] = value;
                    }
                }
                frame
            })
            .collect()
    }

    /// The initial AIG latch valuation implied by the first state of the trace
    /// (latches outside the cone of influence take their reset value, defaulting
    /// to `false`).
    pub fn aig_initial_state(&self, ts: &TransitionSystem, aig: &Aig) -> Vec<bool> {
        let mut state: Vec<bool> = aig
            .latches()
            .iter()
            .map(|l| l.init.unwrap_or(false))
            .collect();
        if let Some(first) = self.states.first() {
            for i in 0..ts.num_latches() {
                if let Some(value) = first.value_of(ts.latch_var(i)) {
                    state[ts.aig_latch_index(i)] = value;
                }
            }
        }
        state
    }

    /// Replays the trace on the original circuit and returns `true` if it indeed
    /// reaches a bad state (with all invariant constraints holding on the way).
    ///
    /// This is the end-to-end validation used by the engines before reporting
    /// `Unsafe`.
    ///
    /// # Example
    ///
    /// ```
    /// use plic3_aig::AigBuilder;
    /// use plic3_ts::{Trace, TransitionSystem};
    ///
    /// // A latch that follows its input; bad once the latch is 1. Replay
    /// // re-simulates the circuit from the trace's initial state under the
    /// // trace's inputs, so only executions that genuinely reach a bad
    /// // state pass.
    /// let mut b = AigBuilder::new();
    /// let x = b.input();
    /// let l = b.latch(Some(false));
    /// b.set_latch_next(l, x);
    /// b.add_bad(l);
    /// let aig = b.build();
    /// let ts = TransitionSystem::from_aig(&aig);
    /// let good = Trace::from_bits(&ts, &[&[false], &[true]], &[&[true]]);
    /// assert!(good.replay_on_aig(&ts, &aig));
    /// // Driving the input low instead never violates the property.
    /// let bogus = Trace::from_bits(&ts, &[&[false], &[false]], &[&[false]]);
    /// assert!(!bogus.replay_on_aig(&ts, &aig));
    /// ```
    pub fn replay_on_aig(&self, ts: &TransitionSystem, aig: &Aig) -> bool {
        if self.states.is_empty() {
            return false;
        }
        let initial = self.aig_initial_state(ts, aig);
        let mut sim = Simulator::from_state(aig, initial);
        // The bad literal is observed when stepping *from* the final state; if
        // the trace does not carry an explicit observation input frame, append
        // an all-false one.
        let mut frames = self.aig_input_vectors(ts);
        if frames.len() < self.states.len() {
            frames.push(vec![false; ts.aig_num_inputs()]);
        }
        sim.run_reaches_bad(&frames)
    }

    /// Returns the states as pretty-printed strings (for reports and debugging).
    pub fn render(&self, ts: &TransitionSystem) -> String {
        let mut out = String::new();
        for (i, state) in self.states.iter().enumerate() {
            let bits: String = (0..ts.num_latches())
                .map(|l| match state.value_of(ts.latch_var(l)) {
                    Some(true) => '1',
                    Some(false) => '0',
                    None => 'x',
                })
                .collect();
            out.push_str(&format!("state {i}: {bits}\n"));
            if let Some(inputs) = self.inputs.get(i) {
                let bits: String = (0..ts.num_inputs())
                    .map(|j| match inputs.value_of(ts.input_var(j)) {
                        Some(true) => '1',
                        Some(false) => '0',
                        None => 'x',
                    })
                    .collect();
                out.push_str(&format!("input {i}: {bits}\n"));
            }
        }
        out
    }

    /// Builds a one-state trace from an initial bad state.
    pub fn single_state(state: Cube) -> Self {
        Trace {
            states: vec![state],
            inputs: Vec::new(),
        }
    }

    /// Appends a step at the *front* of the trace (used when reconstructing a
    /// counterexample from IC3 proof obligations, which are discovered from the
    /// bad end backwards).
    pub fn push_front(&mut self, state: Cube, inputs: Cube) {
        self.states.insert(0, state);
        self.inputs.insert(0, inputs);
    }

    /// Appends a step at the end of the trace.
    pub fn push_back(&mut self, inputs: Cube, state: Cube) {
        self.inputs.push(inputs);
        self.states.push(state);
    }

    /// Restricts every state cube to the latch variables (dropping any stray
    /// literals a SAT model may have contributed) — a defensive normalization
    /// used before replaying.
    pub fn normalized(&self, ts: &TransitionSystem) -> Trace {
        let keep_state =
            |cube: &Cube| -> Cube { cube.iter().filter(|l| ts.is_latch_var(l.var())).collect() };
        let keep_input =
            |cube: &Cube| -> Cube { cube.iter().filter(|l| ts.is_input_var(l.var())).collect() };
        Trace {
            states: self.states.iter().map(keep_state).collect(),
            inputs: self.inputs.iter().map(keep_input).collect(),
        }
    }

    /// Convenience constructor used in tests: a trace over explicit latch bit
    /// patterns and input bit patterns.
    pub fn from_bits(ts: &TransitionSystem, states: &[&[bool]], inputs: &[&[bool]]) -> Self {
        let states = states
            .iter()
            .map(|bits| {
                Cube::from_lits(
                    bits.iter()
                        .enumerate()
                        .map(|(i, &b)| Lit::new(ts.latch_var(i), b)),
                )
            })
            .collect();
        let inputs = inputs
            .iter()
            .map(|bits| {
                Cube::from_lits(
                    bits.iter()
                        .enumerate()
                        .map(|(i, &b)| Lit::new(ts.input_var(i), b)),
                )
            })
            .collect();
        Trace::new(states, inputs)
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace with {} steps", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;

    fn counter_aig() -> Aig {
        let mut b = AigBuilder::new();
        let en = b.input();
        let bits = b.latches(2, Some(false));
        let inc = b.vec_increment(&bits);
        for (s, n) in bits.iter().zip(&inc) {
            let nxt = b.ite(en, *n, *s);
            b.set_latch_next(*s, nxt);
        }
        let bad = b.vec_equals_const(&bits, 3);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn valid_trace_replays_successfully() {
        let aig = counter_aig();
        let ts = TransitionSystem::from_aig(&aig);
        // 00 --en--> 01 --en--> 10 --en--> 11 (bad)
        let trace = Trace::from_bits(
            &ts,
            &[
                &[false, false],
                &[true, false],
                &[false, true],
                &[true, true],
            ],
            &[&[true], &[true], &[true]],
        );
        assert_eq!(trace.len(), 3);
        assert!(trace.replay_on_aig(&ts, &aig));
    }

    #[test]
    fn invalid_trace_fails_replay() {
        let aig = counter_aig();
        let ts = TransitionSystem::from_aig(&aig);
        // Inputs never enable the counter: never reaches 11.
        let trace = Trace::from_bits(&ts, &[&[false, false], &[false, false]], &[&[false]]);
        assert!(!trace.replay_on_aig(&ts, &aig));
        assert!(!Trace::default().replay_on_aig(&ts, &aig));
    }

    #[test]
    #[should_panic(expected = "k+1 states")]
    fn mismatched_lengths_panic() {
        let _ = Trace::new(
            vec![Cube::top()],
            vec![Cube::top(), Cube::top(), Cube::top()],
        );
    }

    #[test]
    fn push_front_builds_backwards() {
        let aig = counter_aig();
        let ts = TransitionSystem::from_aig(&aig);
        let s = |bits: &[bool]| {
            Cube::from_lits(
                bits.iter()
                    .enumerate()
                    .map(|(i, &b)| Lit::new(ts.latch_var(i), b)),
            )
        };
        let input_on = Cube::from_lits([Lit::pos(ts.input_var(0))]);
        let mut trace = Trace::single_state(s(&[true, true]));
        trace.push_front(s(&[false, true]), input_on.clone());
        trace.push_front(s(&[true, false]), input_on.clone());
        trace.push_front(s(&[false, false]), input_on.clone());
        assert_eq!(trace.len(), 3);
        assert!(trace.replay_on_aig(&ts, &aig));
    }

    #[test]
    fn normalization_drops_foreign_literals() {
        let aig = counter_aig();
        let ts = TransitionSystem::from_aig(&aig);
        let messy_state = Cube::from_lits([
            Lit::pos(ts.latch_var(0)),
            Lit::pos(ts.input_var(0)),
            Lit::pos(ts.primed_var(1)),
        ]);
        let trace = Trace::single_state(messy_state);
        let clean = trace.normalized(&ts);
        assert_eq!(clean.states()[0].len(), 1);
        assert!(clean.states()[0].contains(Lit::pos(ts.latch_var(0))));
    }

    #[test]
    fn render_and_display() {
        let aig = counter_aig();
        let ts = TransitionSystem::from_aig(&aig);
        let trace = Trace::from_bits(&ts, &[&[false, false], &[true, false]], &[&[true]]);
        let text = trace.render(&ts);
        assert!(text.contains("state 0: 00"));
        assert!(text.contains("input 0: 1"));
        assert!(text.contains("state 1: 10"));
        assert_eq!(trace.to_string(), "trace with 1 steps");
    }

    #[test]
    fn partial_cubes_default_to_reset_values() {
        let aig = counter_aig();
        let ts = TransitionSystem::from_aig(&aig);
        // States mention only the bits that matter; missing input literals mean
        // "any value", which the replay resolves to false.
        let trace = Trace::new(
            vec![Cube::top(), Cube::from_lits([Lit::pos(ts.latch_var(0))])],
            vec![Cube::from_lits([Lit::pos(ts.input_var(0))])],
        );
        let initial = trace.aig_initial_state(&ts, &aig);
        assert_eq!(initial, vec![false, false]);
        let frames = trace.aig_input_vectors(&ts);
        assert_eq!(frames, vec![vec![true]]);
    }
}
