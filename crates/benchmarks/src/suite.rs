//! The benchmark container types and the standard suites.

use crate::families;
use plic3_aig::Aig;
use plic3_ts::TransitionSystem;
use std::fmt;

/// Ground truth for a benchmark instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpectedResult {
    /// The property holds.
    Safe,
    /// The property is violated; when known by construction, `min_depth` is the
    /// length of the shortest counterexample.
    Unsafe {
        /// Length of the shortest counterexample, if known.
        min_depth: Option<usize>,
    },
}

impl ExpectedResult {
    /// Returns `true` for safe instances.
    pub fn is_safe(&self) -> bool {
        matches!(self, ExpectedResult::Safe)
    }
}

impl fmt::Display for ExpectedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpectedResult::Safe => write!(f, "safe"),
            ExpectedResult::Unsafe { min_depth: Some(d) } => write!(f, "unsafe(depth {d})"),
            ExpectedResult::Unsafe { min_depth: None } => write!(f, "unsafe"),
        }
    }
}

/// One model-checking instance: a circuit, its identity, and its ground truth.
#[derive(Clone, Debug)]
pub struct Benchmark {
    name: String,
    family: &'static str,
    expected: ExpectedResult,
    aig: Aig,
}

impl Benchmark {
    /// Creates a benchmark instance.
    pub fn new(
        name: impl Into<String>,
        family: &'static str,
        expected: ExpectedResult,
        aig: Aig,
    ) -> Self {
        Benchmark {
            name: name.into(),
            family,
            expected,
            aig,
        }
    }

    /// Unique instance name (family plus parameters).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family this instance belongs to.
    pub fn family(&self) -> &'static str {
        self.family
    }

    /// The ground-truth verdict.
    pub fn expected(&self) -> ExpectedResult {
        self.expected
    }

    /// The circuit.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Encodes the circuit into a transition system (cone-of-influence reduced).
    pub fn ts(&self) -> TransitionSystem {
        TransitionSystem::from_aig(&self.aig)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] expected {}",
            self.name, self.family, self.expected
        )
    }
}

/// A collection of benchmark instances.
#[derive(Clone, Debug, Default)]
pub struct Suite {
    benchmarks: Vec<Benchmark>,
}

impl Suite {
    /// Creates an empty suite.
    pub fn new() -> Self {
        Suite::default()
    }

    /// Creates a suite from explicit benchmarks.
    pub fn from_benchmarks(benchmarks: Vec<Benchmark>) -> Self {
        Suite { benchmarks }
    }

    /// The full HWMCC-style suite used by the experiment harness: every family
    /// at a range of sizes, mixing safe and unsafe instances.
    pub fn hwmcc_like() -> Self {
        let mut benchmarks = Vec::new();
        benchmarks.extend(families::counters::instances());
        benchmarks.extend(families::shift::instances());
        benchmarks.extend(families::rings::instances());
        benchmarks.extend(families::arbiter::instances());
        benchmarks.extend(families::traffic::instances());
        benchmarks.extend(families::fifo::instances());
        benchmarks.extend(families::lock::instances());
        benchmarks.extend(families::gray::instances());
        Suite { benchmarks }
    }

    /// A small subset (one small instance per family) for fast tests and
    /// Criterion benchmarks.
    pub fn quick() -> Self {
        let mut benchmarks = Vec::new();
        benchmarks.extend(families::counters::quick());
        benchmarks.extend(families::shift::quick());
        benchmarks.extend(families::rings::quick());
        benchmarks.extend(families::arbiter::quick());
        benchmarks.extend(families::traffic::quick());
        benchmarks.extend(families::fifo::quick());
        benchmarks.extend(families::lock::quick());
        benchmarks.extend(families::gray::quick());
        Suite { benchmarks }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Returns `true` if the suite has no instances.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Iterates over the instances.
    pub fn iter(&self) -> std::slice::Iter<'_, Benchmark> {
        self.benchmarks.iter()
    }

    /// Adds an instance.
    pub fn push(&mut self, benchmark: Benchmark) {
        self.benchmarks.push(benchmark);
    }

    /// Returns a new suite containing only instances satisfying the predicate.
    pub fn filter(&self, mut keep: impl FnMut(&Benchmark) -> bool) -> Suite {
        Suite {
            benchmarks: self
                .benchmarks
                .iter()
                .filter(|b| keep(b))
                .cloned()
                .collect(),
        }
    }

    /// Returns the number of safe / unsafe instances.
    pub fn expected_counts(&self) -> (usize, usize) {
        let safe = self
            .benchmarks
            .iter()
            .filter(|b| b.expected().is_safe())
            .count();
        (safe, self.benchmarks.len() - safe)
    }

    /// Looks an instance up by name.
    pub fn find(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name() == name)
    }
}

impl<'a> IntoIterator for &'a Suite {
    type Item = &'a Benchmark;
    type IntoIter = std::slice::Iter<'a, Benchmark>;

    fn into_iter(self) -> Self::IntoIter {
        self.benchmarks.iter()
    }
}

impl IntoIterator for Suite {
    type Item = Benchmark;
    type IntoIter = std::vec::IntoIter<Benchmark>;

    fn into_iter(self) -> Self::IntoIter {
        self.benchmarks.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn full_suite_is_large_and_mixed() {
        let suite = Suite::hwmcc_like();
        assert!(
            suite.len() >= 80,
            "suite has only {} instances",
            suite.len()
        );
        let (safe, unsafe_) = suite.expected_counts();
        assert!(safe >= 30, "too few safe instances: {safe}");
        assert!(unsafe_ >= 30, "too few unsafe instances: {unsafe_}");
    }

    #[test]
    fn names_are_unique() {
        let suite = Suite::hwmcc_like();
        let names: HashSet<&str> = suite.iter().map(Benchmark::name).collect();
        assert_eq!(names.len(), suite.len(), "duplicate benchmark names");
    }

    #[test]
    fn every_instance_is_a_valid_circuit_with_a_property() {
        for bench in Suite::hwmcc_like().iter() {
            bench.aig().validate().unwrap_or_else(|e| {
                panic!("{} produced an invalid AIG: {e}", bench.name());
            });
            assert!(
                bench.aig().property_literal().is_some(),
                "{} has no property",
                bench.name()
            );
            let ts = bench.ts();
            assert!(ts.num_latches() > 0, "{} has no state", bench.name());
        }
    }

    #[test]
    fn quick_suite_covers_every_family() {
        let quick = Suite::quick();
        let full = Suite::hwmcc_like();
        let quick_families: HashSet<&str> = quick.iter().map(Benchmark::family).collect();
        let full_families: HashSet<&str> = full.iter().map(Benchmark::family).collect();
        assert_eq!(quick_families, full_families);
    }

    #[test]
    fn filter_and_find() {
        let suite = Suite::hwmcc_like();
        let safe_only = suite.filter(|b| b.expected().is_safe());
        assert!(safe_only.len() < suite.len());
        assert!(safe_only.iter().all(|b| b.expected().is_safe()));
        let name = suite.iter().next().expect("non-empty").name().to_string();
        assert!(suite.find(&name).is_some());
        assert!(suite.find("no-such-benchmark").is_none());
    }

    #[test]
    fn display_mentions_family_and_expectation() {
        let suite = Suite::quick();
        let bench = suite.iter().next().expect("non-empty");
        let text = bench.to_string();
        assert!(text.contains(bench.family()));
        assert!(text.contains("safe") || text.contains("unsafe"));
        assert_eq!(ExpectedResult::Safe.to_string(), "safe");
        assert_eq!(
            ExpectedResult::Unsafe { min_depth: Some(3) }.to_string(),
            "unsafe(depth 3)"
        );
    }
}
