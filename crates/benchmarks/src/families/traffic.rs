//! Traffic-light controllers.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "traffic";

/// A crossing controller cycling through `2 * phase_len` phases with an n-bit
/// phase counter: the north–south direction is green during the first
/// `green_len` phases of the first half, east–west during the first
/// `green_len` phases of the second half.
///
/// Bad: both directions are green simultaneously. The correct controller
/// (`green_len <= phase_len`) is safe. The buggy variant stretches the
/// east–west green into the first half when a `pedestrian` input is pressed,
/// which overlaps with north–south green and is therefore unsafe.
fn crossing(bits: usize, green_len: u64, buggy: bool) -> Aig {
    let period = 1u64 << bits; // full cycle length
    let half = period / 2;
    let mut b = AigBuilder::new();
    let pedestrian = b.input();
    let phase = b.latches(bits, Some(false));
    let inc = b.vec_increment(&phase);
    for (s, n) in phase.iter().zip(&inc) {
        b.set_latch_next(*s, *n);
    }
    // "phase < k" comparators built as a disjunction of exact values — fine for
    // the small bit-widths used here.
    let lt = |b: &mut AigBuilder, lo: u64, hi: u64| {
        let terms: Vec<_> = (lo..hi).map(|v| b.vec_equals_const(&phase, v)).collect();
        b.or_many(&terms)
    };
    let ns_green = lt(&mut b, 0, green_len);
    let ew_green_normal = lt(&mut b, half, half + green_len);
    let ew_green = if buggy {
        let early = lt(&mut b, 0, 1);
        let pressed = b.and(early, pedestrian);
        b.or(ew_green_normal, pressed)
    } else {
        ew_green_normal
    };
    let bad = b.and(ns_green, ew_green);
    b.add_bad(bad);
    b.build()
}

/// The correct (safe) crossing controller.
pub fn crossing_safe(bits: usize, green_len: u64) -> Aig {
    crossing(bits, green_len, false)
}

/// The buggy (unsafe) crossing controller.
pub fn crossing_buggy(bits: usize, green_len: u64) -> Aig {
    crossing(bits, green_len, true)
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for bits in [3usize, 4, 5, 6] {
        let green = (1u64 << bits) / 4;
        out.push(Benchmark::new(
            format!("traffic_safe_{bits}"),
            FAMILY,
            ExpectedResult::Safe,
            crossing_safe(bits, green.max(1)),
        ));
    }
    for bits in [3usize, 4, 5] {
        let green = (1u64 << bits) / 4;
        out.push(Benchmark::new(
            format!("traffic_buggy_unsafe_{bits}"),
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(0) },
            crossing_buggy(bits, green.max(1)),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "traffic_safe_q4",
            FAMILY,
            ExpectedResult::Safe,
            crossing_safe(4, 4),
        ),
        Benchmark::new(
            "traffic_buggy_unsafe_q4",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(0) },
            crossing_buggy(4, 4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn safe_controller_never_overlaps() {
        let aig = crossing_safe(4, 4);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![true]; 40]));
    }

    #[test]
    fn buggy_controller_overlaps_when_pedestrian_presses() {
        let aig = crossing_buggy(4, 4);
        let mut sim = Simulator::new(&aig);
        assert!(sim.run_reaches_bad(&vec![vec![true]; 1]));
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![false]; 40]));
    }
}
