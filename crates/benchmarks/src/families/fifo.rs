//! FIFO occupancy counters.

use super::{vec_decrement, Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "fifo";

/// An occupancy counter for a FIFO of capacity `capacity` (which must fit in
/// `bits` bits together with `capacity + 1`).
///
/// `push` and `pop` inputs move the occupancy up and down. In the guarded
/// (correct) version a push is ignored when the FIFO is full and a pop when it
/// is empty, so the occupancy never exceeds the capacity and the instance is
/// safe. The unguarded version accepts pushes when full and overflows, making
/// the bad states (`occupancy == capacity + 1`) reachable in `capacity + 1`
/// steps.
fn fifo(bits: usize, capacity: u64, guarded: bool) -> Aig {
    assert!(capacity + 1 < (1 << bits));
    let mut b = AigBuilder::new();
    let push = b.input();
    let pop = b.input();
    let count = b.latches(bits, Some(false));
    let full = b.vec_equals_const(&count, capacity);
    let empty = b.vec_equals_const(&count, 0);
    let push_ok = if guarded { b.and(push, !full) } else { push };
    let pop_ok = b.and(pop, !empty);
    let up = b.and(push_ok, !pop_ok);
    let down = b.and(pop_ok, !push_ok);
    let incremented = b.vec_increment(&count);
    let decremented = vec_decrement(&mut b, &count);
    for i in 0..bits {
        let with_up = b.ite(up, incremented[i], count[i]);
        let next = b.ite(down, decremented[i], with_up);
        b.set_latch_next(count[i], next);
    }
    let bad = b.vec_equals_const(&count, capacity + 1);
    b.add_bad(bad);
    b.build()
}

/// The guarded (safe) FIFO occupancy counter.
pub fn fifo_guarded(bits: usize, capacity: u64) -> Aig {
    fifo(bits, capacity, true)
}

/// The unguarded (unsafe) FIFO occupancy counter.
pub fn fifo_unguarded(bits: usize, capacity: u64) -> Aig {
    fifo(bits, capacity, false)
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for (bits, capacity) in [
        (3usize, 5u64),
        (4, 9),
        (4, 12),
        (5, 20),
        (5, 27),
        (6, 45),
        (6, 58),
    ] {
        out.push(Benchmark::new(
            format!("fifo_guarded_safe_{bits}_{capacity}"),
            FAMILY,
            ExpectedResult::Safe,
            fifo_guarded(bits, capacity),
        ));
    }
    for (bits, capacity) in [(3usize, 4u64), (4, 6), (4, 8), (5, 10)] {
        out.push(Benchmark::new(
            format!("fifo_unguarded_unsafe_{bits}_{capacity}"),
            FAMILY,
            ExpectedResult::Unsafe {
                min_depth: Some(capacity as usize + 1),
            },
            fifo_unguarded(bits, capacity),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "fifo_guarded_safe_q",
            FAMILY,
            ExpectedResult::Safe,
            fifo_guarded(3, 5),
        ),
        Benchmark::new(
            "fifo_unguarded_unsafe_q",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(5) },
            fifo_unguarded(3, 4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn guarded_fifo_saturates_at_capacity() {
        let aig = fifo_guarded(3, 5);
        let mut sim = Simulator::new(&aig);
        // Push forever; occupancy must stick at 5 and never hit 6.
        assert!(!sim.run_reaches_bad(&vec![vec![true, false]; 20]));
    }

    #[test]
    fn unguarded_fifo_overflows() {
        let aig = fifo_unguarded(3, 4);
        let mut sim = Simulator::new(&aig);
        // The overflow state (count = 5) is reached after 5 pushes and observed
        // on the following simulation step.
        assert!(sim.run_reaches_bad(&vec![vec![true, false]; 6]));
    }

    #[test]
    fn popping_an_empty_fifo_is_harmless() {
        let aig = fifo_guarded(3, 5);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![false, true]; 10]));
        assert_eq!(sim.latch_values(), &[false, false, false]);
    }

    #[test]
    fn mixed_traffic_keeps_guarded_fifo_safe() {
        let aig = fifo_guarded(4, 9);
        let mut sim = Simulator::new(&aig);
        let frames: Vec<Vec<bool>> = (0..60).map(|i| vec![i % 3 != 0, i % 5 == 0]).collect();
        assert!(!sim.run_reaches_bad(&frames));
    }
}
