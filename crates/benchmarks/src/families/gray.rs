//! Gray-code counters checked against a binary shadow counter.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder, AigLit};

const FAMILY: &str = "gray";

/// Builds a circuit with a free-running binary counter and a register that is
/// supposed to hold the Gray encoding of the *same* count.
///
/// The Gray register is updated each cycle from the incremented binary value
/// (`gray = bin' ^ (bin' >> 1)`). Bad: the Gray register differs from the Gray
/// encoding of the binary counter. The correct version is safe; the buggy
/// version freezes the Gray register for one cycle when a `glitch` input is
/// pressed, making the mismatch reachable in one step.
fn gray_checker(bits: usize, buggy: bool) -> Aig {
    let mut b = AigBuilder::new();
    let glitch = b.input();
    let bin = b.latches(bits, Some(false));
    let gray = b.latches(bits, Some(false));
    let bin_next = b.vec_increment(&bin);
    for (s, n) in bin.iter().zip(&bin_next) {
        b.set_latch_next(*s, *n);
    }
    // Gray encoding of the *next* binary value.
    let gray_of_next: Vec<AigLit> = (0..bits)
        .map(|i| {
            if i + 1 < bits {
                b.xor(bin_next[i], bin_next[i + 1])
            } else {
                bin_next[i]
            }
        })
        .collect();
    for i in 0..bits {
        let next = if buggy {
            b.ite(glitch, gray[i], gray_of_next[i])
        } else {
            gray_of_next[i]
        };
        b.set_latch_next(gray[i], next);
    }
    // Bad: gray register != gray(bin).
    let gray_of_bin: Vec<AigLit> = (0..bits)
        .map(|i| {
            if i + 1 < bits {
                b.xor(bin[i], bin[i + 1])
            } else {
                bin[i]
            }
        })
        .collect();
    let equal = b.vec_equals(&gray, &gray_of_bin);
    b.add_bad(!equal);
    b.build()
}

/// The correct (safe) Gray-code checker.
pub fn gray_safe(bits: usize) -> Aig {
    gray_checker(bits, false)
}

/// The glitchy (unsafe) Gray-code checker.
pub fn gray_buggy(bits: usize) -> Aig {
    gray_checker(bits, true)
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for bits in [3usize, 4, 5, 6, 7, 8] {
        out.push(Benchmark::new(
            format!("gray_safe_{bits}"),
            FAMILY,
            ExpectedResult::Safe,
            gray_safe(bits),
        ));
    }
    for bits in [3usize, 4, 5] {
        out.push(Benchmark::new(
            format!("gray_buggy_unsafe_{bits}"),
            FAMILY,
            ExpectedResult::Unsafe { min_depth: None },
            gray_buggy(bits),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new("gray_safe_q3", FAMILY, ExpectedResult::Safe, gray_safe(3)),
        Benchmark::new(
            "gray_buggy_unsafe_q3",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: None },
            gray_buggy(3),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn correct_checker_never_flags() {
        let aig = gray_safe(4);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![true]; 40]));
    }

    #[test]
    fn glitch_creates_a_mismatch() {
        let aig = gray_buggy(4);
        let mut sim = Simulator::new(&aig);
        assert!(sim.run_reaches_bad(&vec![vec![true]; 4]));
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![false]; 40]));
    }
}
