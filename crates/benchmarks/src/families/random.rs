//! Seeded random circuits (no ground truth) for differential testing.
//!
//! These circuits are **not** part of [`crate::Suite::hwmcc_like`] because
//! their safe/unsafe status is not known by construction; they exist so the
//! integration tests can cross-check the engines against each other (IC3 vs
//! BMC vs k-induction vs the AIG simulator) on inputs nobody hand-crafted.

use plic3_aig::{Aig, AigBuilder, AigLit};
use plic3_logic::SplitMix64;

/// Parameters of a random circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomCircuitConfig {
    /// Number of latches.
    pub latches: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of AND gates to sample.
    pub gates: usize,
}

impl Default for RandomCircuitConfig {
    fn default() -> Self {
        RandomCircuitConfig {
            latches: 5,
            inputs: 2,
            gates: 20,
        }
    }
}

/// Generates a random (but deterministic for a given `seed`) sequential
/// circuit: random AND/inverter network over the latches and inputs, random
/// next-state functions, and a random bad-state literal.
///
/// # Example
///
/// ```
/// use plic3_benchmarks::families::random::{random_circuit, RandomCircuitConfig};
/// let a = random_circuit(7, RandomCircuitConfig::default());
/// let b = random_circuit(7, RandomCircuitConfig::default());
/// assert_eq!(a, b, "same seed gives the same circuit");
/// assert!(a.validate().is_ok());
/// ```
pub fn random_circuit(seed: u64, config: RandomCircuitConfig) -> Aig {
    let mut rng = SplitMix64::new(seed);
    let mut b = AigBuilder::new();
    let inputs = b.inputs(config.inputs);
    let latches: Vec<AigLit> = (0..config.latches)
        .map(|_| b.latch(Some(rng.gen_bool(0.3))))
        .collect();
    // Candidate operand pool: constants, inputs, latches, then created gates.
    let mut pool: Vec<AigLit> = Vec::new();
    pool.push(b.constant_true());
    pool.extend(inputs.iter().copied());
    pool.extend(latches.iter().copied());
    let pick = |rng: &mut SplitMix64, pool: &[AigLit]| -> AigLit {
        let lit = pool[rng.gen_range(0..pool.len())];
        lit.negate_if(rng.gen_bool(0.5))
    };
    for _ in 0..config.gates {
        let x = pick(&mut rng, &pool);
        let y = pick(&mut rng, &pool);
        let gate = b.and(x, y);
        pool.push(gate);
    }
    for &latch in &latches {
        let next = pick(&mut rng, &pool);
        b.set_latch_next(latch, next);
    }
    let bad = pick(&mut rng, &pool);
    b.add_bad(bad);
    b.build()
}

/// Generates a batch of random circuits with increasing seeds.
pub fn random_batch(first_seed: u64, count: usize, config: RandomCircuitConfig) -> Vec<Aig> {
    (0..count)
        .map(|i| random_circuit(first_seed + i as u64, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_are_deterministic_and_valid() {
        for seed in 0..20 {
            let config = RandomCircuitConfig::default();
            let a = random_circuit(seed, config);
            let b = random_circuit(seed, config);
            assert_eq!(a, b);
            a.validate().expect("random circuit must be a valid AIG");
            assert_eq!(a.num_latches(), config.latches);
            assert_eq!(a.num_inputs(), config.inputs);
            assert!(a.property_literal().is_some());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let config = RandomCircuitConfig::default();
        let distinct = (0..10)
            .map(|seed| random_circuit(seed, config))
            .collect::<Vec<_>>();
        let first = &distinct[0];
        assert!(distinct.iter().any(|c| c != first));
    }

    #[test]
    fn batch_has_requested_size() {
        let batch = random_batch(100, 5, RandomCircuitConfig::default());
        assert_eq!(batch.len(), 5);
    }
}
