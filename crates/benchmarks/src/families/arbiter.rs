//! Round-robin arbiters with a mutual-exclusion property.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "arbiter";

/// Builds an `n`-client round-robin arbiter.
///
/// A one-hot token rotates among the clients every cycle; client `i` is granted
/// when it requests while holding the token (plus, in the buggy variant, while
/// the *previous* client holds it). Bad: two clients are granted in the same
/// cycle. The correct arbiter is safe; the buggy one is unsafe as soon as two
/// neighbouring clients request simultaneously.
fn arbiter(n: usize, buggy: bool) -> Aig {
    let mut b = AigBuilder::new();
    let requests = b.inputs(n);
    let token: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(token[i], token[(i + n - 1) % n]);
    }
    let grants: Vec<_> = (0..n)
        .map(|i| {
            let own = b.and(requests[i], token[i]);
            if buggy {
                let stolen = b.and(requests[i], token[(i + n - 1) % n]);
                b.or(own, stolen)
            } else {
                own
            }
        })
        .collect();
    // Bad: some pair of distinct grants is simultaneously high.
    let mut clashes = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let clash = b.and(grants[i], grants[j]);
            clashes.push(clash);
        }
    }
    let bad = b.or_many(&clashes);
    b.add_bad(bad);
    b.build()
}

/// The correct (safe) round-robin arbiter.
pub fn round_robin(n: usize) -> Aig {
    arbiter(n, false)
}

/// The buggy (unsafe) arbiter that also grants on the predecessor's token.
pub fn round_robin_buggy(n: usize) -> Aig {
    arbiter(n, true)
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for n in [3usize, 4, 5, 6, 8, 10, 12, 14] {
        out.push(Benchmark::new(
            format!("arbiter_safe_{n}"),
            FAMILY,
            ExpectedResult::Safe,
            round_robin(n),
        ));
    }
    for n in [3usize, 4, 5, 6, 8] {
        out.push(Benchmark::new(
            format!("arbiter_buggy_unsafe_{n}"),
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(0) },
            round_robin_buggy(n),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "arbiter_safe_q4",
            FAMILY,
            ExpectedResult::Safe,
            round_robin(4),
        ),
        Benchmark::new(
            "arbiter_buggy_unsafe_q4",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(0) },
            round_robin_buggy(4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn correct_arbiter_grants_at_most_one() {
        let aig = round_robin(4);
        let mut sim = Simulator::new(&aig);
        // Everyone requests all the time; still no double grant.
        assert!(!sim.run_reaches_bad(&vec![vec![true; 4]; 16]));
    }

    #[test]
    fn buggy_arbiter_double_grants_under_contention() {
        let aig = round_robin_buggy(4);
        let mut sim = Simulator::new(&aig);
        assert!(sim.run_reaches_bad(&vec![vec![true; 4]; 2]));
        // Without contention (only one requester) the bug stays hidden.
        let mut sim = Simulator::new(&aig);
        let only_first: Vec<Vec<bool>> = (0..16).map(|_| vec![true, false, false, false]).collect();
        assert!(!sim.run_reaches_bad(&only_first));
    }
}
