//! Counter circuits: saturating, wrapping, and input-enabled counters.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "counter";

/// An n-bit counter that increments every cycle until it reaches `sat_at` and
/// then holds its value. The bad states are `counter == bad_at`.
///
/// Reachable counter values are `0..=sat_at`, so the instance is safe iff
/// `bad_at > sat_at`.
pub fn saturating_counter(bits: usize, sat_at: u64, bad_at: u64) -> Aig {
    let mut b = AigBuilder::new();
    let state = b.latches(bits, Some(false));
    let at_sat = b.vec_equals_const(&state, sat_at);
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        let next = b.ite(at_sat, *s, *n);
        b.set_latch_next(*s, next);
    }
    let bad = b.vec_equals_const(&state, bad_at);
    b.add_bad(bad);
    b.add_comment(format!(
        "saturating counter: {bits} bits, saturates at {sat_at}, bad at {bad_at}"
    ));
    b.build()
}

/// An n-bit counter that counts `0, 1, …, period - 1, 0, …`. The bad states are
/// `counter == bad_at`, so the instance is safe iff `bad_at >= period`.
pub fn wrapping_counter(bits: usize, period: u64, bad_at: u64) -> Aig {
    let mut b = AigBuilder::new();
    let state = b.latches(bits, Some(false));
    let at_end = b.vec_equals_const(&state, period - 1);
    let inc = b.vec_increment(&state);
    let zero = b.constant_false();
    for (s, n) in state.iter().zip(&inc) {
        let next = b.ite(at_end, zero, *n);
        b.set_latch_next(*s, next);
    }
    let bad = b.vec_equals_const(&state, bad_at);
    b.add_bad(bad);
    b.build()
}

/// An n-bit counter with an `enable` input; bad when it reaches `bad_at`
/// (always reachable by holding `enable` high, so always unsafe).
pub fn enabled_counter(bits: usize, bad_at: u64) -> Aig {
    let mut b = AigBuilder::new();
    let enable = b.input();
    let state = b.latches(bits, Some(false));
    let inc = b.vec_increment(&state);
    for (s, n) in state.iter().zip(&inc) {
        let next = b.ite(enable, *n, *s);
        b.set_latch_next(*s, next);
    }
    let bad = b.vec_equals_const(&state, bad_at);
    b.add_bad(bad);
    b.build()
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    // Safe saturating counters: the bad value lies above the saturation point.
    for bits in [4usize, 5, 6, 7, 8, 10, 12] {
        let max = (1u64 << bits) - 1;
        out.push(Benchmark::new(
            format!("counter_sat_safe_{bits}"),
            FAMILY,
            ExpectedResult::Safe,
            saturating_counter(bits, max - 2, max),
        ));
    }
    // Unsafe saturating counters: the bad value is below the saturation point.
    for (bits, bad_at) in [(4usize, 6u64), (5, 8), (6, 10), (7, 12)] {
        let max = (1u64 << bits) - 1;
        out.push(Benchmark::new(
            format!("counter_sat_unsafe_{bits}"),
            FAMILY,
            ExpectedResult::Unsafe {
                min_depth: Some(bad_at as usize),
            },
            saturating_counter(bits, max - 1, bad_at),
        ));
    }
    // Safe wrapping counters: the counter wraps before reaching the bad value.
    for bits in [4usize, 5, 6, 7] {
        let period = (1u64 << bits) - 3;
        out.push(Benchmark::new(
            format!("counter_wrap_safe_{bits}"),
            FAMILY,
            ExpectedResult::Safe,
            wrapping_counter(bits, period, period + 1),
        ));
    }
    // Unsafe enabled counters with a controllable counterexample depth.
    for (bits, bad_at) in [(4usize, 5u64), (5, 7), (6, 9), (7, 11)] {
        out.push(Benchmark::new(
            format!("counter_enabled_unsafe_{bits}"),
            FAMILY,
            ExpectedResult::Unsafe {
                min_depth: Some(bad_at as usize),
            },
            enabled_counter(bits, bad_at),
        ));
    }
    out
}

/// A pair of small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "counter_sat_safe_q4",
            FAMILY,
            ExpectedResult::Safe,
            saturating_counter(4, 12, 15),
        ),
        Benchmark::new(
            "counter_enabled_unsafe_q4",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(5) },
            enabled_counter(4, 5),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn saturating_counter_saturates() {
        let aig = saturating_counter(3, 5, 7);
        let mut sim = Simulator::new(&aig);
        for _ in 0..10 {
            assert!(!sim.step(&[]).property_violated());
        }
        // After saturation the state stays at 5 = 101.
        assert_eq!(sim.latch_values(), &[true, false, true]);
    }

    #[test]
    fn wrapping_counter_wraps() {
        let aig = wrapping_counter(3, 5, 6);
        let mut sim = Simulator::new(&aig);
        for _ in 0..12 {
            assert!(!sim.step(&[]).property_violated());
        }
        let aig_bad = wrapping_counter(3, 5, 3);
        let mut sim = Simulator::new(&aig_bad);
        let mut reached = false;
        for _ in 0..12 {
            reached |= sim.step(&[]).property_violated();
        }
        assert!(reached);
    }

    #[test]
    fn enabled_counter_reaches_bad_exactly_when_enabled() {
        let aig = enabled_counter(4, 4);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![false]; 10]));
        let mut sim = Simulator::new(&aig);
        assert!(sim.run_reaches_bad(&vec![vec![true]; 5]));
    }
}
