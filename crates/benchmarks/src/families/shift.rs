//! Shift-register pipelines.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "shift";

/// An `n`-cell shift register whose head is tied to constant 0 and whose cells
/// reset to 0. Bad: the last cell is 1. Safe (no 1 can ever enter).
pub fn zero_shift_register(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let cells = b.latches(n, Some(false));
    let zero = b.constant_false();
    for i in 0..n {
        let prev = if i == 0 { zero } else { cells[i - 1] };
        b.set_latch_next(cells[i], prev);
    }
    b.add_bad(cells[n - 1]);
    b.build()
}

/// An `n`-cell shift register fed by a primary input. Bad: the last cell is 1.
/// Unsafe with a shortest counterexample of exactly `n` steps.
pub fn input_shift_register(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let head = b.input();
    let cells = b.latches(n, Some(false));
    for i in 0..n {
        let prev = if i == 0 { head } else { cells[i - 1] };
        b.set_latch_next(cells[i], prev);
    }
    b.add_bad(cells[n - 1]);
    b.build()
}

/// An `n`-cell shift register fed by an input, with a parity latch that is
/// updated every cycle to the parity of the register's *next* contents. Bad:
/// the parity latch disagrees with the parity of the register — which can never
/// happen, so the instance is safe, but proving it needs relational lemmas
/// between the parity latch and the cells (the largest sizes are the hardest
/// safe instances of the suite).
pub fn parity_shift_register(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let head = b.input();
    let cells = b.latches(n, Some(false));
    for i in 0..n {
        let prev = if i == 0 { head } else { cells[i - 1] };
        b.set_latch_next(cells[i], prev);
    }
    // parity of the cells, updated to track the next contents.
    let parity = b.latch(Some(false));
    let mut next_parity = head;
    for &c in &cells[..n - 1] {
        next_parity = b.xor(next_parity, c);
    }
    b.set_latch_next(parity, next_parity);
    let mut cell_parity = b.constant_false();
    for &c in &cells {
        cell_parity = b.xor(cell_parity, c);
    }
    let mismatch = b.xor(parity, cell_parity);
    b.add_bad(mismatch);
    b.build()
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for n in [6usize, 8, 10, 12, 14, 16, 20, 24] {
        out.push(Benchmark::new(
            format!("shift_zero_safe_{n}"),
            FAMILY,
            ExpectedResult::Safe,
            zero_shift_register(n),
        ));
    }
    for n in [4usize, 6, 8, 10] {
        out.push(Benchmark::new(
            format!("shift_input_unsafe_{n}"),
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(n) },
            input_shift_register(n),
        ));
    }
    for n in [4usize, 6, 8, 10, 12] {
        out.push(Benchmark::new(
            format!("shift_parity_safe_{n}"),
            FAMILY,
            ExpectedResult::Safe,
            parity_shift_register(n),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "shift_zero_safe_q5",
            FAMILY,
            ExpectedResult::Safe,
            zero_shift_register(5),
        ),
        Benchmark::new(
            "shift_input_unsafe_q4",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(4) },
            input_shift_register(4),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn zero_register_never_raises_bad() {
        let aig = zero_shift_register(5);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![]; 20]));
    }

    #[test]
    fn input_register_needs_exactly_n_steps() {
        // The bad state is *reached* after n transitions and *observed* by the
        // simulator one step later.
        let aig = input_shift_register(4);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![true]; 4]));
        let mut sim = Simulator::new(&aig);
        assert!(sim.run_reaches_bad(&vec![vec![true]; 5]));
    }

    #[test]
    fn parity_register_tracks_parity() {
        let aig = parity_shift_register(5);
        let mut sim = Simulator::new(&aig);
        // Drive a pseudo-random bit pattern; the mismatch must never appear.
        let frames: Vec<Vec<bool>> = (0..30).map(|i| vec![(i * 7 + 3) % 5 < 2]).collect();
        assert!(!sim.run_reaches_bad(&frames));
    }
}
