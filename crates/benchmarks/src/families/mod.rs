//! The benchmark circuit families.
//!
//! Each module provides:
//!
//! * one or more circuit generators returning a [`plic3_aig::Aig`],
//! * `instances()` — the parameter sweep contributing to
//!   [`crate::Suite::hwmcc_like`],
//! * `quick()` — one or two small instances for [`crate::Suite::quick`].
//!
//! The families are chosen to mirror the behaviours found in the HWMCC sets:
//! arithmetic state (counters, FIFOs), shift/rotate pipelines (shift registers,
//! token rings), control logic (arbiters, traffic controllers, combination
//! locks), and relational invariants between redundant encodings (gray-code
//! against binary), with both safe and unsafe variants of each.

pub mod arbiter;
pub mod counters;
pub mod fifo;
pub mod gray;
pub mod lock;
pub mod random;
pub mod rings;
pub mod shift;
pub mod traffic;

pub(crate) use crate::{Benchmark, ExpectedResult};

/// Helper shared by the family modules: a little-endian decrementer.
pub(crate) fn vec_decrement(
    builder: &mut plic3_aig::AigBuilder,
    bits: &[plic3_aig::AigLit],
) -> Vec<plic3_aig::AigLit> {
    let mut borrow = builder.constant_true();
    let mut out = Vec::with_capacity(bits.len());
    for &bit in bits {
        out.push(builder.xor(bit, borrow));
        borrow = builder.and(!bit, borrow);
    }
    out
}
