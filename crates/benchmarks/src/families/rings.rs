//! Token rings: one-hot rotation networks.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "ring";

/// An `n`-cell ring around which a single token rotates. Bad: two adjacent
/// cells hold the token simultaneously. Safe from the one-hot initial state.
pub fn token_ring(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        b.set_latch_next(cells[i], cells[(i + n - 1) % n]);
    }
    let mut clashes = Vec::new();
    for i in 0..n {
        let clash = b.and(cells[i], cells[(i + 1) % n]);
        clashes.push(clash);
    }
    let bad = b.or_many(&clashes);
    b.add_bad(bad);
    b.build()
}

/// A token ring with an `inject` input that forces cell 0 to 1 in the next
/// cycle. Bad: two adjacent cells hold a token. Unsafe (inject while the
/// original token sits in cell 1, reachable within a couple of steps).
pub fn token_ring_inject(n: usize) -> Aig {
    let mut b = AigBuilder::new();
    let inject = b.input();
    let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    for i in 0..n {
        let rotated = cells[(i + n - 1) % n];
        let next = if i == 0 {
            b.or(rotated, inject)
        } else {
            rotated
        };
        b.set_latch_next(cells[i], next);
    }
    let mut clashes = Vec::new();
    for i in 0..n {
        let clash = b.and(cells[i], cells[(i + 1) % n]);
        clashes.push(clash);
    }
    let bad = b.or_many(&clashes);
    b.add_bad(bad);
    b.build()
}

/// Two independent `n`-cell rings whose tokens start `offset` cells apart.
/// Bad: both tokens occupy position 0 at the same time — impossible whenever
/// `offset != 0`, since the rings rotate in lockstep.
pub fn two_rings(n: usize, offset: usize) -> Aig {
    assert!(offset < n);
    let mut b = AigBuilder::new();
    let ring_a: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
    let ring_b: Vec<_> = (0..n).map(|i| b.latch(Some(i == offset))).collect();
    for i in 0..n {
        b.set_latch_next(ring_a[i], ring_a[(i + n - 1) % n]);
        b.set_latch_next(ring_b[i], ring_b[(i + n - 1) % n]);
    }
    let bad = b.and(ring_a[0], ring_b[0]);
    b.add_bad(bad);
    b.build()
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for n in [4usize, 6, 8, 10, 12, 16, 20] {
        out.push(Benchmark::new(
            format!("ring_token_safe_{n}"),
            FAMILY,
            ExpectedResult::Safe,
            token_ring(n),
        ));
    }
    for n in [4usize, 6, 8, 10] {
        out.push(Benchmark::new(
            format!("ring_inject_unsafe_{n}"),
            FAMILY,
            ExpectedResult::Unsafe { min_depth: None },
            token_ring_inject(n),
        ));
    }
    for (n, offset) in [(5usize, 2usize), (7, 3), (9, 4), (11, 5), (13, 6)] {
        out.push(Benchmark::new(
            format!("ring_pair_safe_{n}_{offset}"),
            FAMILY,
            ExpectedResult::Safe,
            two_rings(n, offset),
        ));
    }
    for n in [5usize, 7] {
        out.push(Benchmark::new(
            format!("ring_pair_unsafe_{n}"),
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(0) },
            two_rings(n, 0),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "ring_token_safe_q5",
            FAMILY,
            ExpectedResult::Safe,
            token_ring(5),
        ),
        Benchmark::new(
            "ring_inject_unsafe_q5",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: None },
            token_ring_inject(5),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn clean_ring_never_clashes() {
        let aig = token_ring(6);
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![]; 30]));
    }

    #[test]
    fn injection_creates_a_clash() {
        let aig = token_ring_inject(5);
        let mut sim = Simulator::new(&aig);
        // Keep injecting: the injected token and the rotating one collide.
        assert!(sim.run_reaches_bad(&vec![vec![true]; 6]));
        // Without injection it stays safe.
        let mut sim = Simulator::new(&aig);
        assert!(!sim.run_reaches_bad(&vec![vec![false]; 20]));
    }

    #[test]
    fn offset_rings_never_meet_and_aligned_rings_meet_at_once() {
        let safe = two_rings(6, 3);
        let mut sim = Simulator::new(&safe);
        assert!(!sim.run_reaches_bad(&vec![vec![]; 24]));
        let unsafe_ = two_rings(6, 0);
        let mut sim = Simulator::new(&unsafe_);
        assert!(sim.run_reaches_bad(&vec![vec![]; 1]));
    }
}
