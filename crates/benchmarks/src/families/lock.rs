//! Combination locks: deep but narrow counterexamples.

use super::{Benchmark, ExpectedResult};
use plic3_aig::{Aig, AigBuilder};

const FAMILY: &str = "lock";

/// A combination lock with `stages` stages and a `digit_bits`-bit input digit.
///
/// The lock advances one stage per cycle when the input digit equals the
/// stage's secret digit and falls back to stage 0 otherwise. The bad state is
/// "all stages passed". With a reachable secret the shortest counterexample has
/// exactly `stages` steps; the `impossible_stage` variant requires a digit
/// value with a bit forced by construction to be unreachable, making it safe.
fn lock(stages: usize, digit_bits: usize, secret_seed: u64, impossible_stage: bool) -> Aig {
    let mut b = AigBuilder::new();
    let digit = b.inputs(digit_bits);
    // One-hot progress register, stage 0 hot initially.
    let progress: Vec<_> = (0..=stages).map(|i| b.latch(Some(i == 0))).collect();
    // Secret digit per stage, derived deterministically from the seed.
    let mut matches = Vec::new();
    for stage in 0..stages {
        let secret = (secret_seed
            .wrapping_mul(0x9e37_79b9)
            .rotate_left(stage as u32 * 7)
            >> 3)
            & ((1 << digit_bits) - 1);
        let mut m = b.vec_equals_const(&digit, secret);
        if impossible_stage && stage == stages - 1 {
            // The final stage additionally requires the digit to differ from
            // itself — unsatisfiable, so the lock can never fully open.
            let also_not = b.vec_equals_const(&digit, secret ^ 1);
            m = b.and(m, also_not);
        }
        matches.push(m);
    }
    for stage in 0..=stages {
        let next = if stage == 0 {
            // Stage 0 becomes hot again whenever the current stage's digit is
            // wrong (or we are already unlocked and stay there — handled below).
            let mut wrongs = Vec::new();
            for s in 0..stages {
                let wrong = b.and(progress[s], !matches[s]);
                wrongs.push(wrong);
            }
            let fallback = b.or_many(&wrongs);
            b.or(fallback, progress[stages])
        } else {
            b.and(progress[stage - 1], matches[stage - 1])
        };
        let hold_unlocked = if stage == stages {
            b.or(next, progress[stages])
        } else {
            next
        };
        b.set_latch_next(progress[stage], hold_unlocked);
    }
    b.add_bad(progress[stages]);
    b.build()
}

/// A lock whose secret can be entered: unsafe with a `stages`-step
/// counterexample.
pub fn openable_lock(stages: usize, digit_bits: usize, seed: u64) -> Aig {
    lock(stages, digit_bits, seed, false)
}

/// A lock whose final stage is impossible to pass: safe.
pub fn unopenable_lock(stages: usize, digit_bits: usize, seed: u64) -> Aig {
    lock(stages, digit_bits, seed, true)
}

/// The parameter sweep for the full suite.
pub fn instances() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for (stages, bits, seed) in [
        (2usize, 2usize, 1u64),
        (3, 2, 2),
        (3, 3, 3),
        (4, 3, 4),
        (5, 3, 5),
        (6, 4, 6),
        (8, 4, 13),
        (10, 3, 14),
    ] {
        out.push(Benchmark::new(
            format!("lock_open_unsafe_{stages}_{bits}_{seed}"),
            FAMILY,
            ExpectedResult::Unsafe {
                min_depth: Some(stages),
            },
            openable_lock(stages, bits, seed),
        ));
    }
    for (stages, bits, seed) in [(3usize, 2usize, 7u64), (4, 3, 8), (5, 3, 9), (6, 4, 10)] {
        out.push(Benchmark::new(
            format!("lock_closed_safe_{stages}_{bits}_{seed}"),
            FAMILY,
            ExpectedResult::Safe,
            unopenable_lock(stages, bits, seed),
        ));
    }
    out
}

/// Small instances for the quick suite.
pub fn quick() -> Vec<Benchmark> {
    vec![
        Benchmark::new(
            "lock_open_unsafe_q",
            FAMILY,
            ExpectedResult::Unsafe { min_depth: Some(3) },
            openable_lock(3, 2, 11),
        ),
        Benchmark::new(
            "lock_closed_safe_q",
            FAMILY,
            ExpectedResult::Safe,
            unopenable_lock(3, 2, 12),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_bmc::Bmc;
    use plic3_ts::TransitionSystem;

    #[test]
    fn openable_lock_opens_at_expected_depth() {
        let aig = openable_lock(3, 2, 2);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        assert!(bmc.check_depth(2).is_none());
        let trace = bmc.check_depth(3).expect("opens in 3 steps");
        assert!(trace.replay_on_aig(&ts, &aig));
    }

    #[test]
    fn unopenable_lock_stays_closed() {
        let aig = unopenable_lock(3, 2, 7);
        let ts = TransitionSystem::from_aig(&aig);
        let mut bmc = Bmc::new(&ts);
        for depth in 0..8 {
            assert!(bmc.check_depth(depth).is_none(), "opened at depth {depth}");
        }
    }
}
