//! Synthetic HWMCC-style benchmark circuits with known safe/unsafe status.
//!
//! The evaluation of *Predicting Lemmas in Generalization of IC3* (DAC 2024)
//! uses the HWMCC'15 and HWMCC'17 AIGER sets (730 circuits). Those files are
//! not redistributable here, so this crate provides the stand-in workload: a
//! collection of parameterized circuit families, generated through
//! [`plic3_aig::AigBuilder`] and fed to the model checkers through exactly the
//! same AIG → transition-system pipeline a file from disk would take.
//!
//! Every [`Benchmark`] carries its ground-truth verdict so that the harness and
//! the integration tests can detect wrong answers, and (for unsafe instances)
//! the depth of the shortest counterexample when it is known by construction.
//!
//! # Example
//!
//! ```
//! use plic3_benchmarks::Suite;
//! let suite = Suite::quick();
//! assert!(suite.len() > 5);
//! for bench in suite.iter() {
//!     assert!(bench.aig().validate().is_ok());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
mod suite;

pub use suite::{Benchmark, ExpectedResult, Suite};
