//! The experiment harness: reproduces every table and figure of
//! *Predicting Lemmas in Generalization of IC3* (DAC 2024).
//!
//! The paper's evaluation consists of:
//!
//! * **Table 1** — cases solved (total / safe / unsafe) per configuration,
//! * **Table 2** — average success rates `SR_lp`, `SR_fp`, `SR_adv` of the
//!   prediction-enabled configurations,
//! * **Figure 2** — cases solved within a given time limit, per configuration,
//! * **Figure 3** — per-case runtime scatter of each base configuration against
//!   its prediction-enabled counterpart,
//! * **Figure 4** — per-case runtime ratio (base / prediction) against the
//!   success rate of avoiding dropped variables `SR_adv`, with the cumulative
//!   number of improved cases.
//!
//! [`run_experiment`] executes the benchmark [`Suite`](plic3_benchmarks::Suite)
//! under all six configurations of the paper ([`Configuration`]) with per-case
//! resource budgets, and the `table1`/`table2`/`fig2`/`fig3`/`fig4` modules turn
//! the collected [`ExperimentData`] into the corresponding artifact (ASCII
//! rendering plus CSV rows). The `plic3-exp` binary drives the whole thing.
//!
//! # Example
//!
//! ```
//! use plic3_benchmarks::Suite;
//! use plic3_harness::{run_experiment, table1, Configuration, RunnerConfig};
//! use std::time::Duration;
//!
//! let suite = Suite::quick().filter(|b| b.family() == "counter");
//! let runner = RunnerConfig {
//!     timeout: Duration::from_secs(2),
//!     ..RunnerConfig::default()
//! };
//! let data = run_experiment(&suite, &[Configuration::Ric3, Configuration::Ric3Pl], &runner);
//! let table = table1::build(&data);
//! assert_eq!(table.rows.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod portfolio_run;
pub mod report;
mod runner;
pub mod table1;
pub mod table2;

pub use portfolio_run::{
    experiment_thread_budget, run_portfolio_case, run_portfolio_experiment, PortfolioCaseResult,
    PortfolioData, ThreadBudget,
};
pub use runner::{
    run_case, run_experiment, run_experiment_with_workers, CaseResult, Configuration,
    ExperimentData, RunnerConfig, Verdict,
};
