//! Figure 2 — cases solved within a given time limit, per configuration.

use crate::report::TextTable;
use crate::{Configuration, ExperimentData};
use std::time::Duration;

/// The solved-within-limit curve of one configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// The configuration the series describes.
    pub configuration: Configuration,
    /// `(time limit, number of cases solved within it)`, ordered by limit.
    pub points: Vec<(Duration, usize)>,
}

/// The data behind Figure 2.
#[derive(Clone, Debug, Default)]
pub struct Fig2 {
    /// The time limits at which the curves are sampled.
    pub limits: Vec<Duration>,
    /// One series per configuration.
    pub series: Vec<Series>,
}

/// Default sampling grid: a geometric sweep from 1 ms up to the per-case budget.
pub fn default_limits(timeout: Duration) -> Vec<Duration> {
    let mut limits = Vec::new();
    let mut t = Duration::from_millis(1);
    while t < timeout {
        limits.push(t);
        t = Duration::from_secs_f64(t.as_secs_f64() * 2.0);
    }
    limits.push(timeout);
    limits
}

/// Builds the Figure 2 data by counting, for each configuration and each time
/// limit, the cases whose runtime does not exceed the limit (only solved cases
/// count).
pub fn build(data: &ExperimentData, limits: &[Duration]) -> Fig2 {
    let series = data
        .configurations()
        .into_iter()
        .map(|configuration| {
            let results = data.for_configuration(configuration);
            let points = limits
                .iter()
                .map(|&limit| {
                    let solved = results
                        .iter()
                        .filter(|r| r.verdict.solved() && r.runtime <= limit)
                        .count();
                    (limit, solved)
                })
                .collect();
            Series {
                configuration,
                points,
            }
        })
        .collect();
    Fig2 {
        limits: limits.to_vec(),
        series,
    }
}

/// Renders the figure data as a table: one row per time limit, one column per
/// configuration.
pub fn render(fig: &Fig2) -> String {
    let mut header = vec!["time limit (s)".to_string()];
    header.extend(
        fig.series
            .iter()
            .map(|s| s.configuration.label().to_string()),
    );
    let mut text = TextTable::new(header);
    for (i, limit) in fig.limits.iter().enumerate() {
        let mut row = vec![format!("{:.3}", limit.as_secs_f64())];
        for series in &fig.series {
            row.push(series.points[i].1.to_string());
        }
        text.add_row(row);
    }
    format!(
        "Figure 2: cases solved within a time limit, per configuration\n{}",
        text.render()
    )
}

/// Renders the figure data as CSV.
pub fn to_csv(fig: &Fig2) -> String {
    let mut header = vec!["time_limit_s".to_string()];
    header.extend(
        fig.series
            .iter()
            .map(|s| s.configuration.label().to_string()),
    );
    let mut text = TextTable::new(header);
    for (i, limit) in fig.limits.iter().enumerate() {
        let mut row = vec![format!("{}", limit.as_secs_f64())];
        for series in &fig.series {
            row.push(series.points[i].1.to_string());
        }
        text.add_row(row);
    }
    text.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, RunnerConfig};
    use plic3_benchmarks::Suite;

    #[test]
    fn curves_are_monotone_and_bounded() {
        let suite = Suite::quick().filter(|b| matches!(b.family(), "ring" | "shift"));
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            ..RunnerConfig::default()
        };
        let data = run_experiment(
            &suite,
            &[Configuration::Ric3, Configuration::Ric3Pl],
            &runner,
        );
        let limits = default_limits(runner.timeout);
        let fig = build(&data, &limits);
        assert_eq!(fig.series.len(), 2);
        for series in &fig.series {
            let counts: Vec<usize> = series.points.iter().map(|(_, c)| *c).collect();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]), "not monotone");
            assert!(*counts.last().expect("non-empty") <= suite.len());
            // Everything in the quick suite solves within the budget.
            assert_eq!(*counts.last().expect("non-empty"), suite.len());
        }
        let text = render(&fig);
        assert!(text.contains("Figure 2"));
        assert!(to_csv(&fig).starts_with("time_limit_s,"));
    }

    #[test]
    fn default_limits_are_geometric_and_end_at_timeout() {
        let limits = default_limits(Duration::from_secs(1));
        assert_eq!(*limits.last().expect("non-empty"), Duration::from_secs(1));
        assert!(limits.len() > 5);
        assert!(limits.windows(2).all(|w| w[0] < w[1]));
    }
}
