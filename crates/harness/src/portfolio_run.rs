//! Suite execution under the in-process portfolio engine
//! (`plic3-exp --engine portfolio`).
//!
//! Where [`crate::run_experiment`] races *cases* (benchmark × configuration)
//! against each other on a thread pool, this module races *strategies inside
//! one case*: every benchmark is handed to a [`Portfolio`] that runs BMC,
//! k-induction and several IC3 variants on the same instance, first
//! conclusive verdict wins. The two layers nest through a thread-budget
//! split — see [`ThreadBudget`].

use crate::runner::{panic_message, RunnerConfig, Verdict, Watchdog};
use plic3::{ResourceBudget, StopFlag, UnknownReason};
use plic3_benchmarks::{Benchmark, ExpectedResult, Suite};
use plic3_check::{CertCheckError, CheckOptions};
use plic3_portfolio::{
    default_workers, verify_safety_proof, ExchangeStats, Portfolio, PortfolioConfig,
    PortfolioResult, WorkerReport,
};
use plic3_prep::{Preprocessor, Reconstruction};
use plic3_ts::TransitionSystem;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// How a total thread budget (`plic3-exp --jobs`) is split between concurrent
/// cases and the workers racing inside each case.
///
/// The portfolio engine wants [`default_workers`] threads per case; the split
/// gives each case `min(workers_per_case, budget)` threads and runs
/// `max(1, budget / workers_per_case)` cases concurrently, so the product
/// never exceeds the budget (beyond the unavoidable minimum of one case with
/// one thread).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadBudget {
    /// Worker threads inside each portfolio race.
    pub workers_per_case: usize,
    /// Cases running concurrently.
    pub concurrent_cases: usize,
}

impl ThreadBudget {
    /// Splits `total` threads for portfolios of `portfolio_size` workers.
    pub fn split(total: usize, portfolio_size: usize) -> ThreadBudget {
        let total = total.max(1);
        let portfolio_size = portfolio_size.max(1);
        ThreadBudget {
            workers_per_case: portfolio_size.min(total),
            concurrent_cases: (total / portfolio_size).max(1),
        }
    }
}

/// The outcome of one benchmark under the portfolio engine.
#[derive(Clone, Debug)]
pub struct PortfolioCaseResult {
    /// Benchmark instance name.
    pub benchmark: String,
    /// Benchmark family.
    pub family: String,
    /// Ground-truth expectation.
    pub expected: ExpectedResult,
    /// The verdict reached.
    pub verdict: Verdict,
    /// Whether the verdict matches the ground truth (`true` for `Unknown`).
    pub correct: bool,
    /// Whether the winning proof / counterexample passed independent checking
    /// (`Unsafe` traces replay on the **original**, pre-preprocessing
    /// circuit).
    pub verified: bool,
    /// Wall-clock runtime of the case, *including* preprocessing time.
    pub runtime: Duration,
    /// Time spent in the preprocessing pipeline.
    pub prep_time: Duration,
    /// Label of the winning worker (`None` for `Unknown`).
    pub winner: Option<String>,
    /// Per-worker reports of the race (status, runtime, engine statistics).
    pub workers: Vec<WorkerReport>,
    /// Lemma-exchange traffic of the race.
    pub exchange: ExchangeStats,
    /// Foreign lemmas adopted across the IC3 workers (after re-checking).
    pub lemmas_imported: u64,
    /// Foreign lemmas rejected by the re-checks.
    pub lemmas_rejected: u64,
    /// Worker slots that panicked at least once during the race (each crash
    /// was contained by the portfolio supervisor).
    pub worker_crashes: usize,
    /// Worker slots the supervisor restarted under the conservative fallback
    /// configuration after a first panic.
    pub worker_restarts: usize,
    /// Stringified panic payload when the whole case crashed *outside* the
    /// portfolio's own containment (e.g. during preprocessing); `None`
    /// otherwise.
    pub crash: Option<String>,
}

/// All results of a portfolio experiment, in suite order.
#[derive(Clone, Debug, Default)]
pub struct PortfolioData {
    /// One entry per benchmark.
    pub results: Vec<PortfolioCaseResult>,
    /// The thread-budget split that was used.
    pub budget: Option<ThreadBudget>,
}

impl PortfolioData {
    /// Number of solved cases (safe or unsafe).
    pub fn solved(&self) -> usize {
        self.results.iter().filter(|r| r.verdict.solved()).count()
    }

    /// Number of wrong verdicts (should always be zero).
    pub fn wrong_verdicts(&self) -> usize {
        self.results.iter().filter(|r| !r.correct).count()
    }

    /// Number of solved cases whose proof/trace failed re-checking (should
    /// always be zero).
    pub fn unverified(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.verdict.solved() && !r.verified)
            .count()
    }

    /// Number of cases that ended as [`Verdict::MemOut`].
    pub fn memouts(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.verdict == Verdict::MemOut)
            .count()
    }

    /// Number of cases that crashed outside the portfolio's containment
    /// ([`Verdict::Crashed`]).
    pub fn crashed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.verdict == Verdict::Crashed)
            .count()
    }

    /// Total worker crashes contained by the portfolio supervisors, with the
    /// number of supervised restarts, summed over all cases.
    pub fn worker_crash_totals(&self) -> (usize, usize) {
        self.results.iter().fold((0, 0), |(c, r), case| {
            (c + case.worker_crashes, r + case.worker_restarts)
        })
    }

    /// How often each worker won, as `(label, wins)` sorted by wins.
    pub fn winner_histogram(&self) -> Vec<(String, usize)> {
        let mut wins: Vec<(String, usize)> = Vec::new();
        for result in &self.results {
            let Some(winner) = &result.winner else {
                continue;
            };
            match wins.iter_mut().find(|(label, _)| label == winner) {
                Some((_, count)) => *count += 1,
                None => wins.push((winner.clone(), 1)),
            }
        }
        wins.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        wins
    }

    /// Total lemma-exchange traffic across all cases.
    pub fn exchange_totals(&self) -> (ExchangeStats, u64, u64) {
        let mut totals = ExchangeStats::default();
        let (mut imported, mut rejected) = (0, 0);
        for r in &self.results {
            totals.published += r.exchange.published;
            totals.dropped += r.exchange.dropped;
            imported += r.lemmas_imported;
            rejected += r.lemmas_rejected;
        }
        (totals, imported, rejected)
    }
}

/// Runs one benchmark under the portfolio engine with an externally owned
/// cancellation flag (armed by the caller's watchdog) and the given number of
/// worker threads.
pub fn run_portfolio_case(
    benchmark: &Benchmark,
    runner: &RunnerConfig,
    workers_per_case: usize,
    stop: StopFlag,
) -> PortfolioCaseResult {
    let started = Instant::now();
    // One fresh memory budget per case; the portfolio splits it into
    // per-worker sub-budgets.
    let budget = runner
        .max_memory
        .map_or_else(ResourceBudget::unlimited, ResourceBudget::with_limit);
    // Preprocessing runs inside the measured window, exactly as in the
    // single-engine `run_case`, under the same stop flag / budget / fault
    // plan; the witness map replays `Unsafe` traces on the original circuit.
    let prep = runner.preprocess.then(|| {
        Preprocessor::default().run_under(benchmark.aig(), &stop, &budget, &runner.faults)
    });
    let ts = match &prep {
        Some(p) => TransitionSystem::from_aig(&p.aig),
        None => benchmark.ts(),
    };
    let prep_time = prep.as_ref().map_or(Duration::ZERO, |p| p.stats.prep_time);
    // Kept for the certificate check below: the portfolio takes ownership of
    // `stop`, and the checker must observe the same watchdog.
    let case_stop = stop.clone();
    let mut config = PortfolioConfig {
        threads: workers_per_case,
        stop,
        budget,
        faults: runner.faults.clone(),
        // With --certify the portfolio additionally vets every Safe claim at
        // winner-claim time, so a poisoned proof is demoted to a worker crash
        // instead of ever becoming the race verdict.
        certify: runner.certify,
        ..PortfolioConfig::default()
    };
    config.limits.max_time = Some(runner.timeout.saturating_sub(prep_time));
    config.limits.max_conflicts = runner.max_conflicts;
    let mut portfolio = Portfolio::new(ts, config);
    let outcome = portfolio.check();
    let runtime = started.elapsed();
    let (verdict, verified) = match &outcome.result {
        PortfolioResult::Safe(proof) => {
            let mut verified = verify_safety_proof(portfolio.ts(), proof).is_ok();
            // The stronger --certify check replays certificate-backed proofs
            // on the original, pre-preprocessing circuit (k-induction winners
            // have no certificate; they are fully re-derived above). A check
            // the watchdog interrupts stays unproven, not failed.
            if verified && runner.certify {
                if let Some(cert) = outcome.result.certificate() {
                    let identity = Reconstruction::identity(
                        benchmark.aig().num_inputs(),
                        benchmark.aig().num_latches(),
                    );
                    let recon = prep.as_ref().map_or(&identity, |p| &p.reconstruction);
                    let options = CheckOptions {
                        stop: Some(case_stop.clone()),
                        drat: false,
                    };
                    verified = match plic3_check::check_certificate_on_original(
                        benchmark.aig(),
                        recon,
                        portfolio.ts(),
                        cert,
                        &options,
                    ) {
                        Ok(_) | Err(CertCheckError::Interrupted) => true,
                        Err(CertCheckError::Invalid(_)) => false,
                    };
                }
            }
            (Verdict::Safe, verified)
        }
        PortfolioResult::Unsafe(trace) => {
            let replays = match &prep {
                Some(p) => p.replay_on_original(portfolio.ts(), trace),
                None => plic3::verify_trace(portfolio.ts(), benchmark.aig(), trace),
            };
            (Verdict::Unsafe, replays)
        }
        PortfolioResult::Unknown(UnknownReason::MemoryOut) => (Verdict::MemOut, true),
        PortfolioResult::Unknown(_) => (Verdict::Unknown, true),
    };
    let correct = matches!(
        (verdict, benchmark.expected()),
        (Verdict::Safe, ExpectedResult::Safe)
            | (Verdict::Unsafe, ExpectedResult::Unsafe { .. })
            | (Verdict::Unknown | Verdict::MemOut | Verdict::Crashed, _)
    );
    PortfolioCaseResult {
        benchmark: benchmark.name().to_string(),
        family: benchmark.family().to_string(),
        expected: benchmark.expected(),
        verdict,
        correct,
        verified,
        runtime,
        prep_time,
        winner: outcome.winner_label().map(str::to_string),
        exchange: outcome.exchange,
        lemmas_imported: outcome.lemmas_imported(),
        lemmas_rejected: outcome.lemmas_rejected(),
        worker_crashes: outcome.worker_crashes(),
        worker_restarts: outcome.worker_restarts(),
        workers: outcome.workers,
        crash: None,
    }
}

/// The synthetic result of a portfolio case that panicked outside the
/// portfolio's own containment (e.g. in preprocessing): contained here, at
/// the case level, so the rest of the suite keeps running.
fn crashed_portfolio_case(
    benchmark: &Benchmark,
    payload: String,
    runtime: Duration,
) -> PortfolioCaseResult {
    PortfolioCaseResult {
        benchmark: benchmark.name().to_string(),
        family: benchmark.family().to_string(),
        expected: benchmark.expected(),
        verdict: Verdict::Crashed,
        correct: true,
        verified: true,
        runtime,
        prep_time: Duration::ZERO,
        winner: None,
        workers: Vec::new(),
        exchange: ExchangeStats::default(),
        lemmas_imported: 0,
        lemmas_rejected: 0,
        worker_crashes: 0,
        worker_restarts: 0,
        crash: Some(payload),
    }
}

/// The thread-budget split [`run_portfolio_experiment`] will use for this
/// runner configuration (exposed so callers can report it without
/// re-deriving it).
pub fn experiment_thread_budget(runner: &RunnerConfig) -> ThreadBudget {
    ThreadBudget::split(runner.effective_workers(), default_workers(0).len())
}

/// Runs the whole `suite` under the portfolio engine.
///
/// [`RunnerConfig::effective_workers`] is the *total* thread budget; it is
/// split by [`experiment_thread_budget`] between concurrent cases and the
/// workers racing inside each case. Results come back in suite order
/// regardless of scheduling, and — because every worker is sound — the
/// *verdicts* are scheduling-independent too (the winner labels and runtimes
/// are not).
pub fn run_portfolio_experiment(suite: &Suite, runner: &RunnerConfig) -> PortfolioData {
    let budget = experiment_thread_budget(runner);
    let benchmarks: Vec<&Benchmark> = suite.iter().collect();
    let total = benchmarks.len();
    let mut results: Vec<Option<PortfolioCaseResult>> = Vec::new();
    results.resize_with(total, || None);
    let next_case = AtomicUsize::new(0);
    let watchdog = Watchdog::new();
    let (tx, rx) = mpsc::channel::<(usize, PortfolioCaseResult)>();
    thread::scope(|scope| {
        let watchdog = &watchdog;
        let benchmarks = &benchmarks;
        let next_case = &next_case;
        scope.spawn(move || watchdog.run());
        for _ in 0..budget.concurrent_cases.min(total.max(1)) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let index = next_case.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    return;
                }
                let stop = StopFlag::new();
                let token = watchdog.arm(Instant::now() + runner.timeout, stop.clone());
                let case_started = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_portfolio_case(benchmarks[index], runner, budget.workers_per_case, stop)
                }))
                .unwrap_or_else(|payload| {
                    crashed_portfolio_case(
                        benchmarks[index],
                        panic_message(payload),
                        case_started.elapsed(),
                    )
                });
                watchdog.disarm(token);
                if tx.send((index, result)).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            results[index] = Some(result);
        }
        watchdog.shutdown();
    });
    PortfolioData {
        results: results
            .into_iter()
            .map(|result| result.expect("every case reports exactly once"))
            .collect(),
        budget: Some(budget),
    }
}

/// Renders the portfolio results as an ASCII table plus a summary block.
pub fn render(data: &PortfolioData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>9} {:>14} {:>7} {:>7}",
        "benchmark", "verdict", "time", "winner", "shared", "rej"
    );
    for r in &data.results {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>8.3}s {:>14} {:>7} {:>7}",
            r.benchmark,
            r.verdict.to_string(),
            r.runtime.as_secs_f64(),
            r.winner.as_deref().unwrap_or("-"),
            r.lemmas_imported,
            r.lemmas_rejected,
        );
    }
    let (exchange, imported, rejected) = data.exchange_totals();
    let _ = writeln!(
        out,
        "\nsolved {}/{} (wrong verdicts: {}, unverified: {})",
        data.solved(),
        data.results.len(),
        data.wrong_verdicts(),
        data.unverified()
    );
    let (worker_crashes, worker_restarts) = data.worker_crash_totals();
    let _ = writeln!(
        out,
        "failures: {} memout, {} crashed cases, {} worker crashes ({} supervised restarts)",
        data.memouts(),
        data.crashed(),
        worker_crashes,
        worker_restarts
    );
    if let Some(budget) = data.budget {
        let _ = writeln!(
            out,
            "thread budget: {} workers/case x {} concurrent cases",
            budget.workers_per_case, budget.concurrent_cases
        );
    }
    let _ = writeln!(
        out,
        "lemma exchange: {} published, {} dropped, {} adopted, {} rejected",
        exchange.published, exchange.dropped, imported, rejected
    );
    let wins = data.winner_histogram();
    if !wins.is_empty() {
        let rendered: Vec<String> = wins
            .iter()
            .map(|(label, count)| format!("{label}={count}"))
            .collect();
        let _ = writeln!(out, "wins: {}", rendered.join(" "));
    }
    out
}

/// Renders the portfolio results as CSV (one row per benchmark).
pub fn to_csv(data: &PortfolioData) -> String {
    let mut out = String::from(
        "benchmark,family,verdict,correct,verified,runtime_s,prep_s,winner,\
         lemmas_imported,lemmas_rejected,worker_crashes,worker_restarts\n",
    );
    for r in &data.results {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{:.6},{:.6},{},{},{},{},{}",
            r.benchmark,
            r.family,
            r.verdict,
            r.correct,
            r.verified,
            r.runtime.as_secs_f64(),
            r.prep_time.as_secs_f64(),
            r.winner.as_deref().unwrap_or(""),
            r.lemmas_imported,
            r.lemmas_rejected,
            r.worker_crashes,
            r.worker_restarts,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runner() -> RunnerConfig {
        RunnerConfig {
            timeout: Duration::from_secs(5),
            max_conflicts: Some(200_000),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn thread_budget_split_never_exceeds_the_total() {
        for (total, size, per_case, cases) in [
            (1, 6, 1, 1),
            (4, 6, 4, 1),
            (6, 6, 6, 1),
            (12, 6, 6, 2),
            (16, 6, 6, 2),
            (24, 6, 6, 4),
            (5, 1, 1, 5),
        ] {
            let budget = ThreadBudget::split(total, size);
            assert_eq!(budget.workers_per_case, per_case, "total={total}");
            assert_eq!(budget.concurrent_cases, cases, "total={total}");
            if total >= size {
                assert!(budget.workers_per_case * budget.concurrent_cases <= total);
            }
        }
    }

    #[test]
    fn portfolio_experiment_matches_ground_truth_on_a_small_suite() {
        let suite = Suite::quick().filter(|b| matches!(b.family(), "counter" | "ring"));
        assert!(!suite.is_empty());
        let data = run_portfolio_experiment(&suite, &tiny_runner());
        assert_eq!(data.results.len(), suite.len());
        assert_eq!(data.wrong_verdicts(), 0);
        assert_eq!(data.unverified(), 0);
        assert_eq!(data.solved(), suite.len(), "budget is ample for these");
        // Results come back in suite order.
        let names: Vec<&str> = data.results.iter().map(|r| r.benchmark.as_str()).collect();
        let expected: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(names, expected);
        // The rendering covers every case and the summary block.
        let rendered = render(&data);
        assert!(rendered.contains("solved"));
        assert!(rendered.contains("lemma exchange"));
        let csv = to_csv(&data);
        assert_eq!(csv.lines().count(), suite.len() + 1);
    }

    #[test]
    fn expired_watchdog_budget_yields_unknowns_not_wrong_verdicts() {
        let suite = Suite::quick().filter(|b| b.family() == "fifo");
        assert!(!suite.is_empty());
        let runner = RunnerConfig {
            timeout: Duration::from_millis(1),
            max_conflicts: None,
            ..RunnerConfig::default()
        };
        let started = Instant::now();
        let data = run_portfolio_experiment(&suite, &runner);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "cancellation failed to bound the run"
        );
        assert_eq!(data.wrong_verdicts(), 0);
    }
}
