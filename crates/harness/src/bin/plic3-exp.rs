//! `plic3-exp` — command-line driver regenerating the tables and figures of
//! *Predicting Lemmas in Generalization of IC3* (DAC 2024).
//!
//! ```text
//! plic3-exp [COMMAND] [OPTIONS]
//!
//! Commands:
//!   all       run the experiment and print every table/figure (default)
//!   table1    Table 1 — summary of results
//!   table2    Table 2 — average success rates
//!   fig2      Figure 2 — solved cases vs time limit
//!   fig3      Figure 3 — runtime scatter base vs prediction
//!   fig4      Figure 4 — runtime ratio vs SR_adv
//!   ablation  ablation over the design knobs
//!
//! Options:
//!   --full            run the full HWMCC-style suite (default: quick suite)
//!   --timeout <secs>  per-case wall-clock budget (default: 10)
//!   --jobs <n>        total thread budget (default: all cores)
//!   --engine <e>      `single` (default) runs the paper's six configurations;
//!                     `portfolio` races BMC, k-induction and four IC3
//!                     variants *inside* each case, splitting the --jobs
//!                     budget between concurrent cases and in-case workers
//!   --no-preprocess   skip the AIG preprocessing pipeline (default: on)
//!   --memory <MiB>    per-case memory budget; exceeding it ends the case as
//!                     `memout`, never as an allocator abort (default: none)
//!   --certify         check every Safe certificate on the original,
//!                     pre-preprocessing circuit (and, under
//!                     `--engine portfolio`, vet every worker's proof before
//!                     it may win the race); check time is reported
//!   --csv <dir>       also write CSV files into <dir>
//!
//! Exit codes: 0 success, 1 wrong verdicts, 2 usage error, 3 contained
//! crashes (cases that panicked but were isolated), 4 certificate-check
//! failures (a solved case whose proof artifact failed independent
//! verification). When several apply, the gravest wins: 1 over 4 over 3.
//! ```

use plic3_benchmarks::Suite;
use plic3_harness::{
    ablation, fig2, fig3, fig4, portfolio_run, run_experiment, run_portfolio_experiment, table1,
    table2, Configuration, RunnerConfig,
};
use std::path::PathBuf;
use std::time::Duration;

struct Options {
    command: String,
    full: bool,
    timeout: Duration,
    jobs: usize,
    portfolio: bool,
    preprocess: bool,
    max_memory: Option<u64>,
    certify: bool,
    csv_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        command: "all".to_string(),
        full: false,
        timeout: Duration::from_secs(10),
        jobs: 0,
        portfolio: false,
        preprocess: true,
        max_memory: None,
        certify: false,
        csv_dir: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    if let Some(first) = args.peek() {
        if !first.starts_with("--") {
            options.command = args.next().expect("peeked");
        }
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => options.full = true,
            "--timeout" => {
                let value = args.next().ok_or("--timeout needs a value")?;
                let secs: f64 = value.parse().map_err(|_| "invalid --timeout value")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("invalid --timeout value".to_string());
                }
                options.timeout = Duration::from_secs_f64(secs);
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs needs a value")?;
                options.jobs = value.parse().map_err(|_| "invalid --jobs value")?;
            }
            "--engine" => {
                let value = args.next().ok_or("--engine needs a value")?;
                options.portfolio = match value.as_str() {
                    "single" => false,
                    "portfolio" => true,
                    other => {
                        return Err(format!(
                            "unknown engine '{other}' (expected single or portfolio)"
                        ))
                    }
                };
            }
            "--no-preprocess" => options.preprocess = false,
            "--certify" => options.certify = true,
            "--memory" => {
                let value = args.next().ok_or("--memory needs a value (MiB)")?;
                let mib: u64 = value.parse().map_err(|_| "invalid --memory value")?;
                if mib == 0 {
                    return Err("--memory must be positive".to_string());
                }
                options.max_memory = Some(mib * 1024 * 1024);
            }
            "--csv" => {
                let value = args.next().ok_or("--csv needs a directory")?;
                options.csv_dir = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    const COMMANDS: [&str; 7] = [
        "all", "table1", "table2", "fig2", "fig3", "fig4", "ablation",
    ];
    if !COMMANDS.contains(&options.command.as_str()) {
        return Err(format!(
            "unknown command '{}' (expected one of {})",
            options.command,
            COMMANDS.join(", ")
        ));
    }
    if options.portfolio && options.command != "all" {
        return Err(format!(
            "--engine portfolio races strategies instead of comparing the \
             paper's configurations; the '{}' artifact does not apply to it",
            options.command
        ));
    }
    Ok(options)
}

fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    if let Some(dir) = dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {dir:?}: {e}");
            return;
        }
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("warning: cannot write {path:?}: {e}");
        } else {
            eprintln!("wrote {path:?}");
        }
    }
}

/// One line per suite describing what the preprocessing pipeline achieves,
/// so reports account for the cost and the effect of the simplification.
///
/// This is a dedicated (sequential) pass over the suite rather than an
/// aggregate of the runner's per-case results: the size statistics are not
/// carried through `CaseResult`, and the pipeline costs tens of microseconds
/// per circuit, so one extra pass is cheaper than widening that struct.
fn print_preprocessing_summary(suite: &Suite) {
    let mut latches = (0usize, 0usize);
    let mut ands = (0usize, 0usize);
    let mut total = Duration::ZERO;
    for bench in suite.iter() {
        let stats = plic3_prep::preprocess(bench.aig()).stats;
        latches.0 += stats.latches_before;
        latches.1 += stats.latches_after;
        ands.0 += stats.ands_before;
        ands.1 += stats.ands_after;
        total += stats.prep_time;
    }
    eprintln!(
        "preprocessing: latches {}→{}, ands {}→{} across {} instances \
         ({:?} total, {:?}/case; per-case cost is included in runtimes)",
        latches.0,
        latches.1,
        ands.0,
        ands.1,
        suite.len(),
        total,
        total / suite.len().max(1) as u32,
    );
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let suite = if options.full {
        Suite::hwmcc_like()
    } else {
        Suite::quick()
    };
    let runner = RunnerConfig {
        timeout: options.timeout,
        workers: options.jobs,
        preprocess: options.preprocess,
        max_memory: options.max_memory,
        certify: options.certify,
        ..RunnerConfig::default()
    };
    if options.preprocess {
        print_preprocessing_summary(&suite);
    }

    if options.portfolio {
        let budget = plic3_harness::experiment_thread_budget(&runner);
        eprintln!(
            "running {} instances under the portfolio engine \
             ({} workers/case x {} concurrent cases, per-case timeout {:?})",
            suite.len(),
            budget.workers_per_case,
            budget.concurrent_cases,
            runner.timeout
        );
        let data = run_portfolio_experiment(&suite, &runner);
        if data.wrong_verdicts() > 0 || data.unverified() > 0 {
            eprintln!(
                "WARNING: {} wrong verdicts, {} certificate-check failures",
                data.wrong_verdicts(),
                data.unverified()
            );
        }
        let (worker_crashes, _) = data.worker_crash_totals();
        if data.crashed() > 0 || worker_crashes > 0 {
            eprintln!(
                "WARNING: {} crashed cases, {} contained worker crashes",
                data.crashed(),
                worker_crashes
            );
        }
        println!("{}", portfolio_run::render(&data));
        write_csv(
            &options.csv_dir,
            "portfolio.csv",
            &portfolio_run::to_csv(&data),
        );
        std::process::exit(exit_code(
            data.wrong_verdicts(),
            data.unverified(),
            data.crashed() + worker_crashes,
        ));
    }

    if options.command == "ablation" {
        // The ablation driver is sequential (it accumulates per-variant
        // aggregates in order); --jobs does not apply to it.
        let variants = ablation::default_variants();
        eprintln!(
            "running {} instances x {} ablation variants sequentially (per-case timeout {:?})",
            suite.len(),
            variants.len(),
            runner.timeout
        );
        let report = ablation::run(&suite, &variants, &runner);
        println!("{}", ablation::render(&report));
        return;
    }

    eprintln!(
        "running {} instances x 6 configurations on {} workers (per-case timeout {:?})",
        suite.len(),
        runner.effective_workers(),
        runner.timeout
    );

    let data = run_experiment(&suite, &Configuration::all(), &runner);
    if data.wrong_verdicts() > 0 {
        eprintln!(
            "WARNING: {} runs returned a verdict contradicting the ground truth",
            data.wrong_verdicts()
        );
    }
    // Failure taxonomy of the suite: budget trips degrade to `memout`,
    // contained panics to `crashed` — neither is ever a wrong verdict.
    // Certificate-check failures get their own count (and exit code): a
    // solved case whose proof artifact fails independent checking must fail
    // CI loudly even when the verdict itself agrees with the ground truth.
    eprintln!(
        "failures: {} memout, {} crashed, {} certificate-check failures across {} cases",
        data.memouts(),
        data.crashed(),
        data.cert_failures(),
        data.results.len()
    );
    if options.certify {
        eprintln!(
            "certify: checked every Safe certificate on the original circuit \
             ({:?} total check time)",
            data.cert_time()
        );
    }

    let want = |name: &str| options.command == "all" || options.command == name;
    if want("table1") {
        let table = table1::build(&data);
        println!("{}", table1::render(&table));
        write_csv(&options.csv_dir, "table1.csv", &table1::to_csv(&table));
    }
    if want("table2") {
        let table = table2::build(&data);
        println!("{}", table2::render(&table));
        write_csv(&options.csv_dir, "table2.csv", &table2::to_csv(&table));
    }
    if want("fig2") {
        let fig = fig2::build(&data, &fig2::default_limits(runner.timeout));
        println!("{}", fig2::render(&fig));
        write_csv(&options.csv_dir, "fig2.csv", &fig2::to_csv(&fig));
    }
    if want("fig3") {
        let fig = fig3::build(&data);
        println!("{}", fig3::render(&fig));
        write_csv(&options.csv_dir, "fig3.csv", &fig3::to_csv(&fig));
    }
    if want("fig4") {
        let fig = fig4::build(&data, runner.fast_case_threshold);
        println!("{}", fig4::render(&fig));
        write_csv(&options.csv_dir, "fig4.csv", &fig4::to_csv(&fig));
    }
    std::process::exit(exit_code(
        data.wrong_verdicts(),
        data.cert_failures(),
        data.crashed(),
    ));
}

/// Exit code of a finished run: `1` for wrong verdicts (the gravest failure),
/// `4` for certificate-check failures (a solved case whose proof artifact
/// failed independent verification), `3` for contained crashes, `0`
/// otherwise. Usage errors exit `2` before any case runs.
fn exit_code(wrong: usize, cert_failed: usize, crashed: usize) -> i32 {
    if wrong > 0 {
        1
    } else if cert_failed > 0 {
        4
    } else if crashed > 0 {
        3
    } else {
        0
    }
}
