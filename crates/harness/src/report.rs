//! Plain-text table rendering and CSV output shared by all experiment reports.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use plic3_harness::report::TextTable;
/// let mut t = TextTable::new(vec!["name".into(), "value".into()]);
/// t.add_row(vec!["answer".into(), "42".into()]);
/// let rendered = t.render();
/// assert!(rendered.contains("answer"));
/// assert!(rendered.contains("42"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header plus rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&csv_line(&self.header));
        for row in &self.rows {
            out.push_str(&csv_line(row));
        }
        out
    }
}

/// Escapes one CSV line.
pub fn csv_line(cells: &[String]) -> String {
    let escaped: Vec<String> = cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect();
    format!("{}\n", escaped.join(","))
}

/// Formats an optional rate as a percentage with two decimals (`n/a` if absent).
pub fn percent(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.2}%", 100.0 * r),
        None => "n/a".to_string(),
    }
}

/// Formats a duration in seconds with millisecond resolution.
pub fn seconds(seconds: f64) -> String {
    format!("{seconds:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].starts_with("xxxxx"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn add_row_checks_width() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        assert_eq!(
            csv_line(&["a,b".into(), "c\"d".into()]),
            "\"a,b\",\"c\"\"d\"\n"
        );
        assert_eq!(csv_line(&["plain".into()]), "plain\n");
        let mut t = TextTable::new(vec!["h".into()]);
        t.add_row(vec!["v".into()]);
        assert_eq!(t.to_csv(), "h\nv\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(Some(0.1234)), "12.34%");
        assert_eq!(percent(None), "n/a");
        assert_eq!(seconds(1.23456), "1.235");
    }
}
