//! Ablation study over the design knobs called out in `DESIGN.md`: CTG
//! generalization, literal ordering, core shrinking of predicted lemmas.

use crate::report::{percent, TextTable};
use crate::RunnerConfig;
use plic3::{Config, GeneralizeMode, Ic3, LiteralOrdering};
use plic3_benchmarks::Suite;
use plic3_prep::preprocess;
use plic3_ts::TransitionSystem;
use std::time::{Duration, Instant};

/// One ablation variant: a named engine configuration.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Human-readable name of the variant.
    pub name: String,
    /// The engine configuration.
    pub config: Config,
}

/// The default set of ablation variants.
pub fn default_variants() -> Vec<Variant> {
    let base = Config::ric3_like().with_lemma_prediction(true);
    vec![
        Variant {
            name: "pl (default)".into(),
            config: base.clone(),
        },
        Variant {
            name: "pl, no CTG".into(),
            config: base.clone().with_generalize(GeneralizeMode::Mic),
        },
        Variant {
            name: "pl, parent-guided order".into(),
            config: base.clone().with_ordering(LiteralOrdering::ParentGuided),
        },
        Variant {
            name: "pl, shrink predicted".into(),
            config: Config {
                shrink_predicted: true,
                ..base.clone()
            },
        },
        Variant {
            name: "pl, no lifting".into(),
            config: Config {
                lift_predecessors: false,
                ..base.clone()
            },
        },
        Variant {
            name: "no prediction".into(),
            config: base.with_lemma_prediction(false),
        },
    ]
}

/// One row of the ablation report.
#[derive(Clone, Debug)]
pub struct Row {
    /// Variant name.
    pub name: String,
    /// Cases solved within the budget.
    pub solved: usize,
    /// Total runtime over all cases.
    pub total_time: Duration,
    /// Average `SR_adv` over cases where it is defined.
    pub avg_sr_adv: Option<f64>,
    /// Total number of relative-induction queries.
    pub relative_queries: u64,
}

/// The ablation report.
#[derive(Clone, Debug, Default)]
pub struct Ablation {
    /// One row per variant.
    pub rows: Vec<Row>,
}

/// Runs every variant over the suite and collects the report.
pub fn run(suite: &Suite, variants: &[Variant], runner: &RunnerConfig) -> Ablation {
    let mut rows = Vec::new();
    for variant in variants {
        let mut solved = 0usize;
        let mut total_time = Duration::ZERO;
        let mut adv = Vec::new();
        let mut queries = 0u64;
        for benchmark in suite {
            let started = Instant::now();
            // Same pipeline as the portfolio runner: preprocessing (when
            // enabled) runs inside the measured window, and its cost is
            // deducted from the engine's wall-clock budget so a case never
            // exceeds `runner.timeout` overall.
            let mut prep_time = Duration::ZERO;
            let ts = if runner.preprocess {
                let prep = preprocess(benchmark.aig());
                prep_time = prep.stats.prep_time;
                TransitionSystem::from_aig(&prep.aig)
            } else {
                benchmark.ts()
            };
            let mut config = variant
                .config
                .clone()
                .with_max_time(runner.timeout.saturating_sub(prep_time));
            config.limits.max_conflicts = runner.max_conflicts;
            let mut engine = Ic3::new(ts, config);
            let result = engine.check();
            total_time += started.elapsed();
            if !result.is_unknown() {
                solved += 1;
            }
            if let Some(rate) = engine.statistics().sr_adv() {
                adv.push(rate);
            }
            queries += engine.statistics().relative_queries;
        }
        let avg_sr_adv = if adv.is_empty() {
            None
        } else {
            Some(adv.iter().sum::<f64>() / adv.len() as f64)
        };
        rows.push(Row {
            name: variant.name.clone(),
            solved,
            total_time,
            avg_sr_adv,
            relative_queries: queries,
        });
    }
    Ablation { rows }
}

/// Renders the ablation report.
pub fn render(ablation: &Ablation) -> String {
    let mut text = TextTable::new(vec![
        "Variant".into(),
        "Solved".into(),
        "Total time (s)".into(),
        "Avg SR_adv".into(),
        "Relative queries".into(),
    ]);
    for row in &ablation.rows {
        text.add_row(vec![
            row.name.clone(),
            row.solved.to_string(),
            format!("{:.3}", row.total_time.as_secs_f64()),
            percent(row.avg_sr_adv),
            row.relative_queries.to_string(),
        ]);
    }
    format!("Ablation study\n{}", text.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_all_variants_on_a_tiny_suite() {
        let suite = Suite::quick().filter(|b| matches!(b.family(), "ring"));
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            ..RunnerConfig::default()
        };
        let variants = default_variants();
        let report = run(&suite, &variants, &runner);
        assert_eq!(report.rows.len(), variants.len());
        for row in &report.rows {
            assert_eq!(row.solved, suite.len(), "{} failed to solve", row.name);
            assert!(row.relative_queries > 0);
        }
        // The prediction-free variant must not report a prediction rate.
        let no_pred = report
            .rows
            .iter()
            .find(|r| r.name == "no prediction")
            .expect("variant exists");
        assert!(no_pred.avg_sr_adv.is_none() || no_pred.avg_sr_adv == Some(0.0));
        let text = render(&report);
        assert!(text.contains("Ablation"));
        assert!(text.contains("pl (default)"));
    }
}
