//! Table 2 — Average Success Rates of the prediction-enabled configurations.

use crate::report::{percent, TextTable};
use crate::{Configuration, ExperimentData};

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Row {
    /// The (prediction-enabled) configuration.
    pub configuration: Configuration,
    /// Average lemma-prediction success rate `SR_lp = N_sp / N_p`.
    pub avg_sr_lp: Option<f64>,
    /// Average failed-parent discovery rate `SR_fp = N_fp / N_g`.
    pub avg_sr_fp: Option<f64>,
    /// Average rate of avoided variable dropping `SR_adv = N_sp / N_g`.
    pub avg_sr_adv: Option<f64>,
    /// Number of cases contributing to the averages.
    pub cases: usize,
}

/// The reproduced Table 2.
#[derive(Clone, Debug, Default)]
pub struct Table2 {
    /// One row per prediction-enabled configuration.
    pub rows: Vec<Row>,
}

/// Builds Table 2: for every prediction-enabled configuration, the per-case
/// success rates are averaged over the cases where they are defined (i.e. at
/// least one generalization / prediction query happened), mirroring the
/// per-case averaging of the paper.
pub fn build(data: &ExperimentData) -> Table2 {
    let rows = data
        .configurations()
        .into_iter()
        .filter(Configuration::has_prediction)
        .map(|configuration| {
            let results = data.for_configuration(configuration);
            let mut lp = Vec::new();
            let mut fp = Vec::new();
            let mut adv = Vec::new();
            let mut cases = 0;
            for result in results {
                let stats = &result.stats;
                if stats.generalizations == 0 {
                    continue;
                }
                cases += 1;
                if let Some(rate) = stats.sr_lp() {
                    lp.push(rate);
                }
                if let Some(rate) = stats.sr_fp() {
                    fp.push(rate);
                }
                if let Some(rate) = stats.sr_adv() {
                    adv.push(rate);
                }
            }
            Row {
                configuration,
                avg_sr_lp: mean(&lp),
                avg_sr_fp: mean(&fp),
                avg_sr_adv: mean(&adv),
                cases,
            }
        })
        .collect();
    Table2 { rows }
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Renders Table 2 in the layout of the paper.
pub fn render(table: &Table2) -> String {
    let mut text = TextTable::new(vec![
        "Configuration".into(),
        "Avg SR_lp".into(),
        "Avg SR_fp".into(),
        "Avg SR_adv".into(),
        "Cases".into(),
    ]);
    for row in &table.rows {
        text.add_row(vec![
            row.configuration.label().to_string(),
            percent(row.avg_sr_lp),
            percent(row.avg_sr_fp),
            percent(row.avg_sr_adv),
            row.cases.to_string(),
        ]);
    }
    format!("Table 2: Average Success Rates\n{}", text.render())
}

/// Renders Table 2 as CSV.
pub fn to_csv(table: &Table2) -> String {
    let mut text = TextTable::new(vec![
        "configuration".into(),
        "avg_sr_lp".into(),
        "avg_sr_fp".into(),
        "avg_sr_adv".into(),
        "cases".into(),
    ]);
    for row in &table.rows {
        text.add_row(vec![
            row.configuration.label().to_string(),
            row.avg_sr_lp.map(|r| format!("{r:.4}")).unwrap_or_default(),
            row.avg_sr_fp.map(|r| format!("{r:.4}")).unwrap_or_default(),
            row.avg_sr_adv
                .map(|r| format!("{r:.4}"))
                .unwrap_or_default(),
            row.cases.to_string(),
        ]);
    }
    text.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, RunnerConfig};
    use plic3_benchmarks::Suite;
    use std::time::Duration;

    #[test]
    fn only_prediction_configurations_appear() {
        let suite = Suite::quick().filter(|b| matches!(b.family(), "counter" | "shift"));
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            ..RunnerConfig::default()
        };
        let data = run_experiment(
            &suite,
            &[
                Configuration::Ric3,
                Configuration::Ric3Pl,
                Configuration::Ic3refPl,
            ],
            &runner,
        );
        let table = build(&data);
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert!(row.configuration.has_prediction());
            assert!(row.cases > 0);
            for rate in [row.avg_sr_lp, row.avg_sr_fp, row.avg_sr_adv]
                .into_iter()
                .flatten()
            {
                assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
            }
        }
        let text = render(&table);
        assert!(text.contains("Table 2"));
        assert!(text.contains("RIC3-pl"));
        assert!(text.contains("IC3ref-pl"));
        assert!(!text.contains("ABC"));
        assert!(to_csv(&table).starts_with("configuration,"));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[0.5]), Some(0.5));
        assert!((mean(&[0.2, 0.4]).expect("defined") - 0.3).abs() < 1e-12);
    }
}
