//! Table 1 — Summary of Results: cases solved per configuration.

use crate::report::TextTable;
use crate::{Configuration, ExperimentData, Verdict};

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Row {
    /// The configuration the row describes.
    pub configuration: Configuration,
    /// Total number of solved cases.
    pub solved: usize,
    /// Cases solved with a `Safe` verdict.
    pub safe: usize,
    /// Cases solved with an `Unsafe` verdict.
    pub unsafe_: usize,
    /// Cases that hit the per-case budget.
    pub unknown: usize,
}

/// The reproduced Table 1.
#[derive(Clone, Debug, Default)]
pub struct Table1 {
    /// One row per configuration, in the order the configurations were run.
    pub rows: Vec<Row>,
}

/// Builds Table 1 from experiment data.
pub fn build(data: &ExperimentData) -> Table1 {
    let rows = data
        .configurations()
        .into_iter()
        .map(|configuration| {
            let results = data.for_configuration(configuration);
            let safe = results
                .iter()
                .filter(|r| r.verdict == Verdict::Safe)
                .count();
            let unsafe_ = results
                .iter()
                .filter(|r| r.verdict == Verdict::Unsafe)
                .count();
            let unknown = results.len() - safe - unsafe_;
            Row {
                configuration,
                solved: safe + unsafe_,
                safe,
                unsafe_,
                unknown,
            }
        })
        .collect();
    Table1 { rows }
}

/// Renders the table in the layout of the paper (`Configuration  Solved  Safe
/// Unsafe`), with an extra `Unknown` column.
pub fn render(table: &Table1) -> String {
    let mut text = TextTable::new(vec![
        "Configuration".into(),
        "Solved".into(),
        "Safe".into(),
        "Unsafe".into(),
        "Unknown".into(),
    ]);
    for row in &table.rows {
        text.add_row(vec![
            row.configuration.label().to_string(),
            row.solved.to_string(),
            row.safe.to_string(),
            row.unsafe_.to_string(),
            row.unknown.to_string(),
        ]);
    }
    format!("Table 1: Summary of Results\n{}", text.render())
}

/// Renders the table as CSV.
pub fn to_csv(table: &Table1) -> String {
    let mut text = TextTable::new(vec![
        "configuration".into(),
        "solved".into(),
        "safe".into(),
        "unsafe".into(),
        "unknown".into(),
    ]);
    for row in &table.rows {
        text.add_row(vec![
            row.configuration.label().to_string(),
            row.solved.to_string(),
            row.safe.to_string(),
            row.unsafe_.to_string(),
            row.unknown.to_string(),
        ]);
    }
    text.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, RunnerConfig};
    use plic3_benchmarks::Suite;
    use std::time::Duration;

    fn sample_data() -> ExperimentData {
        let suite = Suite::quick().filter(|b| matches!(b.family(), "counter" | "ring"));
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            ..RunnerConfig::default()
        };
        run_experiment(
            &suite,
            &[Configuration::Ric3, Configuration::Ric3Pl],
            &runner,
        )
    }

    #[test]
    fn rows_add_up() {
        let data = sample_data();
        let table = build(&data);
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row.solved, row.safe + row.unsafe_);
            assert_eq!(
                row.solved + row.unknown,
                data.for_configuration(row.configuration).len()
            );
            // The quick instances are easy enough to always be solved.
            assert_eq!(
                row.unknown, 0,
                "{} timed out unexpectedly",
                row.configuration
            );
        }
    }

    #[test]
    fn render_contains_all_configurations() {
        let data = sample_data();
        let table = build(&data);
        let text = render(&table);
        assert!(text.contains("Table 1"));
        assert!(text.contains("RIC3"));
        assert!(text.contains("RIC3-pl"));
        let csv = to_csv(&table);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("configuration,"));
    }
}
