//! Resource-limited execution of the benchmark suite under the paper's
//! configurations.
//!
//! [`run_experiment`] is a **portfolio runner**: the (benchmark ×
//! configuration) cases are fanned out over a pool of worker threads, a
//! watchdog thread raises each case's [`StopFlag`] when its wall-clock budget
//! expires (interrupting even a single long SAT query), and the results are
//! reassembled in benchmark-major order so the collected [`ExperimentData`] —
//! and therefore every table and figure built from it — is independent of
//! scheduling.

use plic3::{Config, FaultPlan, Ic3, ResourceBudget, Statistics, StopFlag, UnknownReason};
use plic3_benchmarks::{Benchmark, ExpectedResult, Suite};
use plic3_check::{CertCheckError, CheckOptions};
use plic3_prep::{Preprocessor, Reconstruction};
use plic3_ts::TransitionSystem;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The configurations evaluated in Table 1 of the paper.
///
/// `RIC3` and `IC3ref` are the two base implementations, the `-pl` variants add
/// the CTP-based lemma prediction, `IC3ref-CAV23` is the parent-guided
/// generalization of Xia et al., and `ABC-PDR` is the PDR implementation of
/// ABC. In this reproduction all six are the same Rust engine under the
/// corresponding [`Config`] presets (see `DESIGN.md` for the substitution
/// rationale).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Configuration {
    /// RIC3-style baseline (CTG generalization).
    Ric3,
    /// RIC3 plus the paper's lemma prediction.
    Ric3Pl,
    /// IC3ref-style baseline (plain MIC).
    Ic3ref,
    /// IC3ref plus the paper's lemma prediction.
    Ic3refPl,
    /// The CAV'23 parent-guided generalization ordering.
    Ic3refCav23,
    /// An ABC-PDR-style configuration.
    AbcPdr,
}

impl Configuration {
    /// All six configurations, in the order of Table 1 of the paper.
    pub fn all() -> [Configuration; 6] {
        [
            Configuration::Ric3,
            Configuration::Ric3Pl,
            Configuration::Ic3ref,
            Configuration::Ic3refPl,
            Configuration::Ic3refCav23,
            Configuration::AbcPdr,
        ]
    }

    /// The label used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Configuration::Ric3 => "RIC3",
            Configuration::Ric3Pl => "RIC3-pl",
            Configuration::Ic3ref => "IC3ref",
            Configuration::Ic3refPl => "IC3ref-pl",
            Configuration::Ic3refCav23 => "IC3ref-CAV23",
            Configuration::AbcPdr => "ABC-PDR",
        }
    }

    /// Returns `true` for the prediction-enabled configurations.
    pub fn has_prediction(&self) -> bool {
        matches!(self, Configuration::Ric3Pl | Configuration::Ic3refPl)
    }

    /// The base configuration a prediction-enabled configuration extends, if
    /// any (used by the Figure 3 and Figure 4 pairings).
    pub fn base(&self) -> Option<Configuration> {
        match self {
            Configuration::Ric3Pl => Some(Configuration::Ric3),
            Configuration::Ic3refPl => Some(Configuration::Ic3ref),
            _ => None,
        }
    }

    /// The engine configuration preset for this evaluation configuration.
    pub fn to_config(&self) -> Config {
        match self {
            Configuration::Ric3 => Config::ric3_like(),
            Configuration::Ric3Pl => Config::ric3_like().with_lemma_prediction(true),
            Configuration::Ic3ref => Config::ic3ref_like(),
            Configuration::Ic3refPl => Config::ic3ref_like().with_lemma_prediction(true),
            Configuration::Ic3refCav23 => Config::cav23_like(),
            Configuration::AbcPdr => Config::pdr_like(),
        }
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The outcome of one (configuration, benchmark) run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Proved safe (with a verified certificate).
    Safe,
    /// Proved unsafe (with a verified counterexample).
    Unsafe,
    /// No verdict within the per-case budget.
    Unknown,
    /// The per-case memory budget tripped before a verdict was reached; the
    /// engine unwound gracefully (never an allocator abort).
    MemOut,
    /// The case panicked; the panic was contained by the runner, the payload
    /// is in [`CaseResult::crash`], and the rest of the suite kept running.
    Crashed,
}

impl Verdict {
    /// Returns `true` if the case was solved (safe or unsafe).
    pub fn solved(&self) -> bool {
        matches!(self, Verdict::Safe | Verdict::Unsafe)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => write!(f, "safe"),
            Verdict::Unsafe => write!(f, "unsafe"),
            Verdict::Unknown => write!(f, "unknown"),
            Verdict::MemOut => write!(f, "memout"),
            Verdict::Crashed => write!(f, "crashed"),
        }
    }
}

/// Per-case resource budgets and analysis thresholds.
#[derive(Clone, Debug, PartialEq)]
pub struct RunnerConfig {
    /// Per-case wall-clock budget (the paper uses 1000 s; scale to the suite).
    pub timeout: Duration,
    /// Per-case SAT-conflict budget, as a secondary safeguard.
    pub max_conflicts: Option<u64>,
    /// Cases where both members of a base/prediction pair finish faster than
    /// this are dropped from the Figure 4 analysis (the paper uses 1 s).
    pub fast_case_threshold: Duration,
    /// Number of worker threads the portfolio runner fans cases out over;
    /// `0` means one worker per available core, `1` runs sequentially.
    pub workers: usize,
    /// Run the AIG preprocessing pipeline (`plic3-prep`) before encoding each
    /// circuit. On by default; `plic3-exp --no-preprocess` disables it. With
    /// preprocessing on, `Unsafe` traces are verified by mapping them back to
    /// the **original** circuit and replaying them there.
    pub preprocess: bool,
    /// Per-case memory budget in bytes (`None` = unlimited). Every case gets
    /// a **fresh** [`ResourceBudget`] of this size covering preprocessing and
    /// the engine's clause/lemma storage; a case that trips it ends as
    /// [`Verdict::MemOut`], never as an allocator abort.
    pub max_memory: Option<u64>,
    /// Deterministic fault-injection schedule handed to every case. Inert by
    /// default (and always inert without the `fault-injection` cargo
    /// feature); the chaos tests seed it to exercise crash containment.
    pub faults: FaultPlan,
    /// Check every `Safe` certificate on the **original, pre-preprocessing**
    /// circuit with [`plic3_check::check_certificate_on_original`] (inverting
    /// the witness maps), in addition to the always-on engine-side
    /// verification. The check runs inside the case's watchdogged window and
    /// its time is reported in [`CaseResult::cert_time`]; a check interrupted
    /// by the watchdog is *not* counted as a failure. Off by default;
    /// `plic3-exp --certify` enables it.
    pub certify: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            timeout: Duration::from_secs(10),
            max_conflicts: Some(2_000_000),
            fast_case_threshold: Duration::from_millis(10),
            workers: 0,
            preprocess: true,
            max_memory: None,
            faults: FaultPlan::inert(),
            certify: false,
        }
    }
}

impl RunnerConfig {
    /// The worker-pool size this configuration resolves to: `workers`, or one
    /// per available core when it is `0`.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

/// The outcome and statistics of one (configuration, benchmark) run.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Benchmark instance name.
    pub benchmark: String,
    /// Benchmark family.
    pub family: String,
    /// Ground-truth expectation.
    pub expected: ExpectedResult,
    /// The configuration that ran.
    pub configuration: Configuration,
    /// The verdict reached.
    pub verdict: Verdict,
    /// Whether the verdict matches the ground truth (`true` for `Unknown`).
    pub correct: bool,
    /// Whether the certificate / counterexample passed independent checking.
    pub verified: bool,
    /// Wall-clock runtime of the run, *including* preprocessing time.
    pub runtime: Duration,
    /// Time spent in the preprocessing pipeline (zero when preprocessing is
    /// disabled), so reports can account for it separately.
    pub prep_time: Duration,
    /// Time spent checking the certificate on the original circuit (zero
    /// unless [`RunnerConfig::certify`] is on and the case ended `Safe`).
    pub cert_time: Duration,
    /// Engine statistics (including the prediction counters).
    pub stats: Statistics,
    /// Stringified panic payload when the case crashed (see
    /// [`Verdict::Crashed`]); `None` for every other verdict.
    pub crash: Option<String>,
}

impl CaseResult {
    /// Runtime in seconds, with timeouts reported as the full budget.
    pub fn runtime_secs(&self) -> f64 {
        self.runtime.as_secs_f64()
    }
}

/// All results of an experiment run.
#[derive(Clone, Debug, Default)]
pub struct ExperimentData {
    /// One entry per (configuration, benchmark) pair.
    pub results: Vec<CaseResult>,
    /// The per-case budgets used.
    pub runner: Option<RunnerConfig>,
}

impl ExperimentData {
    /// Results of a single configuration.
    pub fn for_configuration(&self, config: Configuration) -> Vec<&CaseResult> {
        self.results
            .iter()
            .filter(|r| r.configuration == config)
            .collect()
    }

    /// The result of `config` on the named benchmark, if present.
    pub fn result_of(&self, config: Configuration, benchmark: &str) -> Option<&CaseResult> {
        self.results
            .iter()
            .find(|r| r.configuration == config && r.benchmark == benchmark)
    }

    /// All configurations present in the data, in first-seen order.
    pub fn configurations(&self) -> Vec<Configuration> {
        let mut seen = Vec::new();
        for r in &self.results {
            if !seen.contains(&r.configuration) {
                seen.push(r.configuration);
            }
        }
        seen
    }

    /// Number of wrong verdicts (should always be zero).
    pub fn wrong_verdicts(&self) -> usize {
        self.results.iter().filter(|r| !r.correct).count()
    }

    /// Number of cases that ended as [`Verdict::MemOut`].
    pub fn memouts(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.verdict == Verdict::MemOut)
            .count()
    }

    /// Number of cases that ended as [`Verdict::Crashed`] (panic contained by
    /// the runner).
    pub fn crashed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.verdict == Verdict::Crashed)
            .count()
    }

    /// Number of solved cases whose proof artifact failed independent
    /// checking: a `Safe` certificate rejected by the checker (on the
    /// simplified circuit, or — under [`RunnerConfig::certify`] — on the
    /// original one) or an `Unsafe` trace that does not replay. Should always
    /// be zero; `plic3-exp` exits with a dedicated code when it is not.
    pub fn cert_failures(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.verdict.solved() && !r.verified)
            .count()
    }

    /// Total wall-clock time spent in certificate checks (zero unless
    /// [`RunnerConfig::certify`] was on).
    pub fn cert_time(&self) -> Duration {
        self.results.iter().map(|r| r.cert_time).sum()
    }
}

/// Runs a single benchmark under a single configuration with the given budgets.
///
/// The wall-clock budget is enforced cooperatively by the engine between SAT
/// queries; inside the portfolio runner the case additionally gets a watchdog
/// that interrupts long-running queries through the shared [`StopFlag`].
pub fn run_case(
    benchmark: &Benchmark,
    configuration: Configuration,
    runner: &RunnerConfig,
) -> CaseResult {
    run_case_with_stop(benchmark, configuration, runner, StopFlag::new())
}

/// [`run_case`] with an externally owned cancellation flag.
fn run_case_with_stop(
    benchmark: &Benchmark,
    configuration: Configuration,
    runner: &RunnerConfig,
    stop: StopFlag,
) -> CaseResult {
    let started = Instant::now();
    // One fresh memory budget per case, shared by preprocessing and the
    // engine, so the whole case — not each phase — stays under the limit.
    let budget = runner
        .max_memory
        .map_or_else(ResourceBudget::unlimited, ResourceBudget::with_limit);
    // The preprocessing pipeline runs inside the measured window: its cost is
    // part of the case's runtime, and its `Reconstruction` is what maps
    // counterexamples back onto the original circuit. It runs under the same
    // stop flag, budget and fault plan as the engine, so a watchdog firing
    // mid-prep (or the budget tripping there) cancels the pipeline between
    // rounds and the engine then returns `Unknown` immediately — the case as
    // a whole never exceeds `runner.timeout`.
    // Kept for the certificate check: the engine config takes ownership of
    // `stop` below, and the checker must observe the same watchdog.
    let case_stop = stop.clone();
    let prep = runner.preprocess.then(|| {
        Preprocessor::default().run_under(benchmark.aig(), &stop, &budget, &runner.faults)
    });
    let ts = match &prep {
        Some(p) => TransitionSystem::from_aig(&p.aig),
        None => benchmark.ts(),
    };
    let prep_time = prep.as_ref().map_or(Duration::ZERO, |p| p.stats.prep_time);
    let mut config = configuration
        .to_config()
        .with_max_time(runner.timeout.saturating_sub(prep_time))
        .with_stop_flag(stop)
        .with_budget(budget)
        .with_fault_plan(runner.faults.clone());
    config.limits.max_conflicts = runner.max_conflicts;
    let mut engine = Ic3::new(ts, config);
    let outcome = engine.check();
    let runtime = started.elapsed();
    let mut cert_time = Duration::ZERO;
    let (verdict, verified) = match &outcome {
        plic3::CheckResult::Safe(cert) => {
            let mut verified = plic3::verify_certificate(engine.ts(), cert).is_ok();
            // The stronger `--certify` check replays the certificate on the
            // original, pre-preprocessing circuit through the witness maps.
            // It runs inside the watchdogged window: a check the watchdog
            // interrupts stays unproven, not failed.
            if verified && runner.certify {
                let certify_started = Instant::now();
                let identity = Reconstruction::identity(
                    benchmark.aig().num_inputs(),
                    benchmark.aig().num_latches(),
                );
                let recon = prep.as_ref().map_or(&identity, |p| &p.reconstruction);
                let options = CheckOptions {
                    stop: Some(case_stop.clone()),
                    drat: false,
                };
                verified = match plic3_check::check_certificate_on_original(
                    benchmark.aig(),
                    recon,
                    engine.ts(),
                    cert,
                    &options,
                ) {
                    Ok(_) | Err(CertCheckError::Interrupted) => true,
                    Err(CertCheckError::Invalid(_)) => false,
                };
                cert_time = certify_started.elapsed();
            }
            (Verdict::Safe, verified)
        }
        plic3::CheckResult::Unsafe(trace) => {
            // With preprocessing on, the trace lives on the simplified circuit;
            // the witness map must replay it on the *original* one.
            let replays = match &prep {
                Some(p) => p.replay_on_original(engine.ts(), trace),
                None => plic3::verify_trace(engine.ts(), benchmark.aig(), trace),
            };
            (Verdict::Unsafe, replays)
        }
        plic3::CheckResult::Unknown(UnknownReason::MemoryOut) => (Verdict::MemOut, true),
        plic3::CheckResult::Unknown(_) => (Verdict::Unknown, true),
    };
    let correct = matches!(
        (verdict, benchmark.expected()),
        (Verdict::Safe, ExpectedResult::Safe)
            | (Verdict::Unsafe, ExpectedResult::Unsafe { .. })
            | (Verdict::Unknown | Verdict::MemOut | Verdict::Crashed, _)
    );
    CaseResult {
        benchmark: benchmark.name().to_string(),
        family: benchmark.family().to_string(),
        expected: benchmark.expected(),
        configuration,
        verdict,
        correct,
        verified,
        runtime,
        prep_time,
        cert_time,
        stats: *engine.statistics(),
        crash: None,
    }
}

/// The synthetic result of a case whose engine panicked: the runner contains
/// the crash, reports it, and moves on to the next case. A crash is never a
/// verdict, so it can never be a *wrong* verdict.
fn crashed_case(
    benchmark: &Benchmark,
    configuration: Configuration,
    payload: String,
    runtime: Duration,
) -> CaseResult {
    CaseResult {
        benchmark: benchmark.name().to_string(),
        family: benchmark.family().to_string(),
        expected: benchmark.expected(),
        configuration,
        verdict: Verdict::Crashed,
        correct: true,
        verified: true,
        runtime,
        prep_time: Duration::ZERO,
        cert_time: Duration::ZERO,
        stats: Statistics::default(),
        crash: Some(payload),
    }
}

/// Renders a caught panic payload as text (the standard payloads are `&str`
/// and `String`).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The watchdog shared by all workers of one experiment run: a sorted-by-scan
/// list of armed (deadline, flag) pairs serviced by a dedicated thread, so a
/// case whose budget expires is cancelled even in the middle of a SAT query.
/// Shared with the portfolio experiment runner (`portfolio_run`).
pub(crate) struct Watchdog {
    state: Mutex<WatchdogState>,
    wakeup: Condvar,
}

struct WatchdogState {
    next_id: u64,
    armed: Vec<(u64, Instant, StopFlag)>,
    shutdown: bool,
}

impl Watchdog {
    pub(crate) fn new() -> Self {
        Watchdog {
            state: Mutex::new(WatchdogState {
                next_id: 0,
                armed: Vec::new(),
                shutdown: false,
            }),
            wakeup: Condvar::new(),
        }
    }

    /// Registers `flag` to be raised at `deadline`; returns a token for
    /// [`Watchdog::disarm`].
    pub(crate) fn arm(&self, deadline: Instant, flag: StopFlag) -> u64 {
        let mut state = self.state.lock().expect("watchdog lock");
        let id = state.next_id;
        state.next_id += 1;
        state.armed.push((id, deadline, flag));
        self.wakeup.notify_one();
        id
    }

    /// Withdraws an armed deadline (the case finished within its budget).
    pub(crate) fn disarm(&self, id: u64) {
        let mut state = self.state.lock().expect("watchdog lock");
        state.armed.retain(|(armed_id, _, _)| *armed_id != id);
    }

    pub(crate) fn shutdown(&self) {
        self.state.lock().expect("watchdog lock").shutdown = true;
        self.wakeup.notify_one();
    }

    /// The watchdog thread body: sleep until the earliest armed deadline (or a
    /// new arming), raise every expired flag, repeat until shutdown.
    pub(crate) fn run(&self) {
        let mut state = self.state.lock().expect("watchdog lock");
        loop {
            if state.shutdown {
                return;
            }
            let now = Instant::now();
            state.armed.retain(|(_, deadline, flag)| {
                let expired = *deadline <= now;
                if expired {
                    flag.stop();
                }
                !expired
            });
            let wait = state
                .armed
                .iter()
                .map(|(_, deadline, _)| deadline.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(50));
            let (next, _) = self
                .wakeup
                .wait_timeout(state, wait)
                .expect("watchdog lock");
            state = next;
        }
    }
}

/// Runs the whole `suite` under every configuration in `configurations`.
///
/// This is the portfolio runner: cases are distributed over
/// [`RunnerConfig::effective_workers`] worker threads and each case is armed
/// with a watchdog deadline of [`RunnerConfig::timeout`]. Results are
/// reassembled in benchmark-major order, so the returned [`ExperimentData`]
/// is ordered identically no matter how the cases were scheduled — repeated
/// runs differ only in measured runtimes.
pub fn run_experiment(
    suite: &Suite,
    configurations: &[Configuration],
    runner: &RunnerConfig,
) -> ExperimentData {
    run_experiment_with_workers(suite, configurations, runner, runner.effective_workers())
}

/// [`run_experiment`] with an explicit worker count (ignoring
/// [`RunnerConfig::workers`]). `workers == 1` is the sequential baseline the
/// parallel runs are validated against.
pub fn run_experiment_with_workers(
    suite: &Suite,
    configurations: &[Configuration],
    runner: &RunnerConfig,
    workers: usize,
) -> ExperimentData {
    // Benchmark-major case list; the index doubles as the output position.
    let cases: Vec<(&Benchmark, Configuration)> = suite
        .iter()
        .flat_map(|benchmark| {
            configurations
                .iter()
                .map(move |&configuration| (benchmark, configuration))
        })
        .collect();
    let total = cases.len();
    let mut results: Vec<Option<CaseResult>> = vec![None; total];
    let next_case = AtomicUsize::new(0);
    let watchdog = Watchdog::new();
    let (tx, rx) = mpsc::channel::<(usize, CaseResult)>();
    thread::scope(|scope| {
        let watchdog = &watchdog;
        let cases = &cases;
        let next_case = &next_case;
        scope.spawn(move || watchdog.run());
        for _ in 0..workers.max(1).min(total.max(1)) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let index = next_case.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    return;
                }
                let (benchmark, configuration) = cases[index];
                let stop = StopFlag::new();
                let token = watchdog.arm(Instant::now() + runner.timeout, stop.clone());
                let case_started = Instant::now();
                // Fault containment: a panicking case is recorded as
                // `Verdict::Crashed` and the rest of the suite keeps running
                // on this worker thread.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    run_case_with_stop(benchmark, configuration, runner, stop)
                }))
                .unwrap_or_else(|payload| {
                    crashed_case(
                        benchmark,
                        configuration,
                        panic_message(payload),
                        case_started.elapsed(),
                    )
                });
                watchdog.disarm(token);
                if tx.send((index, result)).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            results[index] = Some(result);
        }
        watchdog.shutdown();
    });
    ExperimentData {
        results: results
            .into_iter()
            .map(|result| result.expect("every case reports exactly once"))
            .collect(),
        runner: Some(runner.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runner() -> RunnerConfig {
        RunnerConfig {
            timeout: Duration::from_secs(5),
            max_conflicts: Some(200_000),
            fast_case_threshold: Duration::from_millis(1),
            ..RunnerConfig::default()
        }
    }

    #[test]
    fn configuration_metadata_is_consistent() {
        assert_eq!(Configuration::all().len(), 6);
        for config in Configuration::all() {
            assert!(!config.label().is_empty());
            if let Some(base) = config.base() {
                assert!(config.has_prediction());
                assert!(!base.has_prediction());
                assert!(!base.to_config().lemma_prediction);
                assert!(config.to_config().lemma_prediction);
            }
        }
        assert_eq!(Configuration::Ric3Pl.to_string(), "RIC3-pl");
    }

    #[test]
    fn run_case_agrees_with_ground_truth_on_quick_suite() {
        let suite = Suite::quick();
        let runner = tiny_runner();
        for benchmark in suite.iter().take(6) {
            let result = run_case(benchmark, Configuration::Ric3Pl, &runner);
            assert!(result.correct, "{} got wrong verdict", benchmark.name());
            if result.verdict.solved() {
                assert!(result.verified, "{} result not verified", benchmark.name());
            }
        }
    }

    #[test]
    fn preprocessing_preserves_verdicts_and_keeps_witnesses_replayable() {
        let raw = RunnerConfig {
            preprocess: false,
            ..tiny_runner()
        };
        let pre = tiny_runner();
        assert!(pre.preprocess, "preprocessing is on by default");
        for benchmark in Suite::quick().iter() {
            let a = run_case(benchmark, Configuration::Ric3Pl, &raw);
            let b = run_case(benchmark, Configuration::Ric3Pl, &pre);
            assert_eq!(
                a.verdict,
                b.verdict,
                "{}: preprocessing changed the verdict",
                benchmark.name()
            );
            assert!(b.correct, "{}: wrong verdict", benchmark.name());
            assert!(
                b.verified,
                "{}: preprocessed witness failed verification on the original circuit",
                benchmark.name()
            );
            assert_eq!(a.prep_time, Duration::ZERO);
        }
    }

    #[test]
    fn certify_mode_checks_safe_cases_on_the_original_circuit() {
        let runner = RunnerConfig {
            certify: true,
            ..tiny_runner()
        };
        assert!(runner.preprocess, "the check must invert real witness maps");
        let mut safe_cases = 0;
        for benchmark in Suite::quick().iter() {
            let result = run_case(benchmark, Configuration::Ric3Pl, &runner);
            assert!(result.correct, "{} got wrong verdict", benchmark.name());
            if result.verdict.solved() {
                assert!(result.verified, "{} failed certification", benchmark.name());
            }
            if result.verdict == Verdict::Safe {
                safe_cases += 1;
                assert!(
                    result.cert_time > Duration::ZERO,
                    "{}: the certificate check was not timed",
                    benchmark.name()
                );
            } else {
                assert_eq!(result.cert_time, Duration::ZERO);
            }
        }
        assert!(safe_cases > 0, "the quick suite has safe instances");
    }

    #[test]
    fn experiment_data_accessors() {
        let suite = Suite::quick().filter(|b| b.family() == "counter");
        let runner = tiny_runner();
        let configs = [Configuration::Ric3, Configuration::Ric3Pl];
        let data = run_experiment(&suite, &configs, &runner);
        assert_eq!(data.results.len(), suite.len() * 2);
        assert_eq!(data.configurations(), configs.to_vec());
        assert_eq!(data.wrong_verdicts(), 0);
        assert_eq!(
            data.for_configuration(Configuration::Ric3).len(),
            suite.len()
        );
        let name = suite.iter().next().expect("non-empty").name();
        assert!(data.result_of(Configuration::Ric3Pl, name).is_some());
        assert!(data.result_of(Configuration::AbcPdr, name).is_none());
    }

    #[test]
    fn parallel_and_sequential_runs_agree() {
        // The satellite requirement of the portfolio runner: fanning the cases
        // out over several workers must not change what is reported, only how
        // fast. All cases below solve well within the budget, so the verdicts
        // are deterministic.
        let suite = Suite::quick().filter(|b| matches!(b.family(), "counter" | "ring"));
        let runner = tiny_runner();
        let configs = [Configuration::Ric3, Configuration::Ric3Pl];
        let sequential = run_experiment_with_workers(&suite, &configs, &runner, 1);
        let parallel = run_experiment_with_workers(&suite, &configs, &runner, 4);
        assert_eq!(sequential.results.len(), parallel.results.len());
        for (s, p) in sequential.results.iter().zip(&parallel.results) {
            assert_eq!(s.benchmark, p.benchmark, "case order must be identical");
            assert_eq!(s.configuration, p.configuration);
            assert_eq!(
                s.verdict, p.verdict,
                "{} under {} changed verdict across schedulers",
                s.benchmark, s.configuration
            );
            assert_eq!(s.correct, p.correct);
            assert_eq!(s.verified, p.verified);
        }
    }

    #[test]
    fn results_come_back_in_benchmark_major_order() {
        let suite = Suite::quick().filter(|b| b.family() == "counter");
        let runner = tiny_runner();
        let configs = [Configuration::Ric3, Configuration::Ic3ref];
        let data = run_experiment_with_workers(&suite, &configs, &runner, 3);
        let mut expected = Vec::new();
        for benchmark in &suite {
            for &configuration in &configs {
                expected.push((benchmark.name().to_string(), configuration));
            }
        }
        let actual: Vec<(String, Configuration)> = data
            .results
            .iter()
            .map(|r| (r.benchmark.clone(), r.configuration))
            .collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn watchdog_cancels_cases_that_blow_their_budget() {
        // A budget far below what any real case needs: every verdict must come
        // back Unknown (counted correct), and the whole experiment must finish
        // quickly instead of running the cases to completion.
        let suite = Suite::hwmcc_like().filter(|b| b.family() == "fifo");
        assert!(!suite.is_empty());
        let runner = RunnerConfig {
            timeout: Duration::from_millis(1),
            max_conflicts: None,
            ..RunnerConfig::default()
        };
        let started = Instant::now();
        let data = run_experiment_with_workers(&suite, &[Configuration::Ric3], &runner, 2);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "cancellation failed to bound the run"
        );
        assert_eq!(data.results.len(), suite.len());
        assert_eq!(data.wrong_verdicts(), 0);
    }

    #[test]
    fn effective_workers_resolves_auto() {
        assert!(RunnerConfig::default().effective_workers() >= 1);
        let one = RunnerConfig {
            workers: 1,
            ..RunnerConfig::default()
        };
        assert_eq!(one.effective_workers(), 1);
    }

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Safe.solved());
        assert!(Verdict::Unsafe.solved());
        assert!(!Verdict::Unknown.solved());
        assert!(!Verdict::MemOut.solved());
        assert!(!Verdict::Crashed.solved());
        assert_eq!(Verdict::Unknown.to_string(), "unknown");
        assert_eq!(Verdict::MemOut.to_string(), "memout");
        assert_eq!(Verdict::Crashed.to_string(), "crashed");
    }

    #[test]
    fn tight_memory_budget_degrades_to_memout_never_aborts() {
        // A budget far too small for these cases: every verdict must come
        // back MemOut (or Unknown if something else trips first), counted
        // correct, with the process alive and well.
        let suite = Suite::hwmcc_like().filter(|b| b.family() == "fifo");
        assert!(!suite.is_empty());
        let runner = RunnerConfig {
            max_memory: Some(16 * 1024),
            ..tiny_runner()
        };
        let data = run_experiment_with_workers(&suite, &[Configuration::Ric3], &runner, 2);
        assert_eq!(data.wrong_verdicts(), 0);
        assert_eq!(data.crashed(), 0);
        assert!(
            data.memouts() > 0,
            "a 16 KiB budget must trip on at least one fifo case: {:?}",
            data.results
                .iter()
                .map(|r| (r.benchmark.as_str(), r.verdict))
                .collect::<Vec<_>>()
        );
    }
}
