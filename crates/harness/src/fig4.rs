//! Figure 4 — runtime improvement vs. the success rate of avoiding dropped
//! variables (`SR_adv`), with the cumulative count of improved cases.

use crate::report::{percent, TextTable};
use crate::{Configuration, ExperimentData};
use std::time::Duration;

/// One case of the Figure 4 analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Benchmark instance name.
    pub benchmark: String,
    /// The prediction-enabled configuration the point belongs to.
    pub configuration: Configuration,
    /// The per-case `SR_adv` of the prediction-enabled run (the x axis).
    pub sr_adv: f64,
    /// `runtime(base) / runtime(prediction)` — values above 1 mean the
    /// prediction-enabled run was faster (the left y axis).
    pub runtime_ratio: f64,
    /// Cumulative number of improved cases among all points with `SR_adv` less
    /// than or equal to this one (the right y axis).
    pub cumulative_improved: usize,
}

/// The data behind Figure 4.
#[derive(Clone, Debug, Default)]
pub struct Fig4 {
    /// Points sorted by increasing `SR_adv`.
    pub points: Vec<Point>,
    /// Cases dropped because both runs were faster than the threshold or both
    /// hit the budget (as in the paper).
    pub filtered_out: usize,
}

impl Fig4 {
    /// The Pearson correlation between `SR_adv` and the runtime ratio, if it is
    /// defined (needs at least two points with non-zero variance).
    pub fn correlation(&self) -> Option<f64> {
        let n = self.points.len();
        if n < 2 {
            return None;
        }
        let xs: Vec<f64> = self.points.iter().map(|p| p.sr_adv).collect();
        let ys: Vec<f64> = self.points.iter().map(|p| p.runtime_ratio).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (mx, my) = (mean(&xs), mean(&ys));
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for i in 0..n {
            cov += (xs[i] - mx) * (ys[i] - my);
            vx += (xs[i] - mx).powi(2);
            vy += (ys[i] - my).powi(2);
        }
        if vx == 0.0 || vy == 0.0 {
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }

    /// Number of cases where prediction improved the runtime.
    pub fn improved_cases(&self) -> usize {
        self.points.iter().filter(|p| p.runtime_ratio > 1.0).count()
    }
}

/// Builds the Figure 4 data.
///
/// As in the paper, cases where both members of the base/prediction pair hit
/// the budget or both finished faster than `fast_threshold` are ignored.
pub fn build(data: &ExperimentData, fast_threshold: Duration) -> Fig4 {
    let configs = data.configurations();
    let mut raw: Vec<Point> = Vec::new();
    let mut filtered_out = 0usize;
    for &pl in &configs {
        let Some(base) = pl.base() else { continue };
        if !configs.contains(&base) {
            continue;
        }
        for pl_result in data.for_configuration(pl) {
            let Some(base_result) = data.result_of(base, &pl_result.benchmark) else {
                continue;
            };
            let both_unknown = !pl_result.verdict.solved() && !base_result.verdict.solved();
            let both_fast =
                pl_result.runtime < fast_threshold && base_result.runtime < fast_threshold;
            if both_unknown || both_fast {
                filtered_out += 1;
                continue;
            }
            let Some(sr_adv) = pl_result.stats.sr_adv() else {
                filtered_out += 1;
                continue;
            };
            let pl_secs = pl_result.runtime_secs().max(1e-6);
            let ratio = base_result.runtime_secs() / pl_secs;
            raw.push(Point {
                benchmark: pl_result.benchmark.clone(),
                configuration: pl,
                sr_adv,
                runtime_ratio: ratio,
                cumulative_improved: 0,
            });
        }
    }
    raw.sort_by(|a, b| {
        a.sr_adv
            .partial_cmp(&b.sr_adv)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut improved = 0usize;
    for point in &mut raw {
        if point.runtime_ratio > 1.0 {
            improved += 1;
        }
        point.cumulative_improved = improved;
    }
    Fig4 {
        points: raw,
        filtered_out,
    }
}

/// Renders the figure data as a table sorted by `SR_adv`.
pub fn render(fig: &Fig4) -> String {
    let mut text = TextTable::new(vec![
        "benchmark".into(),
        "configuration".into(),
        "SR_adv".into(),
        "runtime ratio (base/pl)".into(),
        "cumulative improved".into(),
    ]);
    for p in &fig.points {
        text.add_row(vec![
            p.benchmark.clone(),
            p.configuration.label().to_string(),
            percent(Some(p.sr_adv)),
            format!("{:.3}", p.runtime_ratio),
            p.cumulative_improved.to_string(),
        ]);
    }
    let correlation = fig
        .correlation()
        .map(|c| format!("{c:.3}"))
        .unwrap_or_else(|| "n/a".to_string());
    format!(
        "Figure 4: runtime ratio vs SR_adv ({} cases, {} filtered, {} improved, correlation {})\n{}",
        fig.points.len(),
        fig.filtered_out,
        fig.improved_cases(),
        correlation,
        text.render()
    )
}

/// Renders the figure data as CSV.
pub fn to_csv(fig: &Fig4) -> String {
    let mut text = TextTable::new(vec![
        "benchmark".into(),
        "configuration".into(),
        "sr_adv".into(),
        "runtime_ratio".into(),
        "cumulative_improved".into(),
    ]);
    for p in &fig.points {
        text.add_row(vec![
            p.benchmark.clone(),
            p.configuration.label().to_string(),
            format!("{}", p.sr_adv),
            format!("{}", p.runtime_ratio),
            p.cumulative_improved.to_string(),
        ]);
    }
    text.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, RunnerConfig};
    use plic3_benchmarks::Suite;

    #[test]
    fn points_are_sorted_and_cumulative_counts_are_monotone() {
        let suite = Suite::quick();
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            fast_case_threshold: Duration::ZERO,
            ..RunnerConfig::default()
        };
        let data = run_experiment(
            &suite,
            &[Configuration::Ric3, Configuration::Ric3Pl],
            &runner,
        );
        let fig = build(&data, Duration::ZERO);
        assert!(!fig.points.is_empty(), "no Figure 4 points were produced");
        for w in fig.points.windows(2) {
            assert!(w[0].sr_adv <= w[1].sr_adv);
            assert!(w[0].cumulative_improved <= w[1].cumulative_improved);
        }
        assert!(fig.improved_cases() <= fig.points.len());
        let text = render(&fig);
        assert!(text.contains("Figure 4"));
        assert!(to_csv(&fig).starts_with("benchmark,"));
    }

    #[test]
    fn fast_cases_are_filtered() {
        let suite = Suite::quick().filter(|b| b.family() == "ring");
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            ..RunnerConfig::default()
        };
        let data = run_experiment(
            &suite,
            &[Configuration::Ric3, Configuration::Ric3Pl],
            &runner,
        );
        // With an absurdly large threshold every pair is "fast" and filtered.
        let fig = build(&data, Duration::from_secs(3600));
        assert!(fig.points.is_empty());
        assert_eq!(fig.filtered_out, suite.len());
        assert_eq!(fig.correlation(), None);
    }

    #[test]
    fn correlation_of_synthetic_points() {
        let fig = Fig4 {
            points: vec![
                Point {
                    benchmark: "a".into(),
                    configuration: Configuration::Ric3Pl,
                    sr_adv: 0.1,
                    runtime_ratio: 1.0,
                    cumulative_improved: 0,
                },
                Point {
                    benchmark: "b".into(),
                    configuration: Configuration::Ric3Pl,
                    sr_adv: 0.5,
                    runtime_ratio: 2.0,
                    cumulative_improved: 1,
                },
                Point {
                    benchmark: "c".into(),
                    configuration: Configuration::Ric3Pl,
                    sr_adv: 0.9,
                    runtime_ratio: 3.0,
                    cumulative_improved: 2,
                },
            ],
            filtered_out: 0,
        };
        let r = fig.correlation().expect("defined");
        assert!(
            (r - 1.0).abs() < 1e-9,
            "perfectly correlated synthetic data"
        );
    }
}
