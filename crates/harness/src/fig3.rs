//! Figure 3 — per-case runtime scatter: base configuration vs. the same
//! configuration with lemma prediction.

use crate::report::{seconds, TextTable};
use crate::{Configuration, ExperimentData};

/// One scatter point.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Benchmark instance name.
    pub benchmark: String,
    /// Runtime of the base configuration in seconds (timeouts count as the full
    /// per-case budget).
    pub base_secs: f64,
    /// Runtime of the prediction-enabled configuration in seconds.
    pub pl_secs: f64,
    /// Whether the base configuration solved the case.
    pub base_solved: bool,
    /// Whether the prediction-enabled configuration solved the case.
    pub pl_solved: bool,
}

impl Point {
    /// Returns `true` if the point lies below the diagonal, i.e. the
    /// prediction-enabled configuration was faster.
    pub fn below_diagonal(&self) -> bool {
        self.pl_secs < self.base_secs
    }
}

/// The scatter data of one base/prediction pair.
#[derive(Clone, Debug, PartialEq)]
pub struct Scatter {
    /// The base configuration.
    pub base: Configuration,
    /// The prediction-enabled configuration.
    pub pl: Configuration,
    /// One point per benchmark instance present in both runs.
    pub points: Vec<Point>,
}

impl Scatter {
    /// Fraction of points strictly below the diagonal (prediction faster).
    pub fn fraction_below_diagonal(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.below_diagonal()).count() as f64 / self.points.len() as f64
    }
}

/// The data behind Figure 3: one scatter per base/prediction pair present in
/// the experiment.
#[derive(Clone, Debug, Default)]
pub struct Fig3 {
    /// The scatters (RIC3 vs RIC3-pl and IC3ref vs IC3ref-pl in the paper).
    pub scatters: Vec<Scatter>,
}

/// Builds the Figure 3 data.
pub fn build(data: &ExperimentData) -> Fig3 {
    let configs = data.configurations();
    let mut scatters = Vec::new();
    for &pl in &configs {
        let Some(base) = pl.base() else { continue };
        if !configs.contains(&base) {
            continue;
        }
        let mut points = Vec::new();
        for pl_result in data.for_configuration(pl) {
            let Some(base_result) = data.result_of(base, &pl_result.benchmark) else {
                continue;
            };
            points.push(Point {
                benchmark: pl_result.benchmark.clone(),
                base_secs: base_result.runtime_secs(),
                pl_secs: pl_result.runtime_secs(),
                base_solved: base_result.verdict.solved(),
                pl_solved: pl_result.verdict.solved(),
            });
        }
        scatters.push(Scatter { base, pl, points });
    }
    Fig3 { scatters }
}

/// Renders the scatter data as per-pair tables.
pub fn render(fig: &Fig3) -> String {
    let mut out = String::from("Figure 3: runtime scatter, base vs. lemma prediction\n");
    for scatter in &fig.scatters {
        out.push_str(&format!(
            "\n{} vs {} ({} cases, {:.1}% below the diagonal)\n",
            scatter.base.label(),
            scatter.pl.label(),
            scatter.points.len(),
            100.0 * scatter.fraction_below_diagonal()
        ));
        let mut text = TextTable::new(vec![
            "benchmark".into(),
            format!("{} (s)", scatter.base.label()),
            format!("{} (s)", scatter.pl.label()),
            "faster".into(),
        ]);
        for p in &scatter.points {
            text.add_row(vec![
                p.benchmark.clone(),
                seconds(p.base_secs),
                seconds(p.pl_secs),
                if p.below_diagonal() { "pl" } else { "base" }.into(),
            ]);
        }
        out.push_str(&text.render());
    }
    out
}

/// Renders the scatter data as CSV (all pairs concatenated, tagged by pair).
pub fn to_csv(fig: &Fig3) -> String {
    let mut text = TextTable::new(vec![
        "pair".into(),
        "benchmark".into(),
        "base_secs".into(),
        "pl_secs".into(),
        "base_solved".into(),
        "pl_solved".into(),
    ]);
    for scatter in &fig.scatters {
        for p in &scatter.points {
            text.add_row(vec![
                format!("{}_vs_{}", scatter.base.label(), scatter.pl.label()),
                p.benchmark.clone(),
                format!("{}", p.base_secs),
                format!("{}", p.pl_secs),
                p.base_solved.to_string(),
                p.pl_solved.to_string(),
            ]);
        }
    }
    text.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, RunnerConfig};
    use plic3_benchmarks::Suite;
    use std::time::Duration;

    #[test]
    fn scatter_pairs_base_with_prediction_runs() {
        let suite = Suite::quick().filter(|b| matches!(b.family(), "counter" | "lock"));
        let runner = RunnerConfig {
            timeout: Duration::from_secs(5),
            ..RunnerConfig::default()
        };
        let data = run_experiment(
            &suite,
            &[
                Configuration::Ric3,
                Configuration::Ric3Pl,
                Configuration::Ic3refCav23,
            ],
            &runner,
        );
        let fig = build(&data);
        assert_eq!(fig.scatters.len(), 1, "only the RIC3 pair is complete");
        let scatter = &fig.scatters[0];
        assert_eq!(scatter.base, Configuration::Ric3);
        assert_eq!(scatter.pl, Configuration::Ric3Pl);
        assert_eq!(scatter.points.len(), suite.len());
        let fraction = scatter.fraction_below_diagonal();
        assert!((0.0..=1.0).contains(&fraction));
        let text = render(&fig);
        assert!(text.contains("Figure 3"));
        assert!(text.contains("below the diagonal"));
        assert!(to_csv(&fig).starts_with("pair,benchmark,"));
    }

    #[test]
    fn empty_scatter_is_well_behaved() {
        let scatter = Scatter {
            base: Configuration::Ric3,
            pl: Configuration::Ric3Pl,
            points: Vec::new(),
        };
        assert_eq!(scatter.fraction_below_diagonal(), 0.0);
    }
}
