//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of artificial failures — panics,
//! simulated memory exhaustion, spurious cancellations — that fire at named
//! [`FaultSite`]s inside the solver and the engines above it. The chaos test
//! suite replays hundreds of seeded schedules and asserts that every one of
//! them degrades into a reported verdict: zero wrong answers, zero hangs,
//! zero process aborts.
//!
//! The entire mechanism is **compiled away** unless the `fault-injection`
//! cargo feature is enabled: with the feature off, [`FaultPlan`] is a
//! zero-sized token and [`FaultPlan::poll`] is an `#[inline(always)]` `None`,
//! so the injection points in the solver hot path cost nothing in production
//! builds. With the feature on, each scheduled fault carries a countdown
//! ("fire on the *n*-th visit to this site"); visits are counted with shared
//! atomics so a plan cloned into several portfolio workers fires each fault
//! exactly once, whichever worker reaches it first.

#[cfg(feature = "fault-injection")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "fault-injection")]
use std::sync::Arc;

/// Places in the checker where a scheduled fault can fire.
///
/// The sites are chosen to cover every layer that holds interesting state:
/// the SAT hot path, the solver's maintenance phases, cross-worker lemma
/// exchange, and the preprocessing pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Entry of the unit-propagation loop (the hottest solver path).
    Propagate,
    /// A restart boundary, where inprocessing and DB reduction run.
    Restart,
    /// Just before a clause-arena garbage collection.
    ArenaGc,
    /// While importing a foreign lemma from a portfolio peer.
    LemmaImport,
    /// Between preprocessing rounds in `plic3-prep`.
    PrepRound,
}

/// What an injected fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with [`INJECTED_PANIC`] in the payload — exercises
    /// `catch_unwind` containment and supervisor restarts.
    Panic,
    /// Trip the [`crate::ResourceBudget`] exhaustion latch — exercises the
    /// graceful memory-out unwind.
    MemOut,
    /// Raise the [`crate::StopFlag`] — exercises spurious cancellation.
    Cancel,
}

/// Panic-payload marker for injected panics, so tests (and the portfolio
/// supervisor's crash reports) can tell an injected fault from a real bug.
pub const INJECTED_PANIC: &str = "plic3 injected fault";

#[cfg(feature = "fault-injection")]
#[derive(Debug)]
struct ScheduledFault {
    site: FaultSite,
    kind: FaultKind,
    /// Fire on the visit that makes the hit counter exceed this value.
    after: u64,
    hits: AtomicU64,
    fired: AtomicBool,
}

#[cfg(feature = "fault-injection")]
#[derive(Debug)]
struct PlanInner {
    seed: u64,
    schedule: Vec<ScheduledFault>,
}

/// A seeded schedule of injected faults; inert unless the `fault-injection`
/// feature is enabled.
///
/// Plans are cheap `Arc`ed handles like [`crate::StopFlag`]: cloning a plan
/// into several solvers shares the hit counters, so each scheduled fault
/// fires at most once across all of them.
///
/// # Example
///
/// ```
/// use plic3_sat::{FaultPlan, FaultSite};
///
/// let plan = FaultPlan::seeded(42);
/// // With the feature off this is always None; with it on, the seed decides.
/// let _ = plan.poll(FaultSite::Restart);
/// ```
#[derive(Clone, Default)]
pub struct FaultPlan {
    #[cfg(feature = "fault-injection")]
    inner: Option<Arc<PlanInner>>,
}

impl FaultPlan {
    /// A plan that never fires (the default).
    pub fn inert() -> Self {
        FaultPlan::default()
    }

    /// Derives a schedule of one to four faults from `seed`.
    ///
    /// With the `fault-injection` feature off this returns an inert plan —
    /// the seed is ignored and the injection points stay free.
    #[cfg(feature = "fault-injection")]
    pub fn seeded(seed: u64) -> Self {
        use plic3_logic::SplitMix64;

        const SITES: [FaultSite; 5] = [
            FaultSite::Propagate,
            FaultSite::Restart,
            FaultSite::ArenaGc,
            FaultSite::LemmaImport,
            FaultSite::PrepRound,
        ];
        const KINDS: [FaultKind; 3] = [FaultKind::Panic, FaultKind::MemOut, FaultKind::Cancel];

        let mut rng = SplitMix64::new(seed);
        let count = 1 + rng.below(4) as usize;
        let schedule = (0..count)
            .map(|_| {
                let site = SITES[rng.below(SITES.len() as u64) as usize];
                let kind = KINDS[rng.below(KINDS.len() as u64) as usize];
                // Countdown spans matched to how often each site is visited,
                // so faults land early, mid-flight and late in a run.
                let span = match site {
                    FaultSite::Propagate => 50_000,
                    FaultSite::Restart => 16,
                    FaultSite::ArenaGc => 4,
                    FaultSite::LemmaImport => 8,
                    FaultSite::PrepRound => 4,
                };
                ScheduledFault {
                    site,
                    kind,
                    after: rng.below(span),
                    hits: AtomicU64::new(0),
                    fired: AtomicBool::new(false),
                }
            })
            .collect();
        FaultPlan {
            inner: Some(Arc::new(PlanInner { seed, schedule })),
        }
    }

    /// Feature-off stub of [`FaultPlan::seeded`]: the plan is inert.
    #[cfg(not(feature = "fault-injection"))]
    pub fn seeded(_seed: u64) -> Self {
        FaultPlan::inert()
    }

    /// A plan with exactly one fault: `kind` fires on visit `after` (0-based)
    /// to `site`. The precision tool for targeted robustness tests.
    #[cfg(feature = "fault-injection")]
    pub fn single(site: FaultSite, kind: FaultKind, after: u64) -> Self {
        FaultPlan {
            inner: Some(Arc::new(PlanInner {
                seed: 0,
                schedule: vec![ScheduledFault {
                    site,
                    kind,
                    after,
                    hits: AtomicU64::new(0),
                    fired: AtomicBool::new(false),
                }],
            })),
        }
    }

    /// Feature-off stub of [`FaultPlan::single`]: the plan is inert.
    #[cfg(not(feature = "fault-injection"))]
    pub fn single(_site: FaultSite, _kind: FaultKind, _after: u64) -> Self {
        FaultPlan::inert()
    }

    /// A plan firing exactly the given faults, each `(site, kind, after)`
    /// entry on visit `after` (0-based) to its site. Like
    /// [`FaultPlan::single`] but for tests that need several faults — e.g.
    /// panicking a supervised retry a second time.
    #[cfg(feature = "fault-injection")]
    pub fn from_schedule(faults: &[(FaultSite, FaultKind, u64)]) -> Self {
        FaultPlan {
            inner: Some(Arc::new(PlanInner {
                seed: 0,
                schedule: faults
                    .iter()
                    .map(|&(site, kind, after)| ScheduledFault {
                        site,
                        kind,
                        after,
                        hits: AtomicU64::new(0),
                        fired: AtomicBool::new(false),
                    })
                    .collect(),
            })),
        }
    }

    /// Feature-off stub of [`FaultPlan::from_schedule`]: the plan is inert.
    #[cfg(not(feature = "fault-injection"))]
    pub fn from_schedule(_faults: &[(FaultSite, FaultKind, u64)]) -> Self {
        FaultPlan::inert()
    }

    /// Returns `true` when this plan can still fire at least one fault.
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(inner) = &self.inner {
                return inner
                    .schedule
                    .iter()
                    .any(|f| !f.fired.load(Ordering::Relaxed));
            }
        }
        false
    }

    /// Records a visit to `site` and returns the fault to execute, if one is
    /// due. Compiles to a constant `None` when the feature is off.
    #[cfg(feature = "fault-injection")]
    #[inline]
    pub fn poll(&self, site: FaultSite) -> Option<FaultKind> {
        let inner = self.inner.as_ref()?;
        for fault in &inner.schedule {
            if fault.site != site {
                continue;
            }
            let hits = fault.hits.fetch_add(1, Ordering::Relaxed);
            if hits >= fault.after
                && fault
                    .fired
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(fault.kind);
            }
        }
        None
    }

    /// Feature-off stub of [`FaultPlan::poll`]: always `None`, always inlined
    /// away.
    #[cfg(not(feature = "fault-injection"))]
    #[inline(always)]
    pub fn poll(&self, _site: FaultSite) -> Option<FaultKind> {
        None
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        #[cfg(feature = "fault-injection")]
        {
            if let Some(inner) = &self.inner {
                return f
                    .debug_struct("FaultPlan")
                    .field("seed", &inner.seed)
                    .field("faults", &inner.schedule.len())
                    .finish();
            }
        }
        f.debug_struct("FaultPlan").field("inert", &true).finish()
    }
}

/// Plans compare by schedule identity (inert plans are all equal; seeded
/// plans are equal when they share the same `Arc`). This keeps configurations
/// embedding a plan comparable without making equality depend on mutable
/// countdown state.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        #[cfg(feature = "fault-injection")]
        {
            match (&self.inner, &other.inner) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
        }
        #[cfg(not(feature = "fault-injection"))]
        {
            let _ = other;
            true
        }
    }
}

impl Eq for FaultPlan {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::inert();
        assert!(!plan.is_active());
        for _ in 0..100 {
            assert_eq!(plan.poll(FaultSite::Propagate), None);
            assert_eq!(plan.poll(FaultSite::Restart), None);
        }
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn feature_off_seeded_plans_are_inert() {
        // The default-build guarantee: a seeded plan is indistinguishable
        // from no plan at all, so injection points compile to nothing.
        let plan = FaultPlan::seeded(12345);
        assert!(!plan.is_active());
        for site in [
            FaultSite::Propagate,
            FaultSite::Restart,
            FaultSite::ArenaGc,
            FaultSite::LemmaImport,
            FaultSite::PrepRound,
        ] {
            assert_eq!(plan.poll(site), None);
        }
        assert_eq!(plan, FaultPlan::inert());
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn seeded_plans_are_deterministic_and_fire_once() {
        let a = FaultPlan::seeded(7);
        let b = FaultPlan::seeded(7);
        let sites = [
            FaultSite::Propagate,
            FaultSite::Restart,
            FaultSite::ArenaGc,
            FaultSite::LemmaImport,
            FaultSite::PrepRound,
        ];
        let drive = |plan: &FaultPlan| {
            let mut fired = Vec::new();
            for round in 0..200_000u64 {
                for site in sites {
                    if let Some(kind) = plan.poll(site) {
                        fired.push((round, site, kind));
                    }
                }
            }
            fired
        };
        let fa = drive(&a);
        let fb = drive(&b);
        assert_eq!(fa, fb, "same seed, same fault stream");
        assert!(!fa.is_empty(), "a seeded plan schedules at least one fault");
        assert!(!a.is_active(), "every fault fired exactly once");
        assert_eq!(drive(&a), Vec::new(), "no refiring");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn single_fires_at_the_requested_visit() {
        let plan = FaultPlan::single(FaultSite::LemmaImport, FaultKind::Panic, 2);
        assert_eq!(plan.poll(FaultSite::LemmaImport), None);
        assert_eq!(plan.poll(FaultSite::Restart), None, "other sites ignored");
        assert_eq!(plan.poll(FaultSite::LemmaImport), None);
        assert_eq!(plan.poll(FaultSite::LemmaImport), Some(FaultKind::Panic));
        assert_eq!(plan.poll(FaultSite::LemmaImport), None);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn clones_share_the_countdown() {
        let plan = FaultPlan::single(FaultSite::ArenaGc, FaultKind::Cancel, 1);
        let clone = plan.clone();
        assert_eq!(plan.poll(FaultSite::ArenaGc), None);
        assert_eq!(clone.poll(FaultSite::ArenaGc), Some(FaultKind::Cancel));
        assert_eq!(plan.poll(FaultSite::ArenaGc), None, "fired for all clones");
    }
}
