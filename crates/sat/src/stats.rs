//! Solver statistics.

use std::fmt;

/// Counters describing the work a [`crate::Solver`] has done so far.
///
/// The IC3 engine aggregates these per-frame-solver counters into the
/// experiment statistics reported by the harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of EMA restarts suppressed by the trail-size blocking rule.
    pub blocked_restarts: u64,
    /// Number of rephasing events (polarity-vector rotations).
    pub rephases: u64,
    /// Number of conflicts resolved by a bounded chronological backtrack
    /// instead of a full backjump.
    pub chrono_backtracks: u64,
    /// Number of learnt clauses shortened by restart-boundary vivification.
    pub vivified_clauses: u64,
    /// Number of clauses strengthened through self-subsumption (on-the-fly
    /// during conflict analysis, or by the occurrence-index inprocessing
    /// pass).
    pub strengthened_clauses: u64,
    /// Number of variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Number of resolvent clauses added by bounded variable elimination.
    pub elim_resolvents: u64,
    /// Number of clauses deleted because another clause subsumes them.
    pub subsumed_clauses: u64,
    /// Number of clauses elided by blocked-clause elimination.
    pub blocked_clauses: u64,
    /// Number of elided clauses re-attached because the caller touched
    /// eliminated state (new clause, assumption, or variable release).
    pub restored_clauses: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses removed by database reduction.
    pub removed_clauses: u64,
    /// Number of problem (non-learnt) clauses added.
    pub original_clauses: u64,
    /// Number of variables retired through `release_var`.
    pub released_vars: u64,
    /// Number of released variables recycled by a later `new_var`.
    pub recycled_vars: u64,
    /// Number of clause-arena compactions performed.
    pub garbage_collections: u64,
}

impl SolverStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the counters of `other` into `self` (used to aggregate over the
    /// per-frame solvers of IC3).
    pub fn merge(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.blocked_restarts += other.blocked_restarts;
        self.rephases += other.rephases;
        self.chrono_backtracks += other.chrono_backtracks;
        self.vivified_clauses += other.vivified_clauses;
        self.strengthened_clauses += other.strengthened_clauses;
        self.eliminated_vars += other.eliminated_vars;
        self.elim_resolvents += other.elim_resolvents;
        self.subsumed_clauses += other.subsumed_clauses;
        self.blocked_clauses += other.blocked_clauses;
        self.restored_clauses += other.restored_clauses;
        self.learnt_clauses += other.learnt_clauses;
        self.removed_clauses += other.removed_clauses;
        self.original_clauses += other.original_clauses;
        self.released_vars += other.released_vars;
        self.recycled_vars += other.recycled_vars;
        self.garbage_collections += other.garbage_collections;
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} conflicts={} decisions={} propagations={} restarts={} blocked={} rephases={} chrono={} vivified={} strengthened={} eliminated={} resolvents={} subsumed={} blocked_clauses={} restored={} learnt={} removed={} original={} released={} recycled={} gcs={}",
            self.solves,
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
            self.blocked_restarts,
            self.rephases,
            self.chrono_backtracks,
            self.vivified_clauses,
            self.strengthened_clauses,
            self.eliminated_vars,
            self.elim_resolvents,
            self.subsumed_clauses,
            self.blocked_clauses,
            self.restored_clauses,
            self.learnt_clauses,
            self.removed_clauses,
            self.original_clauses,
            self.released_vars,
            self.recycled_vars,
            self.garbage_collections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = SolverStats {
            solves: 1,
            conflicts: 2,
            decisions: 3,
            propagations: 4,
            restarts: 5,
            blocked_restarts: 12,
            rephases: 13,
            chrono_backtracks: 14,
            vivified_clauses: 15,
            strengthened_clauses: 16,
            eliminated_vars: 17,
            elim_resolvents: 18,
            subsumed_clauses: 19,
            blocked_clauses: 20,
            restored_clauses: 21,
            learnt_clauses: 6,
            removed_clauses: 7,
            original_clauses: 8,
            released_vars: 9,
            recycled_vars: 10,
            garbage_collections: 11,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.solves, 2);
        assert_eq!(a.conflicts, 4);
        assert_eq!(a.original_clauses, 16);
        assert_eq!(a.released_vars, 18);
        assert_eq!(a.recycled_vars, 20);
        assert_eq!(a.garbage_collections, 22);
        assert_eq!(a.blocked_restarts, 24);
        assert_eq!(a.rephases, 26);
        assert_eq!(a.chrono_backtracks, 28);
        assert_eq!(a.vivified_clauses, 30);
        assert_eq!(a.strengthened_clauses, 32);
        assert_eq!(a.eliminated_vars, 34);
        assert_eq!(a.elim_resolvents, 36);
        assert_eq!(a.subsumed_clauses, 38);
        assert_eq!(a.blocked_clauses, 40);
        assert_eq!(a.restored_clauses, 42);
    }

    #[test]
    fn display_mentions_all_counters() {
        let s = SolverStats::new().to_string();
        for key in [
            "solves",
            "conflicts",
            "decisions",
            "propagations",
            "restarts",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
