//! Cooperative cancellation of long-running solver calls.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, thread-safe cancellation flag.
///
/// A `StopFlag` is a cheap handle (an [`Arc`]ed atomic) that can be cloned
/// into an engine configuration and raised from another thread; every clone
/// observes the same flag. The SAT solver polls it inside its search loop, so
/// raising the flag interrupts even a single long-running query: the solver
/// returns [`crate::SatResult::Unknown`] and the engines above it surface the
/// cancellation as an "unknown" verdict.
///
/// The portfolio runner of the experiment harness uses this to enforce
/// per-case wall-clock timeouts: a watchdog thread raises the flag of every
/// case whose deadline has passed.
///
/// # Example
///
/// ```
/// use plic3_sat::StopFlag;
///
/// let flag = StopFlag::new();
/// let shared = flag.clone();
/// assert!(!flag.is_stopped());
/// shared.stop();
/// assert!(flag.is_stopped(), "all clones observe the same flag");
/// ```
#[derive(Clone, Default)]
pub struct StopFlag {
    stopped: Arc<AtomicBool>,
}

impl StopFlag {
    /// Creates a fresh, unraised flag.
    pub fn new() -> Self {
        StopFlag::default()
    }

    /// Raises the flag. All clones observe the change.
    pub fn stop(&self) {
        self.stopped.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once any clone has called [`StopFlag::stop`].
    pub fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for StopFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StopFlag")
            .field("stopped", &self.is_stopped())
            .finish()
    }
}

/// Two flags compare equal when they are in the same state. Identity is
/// deliberately ignored so that configurations embedding a `StopFlag` still
/// compare equal regardless of which runner created them.
impl PartialEq for StopFlag {
    fn eq(&self, other: &Self) -> bool {
        self.is_stopped() == other.is_stopped()
    }
}

impl Eq for StopFlag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = StopFlag::new();
        let b = a.clone();
        a.stop();
        assert!(b.is_stopped());
    }

    #[test]
    fn equality_ignores_identity() {
        let a = StopFlag::new();
        let b = StopFlag::new();
        assert_eq!(a, b);
        a.stop();
        assert_ne!(a, b);
        b.stop();
        assert_eq!(a, b);
    }

    #[test]
    fn raising_from_another_thread_is_observed() {
        let flag = StopFlag::new();
        let raiser = flag.clone();
        std::thread::spawn(move || raiser.stop())
            .join()
            .expect("raiser thread");
        assert!(flag.is_stopped());
    }
}
