//! Flat clause arena: contiguous `u32` storage for every clause in the solver.
//!
//! Each clause is a header of [`HEADER_WORDS`] `u32` words followed by its
//! literal codes, all living inline in one `Vec<u32>` bump arena:
//!
//! ```text
//! word 0   len << 3 | learnt << 2 | deleted << 1 | relocated
//! word 1   LBD (literal block distance), or forwarding ClauseRef when relocated
//! word 2   activity (f64) low bits
//! word 3   activity (f64) high bits
//! word 4.. literal codes (2 * var + sign), `len` of them
//! ```
//!
//! A [`ClauseRef`] is the offset of word 0. Deleting a clause only sets a flag
//! and counts the words as wasted; [`ClauseArena::garbage_collect`] compacts
//! the storage and hands back a relocation oracle so the solver can patch
//! every stored reference (watch lists, reasons, clause lists).

use plic3_logic::Lit;

/// Reference to a clause: the arena offset of its header word.
pub(crate) type ClauseRef = u32;

/// Number of header words preceding the literals of a clause.
pub(crate) const HEADER_WORDS: u32 = 4;

const LEARNT_FLAG: u32 = 1 << 2;
const DELETED_FLAG: u32 = 1 << 1;
const RELOCATED_FLAG: u32 = 1;
const LEN_SHIFT: u32 = 3;

/// The bump arena holding every clause of a solver.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by deleted clauses (headers included).
    wasted: usize,
}

impl ClauseArena {
    pub(crate) fn new() -> Self {
        ClauseArena::default()
    }

    fn with_capacity(words: usize) -> Self {
        ClauseArena {
            data: Vec::with_capacity(words),
            wasted: 0,
        }
    }

    /// Total words currently in use (including wasted ones).
    pub(crate) fn words(&self) -> usize {
        self.data.len()
    }

    /// Bytes of backing storage currently reserved (capacity, not length):
    /// what the solver charges against its [`crate::ResourceBudget`].
    pub(crate) fn capacity_bytes(&self) -> u64 {
        (self.data.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Words occupied by deleted clauses, reclaimable by a collection.
    pub(crate) fn wasted(&self) -> usize {
        self.wasted
    }

    /// Appends a clause and returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "arena clauses have at least two literals");
        let cref = self.data.len() as ClauseRef;
        let flags = if learnt { LEARNT_FLAG } else { 0 };
        self.data.push((lits.len() as u32) << LEN_SHIFT | flags);
        self.data.push(0); // LBD; the solver stamps learnt clauses after analyze
        self.data.push(0); // activity low
        self.data.push(0); // activity high
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        cref
    }

    #[inline]
    pub(crate) fn len(&self, cref: ClauseRef) -> usize {
        (self.data[cref as usize] >> LEN_SHIFT) as usize
    }

    /// Length and deleted flag from a single header read (the propagation
    /// loop's one-touch probe).
    #[inline]
    pub(crate) fn len_and_deleted(&self, cref: ClauseRef) -> (usize, bool) {
        let header = self.data[cref as usize];
        ((header >> LEN_SHIFT) as usize, header & DELETED_FLAG != 0)
    }

    #[inline]
    pub(crate) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.data[cref as usize] & LEARNT_FLAG != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.data[cref as usize] & DELETED_FLAG != 0
    }

    /// Clears the learnt flag: the clause becomes irredundant. Used when a
    /// learnt clause subsumes an original and must outlive database
    /// reduction in its stead.
    pub(crate) fn clear_learnt(&mut self, cref: ClauseRef) {
        debug_assert!(self.is_learnt(cref));
        self.data[cref as usize] &= !LEARNT_FLAG;
    }

    /// Marks the clause deleted; the storage is reclaimed by the next
    /// [`ClauseArena::garbage_collect`]. Watchers pointing at it are dropped
    /// lazily when propagation next visits them.
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_deleted(cref));
        self.data[cref as usize] |= DELETED_FLAG;
        self.wasted += HEADER_WORDS as usize + self.len(cref);
    }

    #[inline]
    pub(crate) fn lit(&self, cref: ClauseRef, i: usize) -> Lit {
        debug_assert!(i < self.len(cref));
        Lit::from_code(self.data[cref as usize + HEADER_WORDS as usize + i])
    }

    #[inline]
    pub(crate) fn swap_lits(&mut self, cref: ClauseRef, i: usize, j: usize) {
        debug_assert!(i < self.len(cref) && j < self.len(cref));
        let base = cref as usize + HEADER_WORDS as usize;
        self.data.swap(base + i, base + j);
    }

    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.data[cref as usize + 1]
    }

    pub(crate) fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        self.data[cref as usize + 1] = lbd;
    }

    pub(crate) fn activity(&self, cref: ClauseRef) -> f64 {
        let lo = self.data[cref as usize + 2] as u64;
        let hi = self.data[cref as usize + 3] as u64;
        f64::from_bits(hi << 32 | lo)
    }

    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f64) {
        let bits = activity.to_bits();
        self.data[cref as usize + 2] = bits as u32;
        self.data[cref as usize + 3] = (bits >> 32) as u32;
    }

    /// Compacts the arena, dropping deleted clauses. Returns the new arena
    /// paired with a relocation table usable through [`Relocation::map`]; the
    /// old arena (self) is consumed as the table's backing store.
    pub(crate) fn garbage_collect(mut self) -> (ClauseArena, Relocation) {
        let mut to = ClauseArena::with_capacity(self.data.len() - self.wasted);
        let mut from = 0usize;
        while from < self.data.len() {
            let header = self.data[from];
            let len = (header >> LEN_SHIFT) as usize;
            let words = HEADER_WORDS as usize + len;
            if header & DELETED_FLAG == 0 {
                let new_ref = to.data.len() as ClauseRef;
                to.data.extend_from_slice(&self.data[from..from + words]);
                // Leave a forwarding pointer in the old header.
                self.data[from] |= RELOCATED_FLAG;
                self.data[from + 1] = new_ref;
            }
            from += words;
        }
        (to, Relocation { old: self })
    }
}

/// Relocation oracle produced by [`ClauseArena::garbage_collect`].
pub(crate) struct Relocation {
    old: ClauseArena,
}

impl Relocation {
    /// Maps a pre-collection reference to its post-collection location.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the clause was deleted rather than moved.
    pub(crate) fn map(&self, cref: ClauseRef) -> ClauseRef {
        let header = self.old.data[cref as usize];
        debug_assert!(
            header & RELOCATED_FLAG != 0,
            "relocating a deleted clause reference"
        );
        self.old.data[cref as usize + 1]
    }

    /// `true` if the clause survived the collection (i.e. [`Relocation::map`]
    /// is valid for it). Lets caches holding possibly-deleted references
    /// filter before mapping.
    pub(crate) fn survives(&self, cref: ClauseRef) -> bool {
        self.old.data[cref as usize] & RELOCATED_FLAG != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(codes: &[u32]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_roundtrips_literals_and_flags() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&lits(&[0, 3, 4]), false);
        let b = arena.alloc(&lits(&[5, 7]), true);
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.len(b), 2);
        assert!(!arena.is_learnt(a));
        assert!(arena.is_learnt(b));
        assert_eq!(arena.lit(a, 1), Lit::from_code(3));
        assert_eq!(arena.lit(b, 0), Lit::from_code(5));
        arena.swap_lits(a, 0, 2);
        assert_eq!(arena.lit(a, 0), Lit::from_code(4));
        assert_eq!(arena.lit(a, 2), Lit::from_code(0));
    }

    #[test]
    fn activity_and_lbd_are_stored_inline() {
        let mut arena = ClauseArena::new();
        let c = arena.alloc(&lits(&[0, 2]), true);
        assert_eq!(arena.activity(c), 0.0);
        arena.set_activity(c, 1.25e30);
        assert_eq!(arena.activity(c), 1.25e30);
        arena.set_lbd(c, 7);
        assert_eq!(arena.lbd(c), 7);
    }

    #[test]
    fn delete_tracks_wasted_words() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&lits(&[0, 2, 4]), false);
        let _b = arena.alloc(&lits(&[1, 3]), false);
        assert_eq!(arena.wasted(), 0);
        arena.delete(a);
        assert!(arena.is_deleted(a));
        assert_eq!(arena.wasted(), HEADER_WORDS as usize + 3);
    }

    #[test]
    fn garbage_collect_compacts_and_forwards() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&lits(&[0, 2, 4]), false);
        let b = arena.alloc(&lits(&[1, 3]), true);
        let c = arena.alloc(&lits(&[6, 8]), false);
        arena.set_activity(b, 2.5);
        arena.delete(a);
        let (compact, reloc) = arena.garbage_collect();
        let nb = reloc.map(b);
        let nc = reloc.map(c);
        assert_eq!(compact.wasted(), 0);
        assert_eq!(
            compact.words(),
            2 * (HEADER_WORDS as usize + 2),
            "only b and c survive"
        );
        assert!(compact.is_learnt(nb));
        assert_eq!(compact.activity(nb), 2.5);
        assert_eq!(compact.lit(nb, 1), Lit::from_code(3));
        assert_eq!(compact.lit(nc, 0), Lit::from_code(6));
    }
}
