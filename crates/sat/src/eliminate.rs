//! Incremental-safe CNF inprocessing: bounded variable elimination (BVE),
//! forward/backward subsumption with self-subsuming strengthening, and
//! blocked-clause elimination (BCE), all over a per-round occurrence index.
//!
//! This is a child module of `solver` (wired with `#[path]` so the file lives
//! at `src/eliminate.rs`): the elimination passes are `impl Solver` methods
//! with direct access to the solver's private state.
//!
//! # Soundness under incrementality
//!
//! Elimination removes clauses from the *solver's* database without removing
//! them from the *formula the caller cares about*, so three contracts keep the
//! incremental API honest (see `docs/SAT_SEARCH.md` for the full argument):
//!
//! * **Freezing.** A frozen variable is never chosen as a BVE pivot or a BCE
//!   witness. Every assumption variable of every `solve` call is frozen
//!   sticky (this is what makes IC3's activation-literal discipline safe:
//!   activation variables are assumed before elimination can ever observe
//!   them), and callers can freeze interface variables explicitly with
//!   [`Solver::set_frozen`]. The freeze bit is cleared when `release_var`'s
//!   free list hands the variable index back out through `new_var`, so a
//!   recycled activation variable starts life unfrozen like any fresh one.
//! * **Elision + reconstruction.** Removed clauses are *elided*: pushed onto
//!   a reconstruction stack as `(witness, clause)` pairs and deleted from the
//!   solver without a proof `Delete` line (keeping them in the checker's
//!   database is always sound — extra clauses only make RUP checks easier —
//!   and means restoring them later needs no unjustifiable `Add`). After a
//!   `Sat` answer the model buffer is repaired by walking the stack newest to
//!   oldest, flipping each entry's witness when its clause is unsatisfied;
//!   this is the standard RAT-witness reconstruction and yields a model of
//!   every clause the caller ever added.
//! * **Restore.** When the caller touches elided state — a new clause or
//!   assumption over a variable that is a witness of some stack entry, or
//!   `release_var` on a variable an entry merely mentions — the whole stack
//!   is restored (re-attached) first and the triggering variables are frozen,
//!   so the solver never reasons about a formula weaker than the caller's.
//!
//! Every derived resolvent and strengthened clause is emitted through the
//! [`ProofRecorder`](crate::proof) as a plain RUP `Add` *before* its parents
//! are removed, so `plic3-check`'s backward DRAT checker verifies elimination
//! exactly like every other inference.

use super::{Solver, L_FALSE, L_TRUE, L_UNDEF, NO_REASON};
use crate::arena::{ClauseRef, Relocation};
use plic3_logic::{Lit, Var};

/// Cap on the subsumption queue: learnt clauses attached past the cap are not
/// enqueued as subsumer candidates (a performance hint, not an obligation).
const TOUCHED_CAP: usize = 4096;

/// Clauses longer than this are not used as subsumers (long clauses almost
/// never subsume anything and stamping them is pure cost).
const SUBSUMER_LEN_CAP: usize = 12;

/// Literal-visit budget of one subsumption pass; bounds the inprocessing cost
/// to a fraction of the search effort between two elimination rounds.
const SUBSUME_LIT_BUDGET: u64 = 120_000;

/// A variable with more than this many occurrences of either polarity is
/// never tried as a BVE pivot.
const BVE_SIDE_CAP: usize = 16;

/// Bound on `pos × neg` occurrence products tried by BVE.
const BVE_PRODUCT_CAP: usize = 96;

/// A BVE resolvent longer than this vetoes the elimination of its pivot.
const BVE_RESOLVENT_LIT_CAP: usize = 24;

/// Original clauses inspected per blocked-clause-elimination round.
const BCE_CLAUSES_PER_ROUND: usize = 192;

/// BCE only checks blocking literals whose negation has at most this many
/// occurrences.
const BCE_OCC_CAP: usize = 10;

/// One elided clause: flipping `witness` satisfies `lits` without breaking
/// any clause that was still in the database when the entry was pushed (the
/// RAT-witness property BVE and BCE both establish).
struct ReconEntry {
    witness: Lit,
    /// The clause verbatim as it was elided, sorted. Level-0-false literals
    /// are kept on purpose: no `Delete` is logged at elision, so the DRAT
    /// checker's database still holds this exact form, and the restore path
    /// (`reattach_restored`) derives any shortening from it with an explicit
    /// `Add`. Storing a pre-shortened clause instead would let a later
    /// `Delete` reference a form the checker never saw.
    lits: Vec<Lit>,
}

/// Elimination state owned by a [`Solver`].
pub(super) struct Eliminator {
    /// Occurrence lists by literal code, rebuilt each round (original and
    /// learnt clauses; consumers filter by `is_learnt` where it matters).
    /// Cleared outside rounds so stale [`ClauseRef`]s never cross a GC.
    occurs: Vec<Vec<ClauseRef>>,
    /// Subsumer queue: clauses attached since the last round.
    touched: Vec<ClauseRef>,
    /// Whether the one-time seeding of `touched` with every original clause
    /// has happened (first round only).
    seeded: bool,
    /// Frozen variables: never a BVE pivot or BCE witness. Sticky; cleared on
    /// free-list recycling.
    frozen: Vec<bool>,
    /// Variables eliminated by BVE (skipped by decisions; restore clears).
    eliminated: Vec<bool>,
    /// Per variable: number of stack entries whose witness is on it.
    witness_count: Vec<u32>,
    /// Per variable: number of stack entry literals over it (witnesses
    /// included). Guards `release_var` against recycling a mentioned index.
    mentions: Vec<u32>,
    /// The reconstruction stack, oldest first.
    stack: Vec<ReconEntry>,
    /// Rotating cursor of the BCE pass over the original clause list.
    bce_head: usize,
    /// Global conflict count at the last elimination round (pacing).
    pub(super) last_elim_conflicts: u64,
    /// Per-literal stamps for subset / tautology tests.
    lit_stamp: Vec<u64>,
    stamp: u64,
}

impl Eliminator {
    pub(super) fn new() -> Self {
        Eliminator {
            occurs: Vec::new(),
            touched: Vec::new(),
            seeded: false,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            witness_count: Vec::new(),
            mentions: Vec::new(),
            stack: Vec::new(),
            bce_head: 0,
            last_elim_conflicts: 0,
            lit_stamp: Vec::new(),
            stamp: 0,
        }
    }

    /// Grows the per-variable state alongside `Solver::fresh_var`.
    pub(super) fn on_fresh_var(&mut self) {
        self.frozen.push(false);
        self.eliminated.push(false);
        self.witness_count.push(0);
        self.mentions.push(0);
    }

    /// `true` while any elided clause is on the reconstruction stack.
    #[inline]
    pub(super) fn has_entries(&self) -> bool {
        !self.stack.is_empty()
    }

    /// `true` if some stack entry's witness lives on `v` (a new clause or
    /// assumption over `v` must restore first).
    #[inline]
    pub(super) fn is_witness_var(&self, v: usize) -> bool {
        self.witness_count[v] > 0
    }

    /// `true` if some stack entry mentions `v` at all (recycling `v` must
    /// restore first).
    #[inline]
    pub(super) fn is_mentioned_var(&self, v: usize) -> bool {
        self.mentions[v] > 0
    }

    /// Clears the freeze bit when the free list recycles a variable.
    pub(super) fn on_recycle(&mut self, v: usize) {
        debug_assert!(!self.eliminated[v], "recycling an eliminated variable");
        debug_assert_eq!(self.mentions[v], 0, "recycling a mentioned variable");
        self.frozen[v] = false;
    }

    /// Queues a freshly attached clause as a subsumer candidate.
    #[inline]
    pub(super) fn touch(&mut self, cref: ClauseRef) {
        if self.touched.len() < TOUCHED_CAP {
            self.touched.push(cref);
        }
    }

    /// Drops deleted queue entries and relocates the rest across a GC.
    /// (`occurs` is only populated inside a round and no GC runs there, so
    /// the queue is the only `ClauseRef` store that crosses collections.)
    pub(super) fn relocate(&mut self, reloc: &Relocation) {
        self.touched.retain(|&c| reloc.survives(c));
        for c in self.touched.iter_mut() {
            *c = reloc.map(*c);
        }
    }

    /// `true` if the variable with dense index `v` is currently eliminated.
    #[inline]
    pub(super) fn is_eliminated_idx(&self, v: usize) -> bool {
        self.eliminated[v]
    }
}

impl Solver {
    /// Freezes (or thaws) a variable for CNF inprocessing: a frozen variable
    /// is never eliminated by bounded variable elimination and never used as
    /// a blocked-clause witness, so its model value and its role in future
    /// clauses/assumptions are exactly as if inprocessing were off.
    ///
    /// Assumption variables are frozen automatically on every
    /// [`Solver::solve`] call; explicit freezing is for interface variables
    /// the caller reads from models or plans to constrain later (IC3 freezes
    /// every state, prime, and input variable). Freezing is sticky until the
    /// variable is retired through [`Solver::release_var`] and recycled by
    /// [`Solver::new_var`].
    pub fn set_frozen(&mut self, var: Var, frozen: bool) {
        self.ensure_var(var);
        let v = var.index();
        if frozen && self.elim.is_witness_var(v) {
            self.restore_eliminated();
        }
        self.elim.frozen[v] = frozen;
    }

    /// `true` if `var` is currently eliminated (its clauses are elided; the
    /// solver will restore them transparently if the variable is mentioned by
    /// a new clause or assumption).
    pub fn is_eliminated(&self, var: Var) -> bool {
        self.elim
            .eliminated
            .get(var.index())
            .copied()
            .unwrap_or(false)
    }

    /// Freezes a variable by dense index without the restore check (the
    /// caller restores explicitly; used by the `add_clause` trigger path).
    pub(super) fn set_frozen_raw(&mut self, v: usize) {
        self.elim.frozen[v] = true;
    }

    /// Freezes every assumption variable of the current `solve` call and
    /// restores elided clauses whose witnesses the assumptions touch (a
    /// repair flip on a witness could otherwise violate an assumption).
    pub(super) fn freeze_assumptions(&mut self) {
        let mut restore = false;
        for i in 0..self.assumptions.len() {
            let v = self.assumptions[i].var().index();
            self.elim.frozen[v] = true;
            restore |= self.elim.is_witness_var(v);
        }
        if restore {
            self.restore_eliminated();
        }
    }

    /// Restores every elided clause: re-attaches the reconstruction stack and
    /// un-eliminates every variable. Runs at decision level 0; rare by
    /// construction (triggers freeze the variables involved, so the same
    /// variable never thrashes).
    pub(super) fn restore_eliminated(&mut self) {
        if !self.elim.has_entries() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let stack = std::mem::take(&mut self.elim.stack);
        self.elim.witness_count.fill(0);
        self.elim.mentions.fill(0);
        for v in 0..self.elim.eliminated.len() {
            if self.elim.eliminated[v] {
                self.elim.eliminated[v] = false;
                // The variable is decidable again; put it back in the heap.
                self.order_heap.insert(v, &self.activity);
            }
        }
        for entry in &stack {
            self.stats.restored_clauses += 1;
            self.reattach_restored(&entry.lits);
        }
    }

    /// Re-attaches one restored clause. Its DRAT `Delete` was skipped at
    /// elision time, so the checker still holds it: no `Input` line is
    /// emitted, and only a shortening (by newer level-0 units) needs an
    /// `Add` (RUP via those units and the original).
    fn reattach_restored(&mut self, lits: &[Lit]) {
        if !self.ok {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                L_TRUE => return, // satisfied at level 0: stays elided-as-satisfied
                v if v >= L_UNDEF => kept.push(l),
                _ => {} // false at level 0: drop
            }
        }
        if self.proof.is_active() && kept.len() != lits.len() && !kept.is_empty() {
            self.proof.add(&kept);
        }
        match kept.len() {
            0 => {
                self.ok = false;
                if self.proof.is_active() {
                    self.proof.add(&[]);
                }
            }
            1 => {
                self.unchecked_enqueue(kept[0], NO_REASON);
                self.ok = self.propagate().is_none();
                if !self.ok && self.proof.is_active() {
                    self.proof.add(&[]);
                }
            }
            _ => {
                let cref = self.attach_clause(&kept, false);
                self.clauses.push(cref);
            }
        }
    }

    /// Repairs the model buffer after a `Sat` answer: walks the
    /// reconstruction stack newest to oldest and flips each entry's witness
    /// when its clause is unsatisfied. By the RAT-witness property each flip
    /// preserves every clause that was still attached when the entry was
    /// pushed, so the walk ends on a model of every clause the caller added.
    ///
    /// The witness argument requires the assignment to be *total* over every
    /// variable the stack mentions: a tautological resolvent is skipped
    /// during elimination precisely because one of its two clashing literals
    /// must be true, and with the clashing variable unset neither is — a
    /// positive- and a negative-witness entry for the same pivot could then
    /// flip it back and forth and leave one of them falsified. So the walk
    /// first totalizes the model over stack variables (eliminated variables
    /// are unassigned by search; `false` is as good a completion as any).
    pub(super) fn repair_model(&mut self) {
        let stack = &self.elim.stack;
        let model = &mut self.model;
        for entry in stack.iter() {
            for l in entry.lits.iter().chain(std::iter::once(&entry.witness)) {
                let slot = &mut model[l.var().index()];
                if *slot >= L_UNDEF {
                    *slot = L_FALSE;
                }
            }
        }
        for entry in stack.iter().rev() {
            let satisfied = entry
                .lits
                .iter()
                .any(|&l| model[l.var().index()] ^ l.is_neg() as u8 == L_TRUE);
            if !satisfied {
                let w = entry.witness;
                model[w.var().index()] = w.is_neg() as u8;
            }
        }
    }

    // ------------------------------------------------------------------
    // The elimination round
    // ------------------------------------------------------------------

    /// One bounded elimination round at a restart boundary: forced top-level
    /// simplification, occurrence-index build, subsumption/strengthening,
    /// BVE, BCE, and a sweep of learnt clauses over freshly eliminated
    /// variables.
    pub(super) fn eliminate_round(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok || !self.simplify_inner(true) {
            return;
        }
        self.build_occurrences();
        self.subsume_pass();
        let mut swept = false;
        if self.ok {
            swept = self.bve_pass();
        }
        if self.ok {
            self.bce_pass();
        }
        if self.ok && swept {
            self.sweep_eliminated_learnts();
        }
        for list in self.elim.occurs.iter_mut() {
            list.clear();
        }
        self.check_garbage();
    }

    fn build_occurrences(&mut self) {
        let codes = 2 * self.num_vars();
        if self.elim.occurs.len() < codes {
            self.elim.occurs.resize_with(codes, Vec::new);
        }
        if self.elim.lit_stamp.len() < codes {
            self.elim.lit_stamp.resize(codes, 0);
        }
        for list in self.elim.occurs.iter_mut() {
            list.clear();
        }
        for i in 0..self.clauses.len() {
            let cref = self.clauses[i];
            if !self.arena.is_deleted(cref) {
                self.occ_insert(cref);
            }
        }
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            if !self.arena.is_deleted(cref) {
                self.occ_insert(cref);
            }
        }
    }

    fn occ_insert(&mut self, cref: ClauseRef) {
        for k in 0..self.arena.len(cref) {
            let code = self.arena.lit(cref, k).code();
            self.elim.occurs[code].push(cref);
        }
    }

    // ------------------------------------------------------------------
    // Subsumption and self-subsuming strengthening
    // ------------------------------------------------------------------

    /// Backward subsumption over the occurrence index: every queued clause
    /// (learnt clauses attached since the last round, resolvents, and — once,
    /// on the first round — every original clause) is used as a subsumer.
    /// Full subset matches delete the subsumed clause; off-by-one-negation
    /// matches strengthen it (self-subsumption). A learnt clause that
    /// subsumes an original is promoted to irredundant first, so database
    /// reduction can never drop the only clause carrying a constraint.
    fn subsume_pass(&mut self) {
        let mut queue = std::mem::take(&mut self.elim.touched);
        if !self.elim.seeded {
            self.elim.seeded = true;
            let arena = &self.arena;
            queue.extend(self.clauses.iter().filter(|&&c| !arena.is_deleted(c)));
        }
        let mut budget = SUBSUME_LIT_BUDGET;
        let mut sub_lits: Vec<Lit> = Vec::new();
        let mut cands: Vec<ClauseRef> = Vec::new();
        let mut promoted = false;
        let mut qi = 0;
        while qi < queue.len() {
            let c = queue[qi];
            qi += 1;
            if budget == 0 || !self.ok {
                break;
            }
            if self.arena.is_deleted(c) {
                continue;
            }
            let len = self.arena.len(c);
            if !(2..=SUBSUMER_LEN_CAP).contains(&len) {
                continue;
            }
            sub_lits.clear();
            sub_lits.extend((0..len).map(|k| self.arena.lit(c, k)));
            if sub_lits.iter().any(|&l| self.lit_value(l) == L_TRUE) {
                continue; // satisfied since the round started
            }
            self.elim.stamp += 1;
            let st = self.elim.stamp;
            for &l in &sub_lits {
                self.elim.lit_stamp[l.code()] = st;
            }
            // Scan the shortest occurrence list among c's literals.
            let l_min = *sub_lits
                .iter()
                .min_by_key(|l| self.elim.occurs[l.code()].len())
                .expect("non-empty subsumer");
            cands.clear();
            cands.extend_from_slice(&self.elim.occurs[l_min.code()]);
            for &d in &cands {
                if budget == 0 || !self.ok {
                    break;
                }
                if d == c || self.arena.is_deleted(d) || self.arena.is_deleted(c) {
                    continue;
                }
                let dlen = self.arena.len(d);
                if dlen < len {
                    continue;
                }
                budget = budget.saturating_sub(dlen as u64);
                let mut marked = 0usize;
                let mut negated: Option<Lit> = None;
                let mut negs = 0usize;
                for k in 0..dlen {
                    let q = self.arena.lit(d, k);
                    if self.elim.lit_stamp[q.code()] == st {
                        marked += 1;
                    } else if self.elim.lit_stamp[(!q).code()] == st {
                        negs += 1;
                        negated = Some(q);
                    }
                }
                if marked == len {
                    // c subsumes d. If a learnt subsumes an original, the
                    // learnt must become irredundant before the original goes.
                    if !self.arena.is_learnt(d) && self.arena.is_learnt(c) {
                        self.arena.clear_learnt(c);
                        self.clauses.push(c);
                        promoted = true;
                    }
                    self.delete_clause(d);
                    self.stats.subsumed_clauses += 1;
                } else if marked + 1 == len && negs == 1 {
                    // Self-subsumption: the resolvent of c and d on `negated`
                    // is d minus `negated`, so d can be strengthened.
                    let new_cref = self.strengthen_clause(d, negated.expect("negs == 1"));
                    if let Some(nc) = new_cref {
                        self.occ_insert(nc);
                        if queue.len() < TOUCHED_CAP {
                            queue.push(nc);
                        }
                    }
                }
            }
        }
        if promoted {
            let arena = &self.arena;
            self.learnts
                .retain(|&c| !arena.is_deleted(c) && arena.is_learnt(c));
            self.stats.learnt_clauses = self.learnts.len() as u64;
        }
        queue.clear();
        self.elim.touched = queue;
    }

    /// Removes `drop` from the attached clause `cref` (the strengthened
    /// clause is RUP while both resolution parents are attached, so the `Add`
    /// precedes the `Delete`). Returns the replacement's reference when the
    /// result is still a clause of length ≥ 2.
    fn strengthen_clause(&mut self, cref: ClauseRef, drop: Lit) -> Option<ClauseRef> {
        let mut kept: Vec<Lit> = Vec::new();
        for k in 0..self.arena.len(cref) {
            let l = self.arena.lit(cref, k);
            if l == drop {
                continue;
            }
            match self.lit_value(l) {
                L_TRUE => return None, // satisfied: leave it for the next sweep
                v if v >= L_UNDEF => kept.push(l),
                _ => {} // false at level 0: drop alongside the pivot
            }
        }
        if self.proof.is_active() && !kept.is_empty() {
            self.proof.add(&kept);
        }
        let was_learnt = self.arena.is_learnt(cref);
        let old_lbd = self.arena.lbd(cref);
        let old_activity = self.arena.activity(cref);
        self.delete_clause(cref);
        self.stats.strengthened_clauses += 1;
        match kept.len() {
            0 => {
                self.ok = false;
                if self.proof.is_active() {
                    self.proof.add(&[]);
                }
                None
            }
            1 => {
                if self.lit_value(kept[0]) >= L_UNDEF {
                    self.unchecked_enqueue(kept[0], NO_REASON);
                    self.ok = self.propagate().is_none();
                } else {
                    self.ok = false;
                }
                if !self.ok && self.proof.is_active() {
                    self.proof.add(&[]);
                }
                None
            }
            _ => {
                let nc = self.attach_clause(&kept, was_learnt);
                if was_learnt {
                    self.arena.set_lbd(nc, old_lbd.min(kept.len() as u32));
                    self.arena.set_activity(nc, old_activity);
                } else {
                    self.clauses.push(nc);
                }
                Some(nc)
            }
        }
    }

    // ------------------------------------------------------------------
    // Bounded variable elimination
    // ------------------------------------------------------------------

    /// SatELite-style bounded variable elimination: a pivot is eliminated
    /// when its non-tautological resolvent set is no larger than the clauses
    /// it replaces (and no resolvent exceeds the literal cap). Resolvents are
    /// added (and DRAT-logged) before the parents are elided, so every `Add`
    /// is plain RUP. Returns `true` when at least one variable was
    /// eliminated (the learnt sweep is then due).
    fn bve_pass(&mut self) -> bool {
        let mut any = false;
        let mut pos: Vec<ClauseRef> = Vec::new();
        let mut neg: Vec<ClauseRef> = Vec::new();
        let mut resolvents: Vec<Vec<Lit>> = Vec::new();
        'vars: for vi in 0..self.num_vars() {
            if !self.ok {
                break;
            }
            if self.elim.frozen[vi]
                || self.elim.eliminated[vi]
                || self.free_mark[vi]
                || self.assigns[vi] < L_UNDEF
            {
                continue;
            }
            let p = Lit::pos(Var::new(vi as u32));
            self.gather_occurrences(p, &mut pos);
            self.gather_occurrences(!p, &mut neg);
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() > BVE_SIDE_CAP
                || neg.len() > BVE_SIDE_CAP
                || pos.len() * neg.len() > BVE_PRODUCT_CAP
            {
                continue;
            }
            let limit = pos.len() + neg.len();
            resolvents.clear();
            for &cp in &pos {
                for &cn in &neg {
                    if let Some(r) = self.resolve_on(cp, cn, p) {
                        if r.len() > BVE_RESOLVENT_LIT_CAP {
                            continue 'vars;
                        }
                        resolvents.push(r);
                        if resolvents.len() > limit {
                            continue 'vars;
                        }
                    }
                }
            }
            // Commit: add every resolvent, then elide every parent.
            self.stats.eliminated_vars += 1;
            any = true;
            for r in resolvents.drain(..) {
                if !self.ok {
                    break;
                }
                self.commit_resolvent(&r);
            }
            if !self.ok {
                break;
            }
            for &c in pos.iter().chain(neg.iter()) {
                self.elide_clause(c, p);
            }
            self.elim.eliminated[vi] = true;
        }
        any
    }

    /// Fills `out` with the live, unsatisfied, non-learnt clauses containing
    /// `lit` (the BVE/BCE environment; satisfied clauses are implied by
    /// top-level units and can be ignored wholesale).
    fn gather_occurrences(&self, lit: Lit, out: &mut Vec<ClauseRef>) {
        out.clear();
        for &c in &self.elim.occurs[lit.code()] {
            if self.arena.is_deleted(c) || self.arena.is_learnt(c) {
                continue;
            }
            if self.clause_is_satisfied(c) {
                continue;
            }
            out.push(c);
        }
    }

    /// The resolvent of `cp` (contains `pivot`) and `cn` (contains `!pivot`),
    /// with level-0-false literals dropped. `None` for tautologies and
    /// resolvents satisfied at the top level (both are redundant).
    fn resolve_on(&mut self, cp: ClauseRef, cn: ClauseRef, pivot: Lit) -> Option<Vec<Lit>> {
        self.elim.stamp += 1;
        let st = self.elim.stamp;
        let mut r: Vec<Lit> = Vec::new();
        for k in 0..self.arena.len(cp) {
            let l = self.arena.lit(cp, k);
            if l == pivot {
                continue;
            }
            match self.lit_value(l) {
                L_TRUE => return None,
                v if v >= L_UNDEF => {
                    self.elim.lit_stamp[l.code()] = st;
                    r.push(l);
                }
                _ => {}
            }
        }
        for k in 0..self.arena.len(cn) {
            let l = self.arena.lit(cn, k);
            if l == !pivot {
                continue;
            }
            match self.lit_value(l) {
                L_TRUE => return None,
                v if v >= L_UNDEF => {
                    if self.elim.lit_stamp[(!l).code()] == st {
                        return None; // tautological resolvent
                    }
                    if self.elim.lit_stamp[l.code()] != st {
                        self.elim.lit_stamp[l.code()] = st;
                        r.push(l);
                    }
                }
                _ => {}
            }
        }
        Some(r)
    }

    /// Adds one BVE resolvent to the database (and the proof): the parents
    /// are still attached, so the resolvent is RUP.
    fn commit_resolvent(&mut self, r: &[Lit]) {
        // A unit enqueued by an earlier resolvent may have assigned one of
        // our literals since construction; re-filter.
        let mut kept: Vec<Lit> = Vec::with_capacity(r.len());
        for &l in r {
            match self.lit_value(l) {
                L_TRUE => return, // already satisfied at level 0
                v if v >= L_UNDEF => kept.push(l),
                _ => {}
            }
        }
        if self.proof.is_active() {
            self.proof.add(&kept);
        }
        match kept.len() {
            0 => self.ok = false,
            1 => {
                self.unchecked_enqueue(kept[0], NO_REASON);
                self.ok = self.propagate().is_none();
                if !self.ok && self.proof.is_active() {
                    self.proof.add(&[]);
                }
            }
            _ => {
                let cref = self.attach_clause(&kept, false);
                self.clauses.push(cref);
                self.stats.elim_resolvents += 1;
                self.occ_insert(cref);
                self.elim.touch(cref);
            }
        }
    }

    /// Elides one clause onto the reconstruction stack with `pivot`'s literal
    /// in the clause as witness. No proof `Delete` (see the module docs).
    ///
    /// The entry stores the clause *verbatim* — level-0-false literals
    /// included — so a later restore re-derives exactly the clause the DRAT
    /// checker still has in its database (restore emits an `Add` only when it
    /// genuinely shortens; a pre-shortened entry would make a later `Delete`
    /// of the restored clause dangle). The dead literals are harmless during
    /// model repair: level-0 assignments persist into the model, so they
    /// evaluate false there just as they did here.
    fn elide_clause(&mut self, cref: ClauseRef, pivot: Lit) {
        if self.arena.is_deleted(cref) || self.clause_is_satisfied(cref) {
            return;
        }
        debug_assert!(!self.clause_is_locked(cref));
        let mut lits: Vec<Lit> = Vec::with_capacity(self.arena.len(cref));
        let mut witness = pivot;
        for k in 0..self.arena.len(cref) {
            let l = self.arena.lit(cref, k);
            if l.var() == pivot.var() {
                witness = l;
            }
            lits.push(l);
        }
        lits.sort_unstable();
        self.elim.witness_count[witness.var().index()] += 1;
        for &l in &lits {
            self.elim.mentions[l.var().index()] += 1;
        }
        self.elim.stack.push(ReconEntry { witness, lits });
        self.arena.delete(cref);
    }

    // ------------------------------------------------------------------
    // Blocked-clause elimination
    // ------------------------------------------------------------------

    /// Budgeted blocked-clause elimination with a rotating cursor: an
    /// original clause C is elided with witness l ∈ C when every live
    /// original clause containing ¬l resolves tautologically with C on l
    /// (flipping l can then never break them). Frozen, eliminated, and
    /// released variables are never witnesses.
    fn bce_pass(&mut self) {
        if self.clauses.is_empty() {
            return;
        }
        let mut lits: Vec<Lit> = Vec::new();
        let mut checked = 0usize;
        while checked < BCE_CLAUSES_PER_ROUND && checked < self.clauses.len() {
            if self.elim.bce_head >= self.clauses.len() {
                self.elim.bce_head = 0;
            }
            let cref = self.clauses[self.elim.bce_head];
            self.elim.bce_head += 1;
            checked += 1;
            if self.arena.is_deleted(cref)
                || self.arena.is_learnt(cref)
                || self.clause_is_satisfied(cref)
            {
                continue;
            }
            let len = self.arena.len(cref);
            lits.clear();
            for k in 0..len {
                let l = self.arena.lit(cref, k);
                if self.lit_value(l) >= L_UNDEF {
                    lits.push(l);
                }
            }
            if lits.len() < 2 {
                continue;
            }
            self.elim.stamp += 1;
            let st = self.elim.stamp;
            for &l in &lits {
                self.elim.lit_stamp[l.code()] = st;
            }
            for &l in &lits {
                let vi = l.var().index();
                if self.elim.frozen[vi] || self.elim.eliminated[vi] || self.free_mark[vi] {
                    continue;
                }
                if self.blocks_on(cref, l, st) {
                    self.elide_clause(cref, l);
                    self.stats.blocked_clauses += 1;
                    break;
                }
            }
        }
    }

    /// `true` when every live, unsatisfied, non-learnt clause containing `!l`
    /// resolves tautologically with the stamped clause `cref` on `l`.
    fn blocks_on(&self, cref: ClauseRef, l: Lit, st: u64) -> bool {
        let occ = &self.elim.occurs[(!l).code()];
        let mut live = 0usize;
        for &d in occ {
            if d == cref || self.arena.is_deleted(d) || self.arena.is_learnt(d) {
                continue;
            }
            if self.clause_is_satisfied(d) {
                continue;
            }
            live += 1;
            if live > BCE_OCC_CAP {
                return false;
            }
            let mut taut = false;
            for k in 0..self.arena.len(d) {
                let q = self.arena.lit(d, k);
                if q != !l && self.elim.lit_stamp[(!q).code()] == st {
                    taut = true;
                    break;
                }
            }
            if !taut {
                return false;
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Learnt hygiene after BVE
    // ------------------------------------------------------------------

    /// Deletes every learnt clause mentioning an eliminated variable (learnt
    /// clauses are implied consequences; keeping ones over elided state would
    /// let propagation assign variables the search must no longer see).
    fn sweep_eliminated_learnts(&mut self) {
        let mut learnts = std::mem::take(&mut self.learnts);
        let mut kept = 0;
        let mut i = 0;
        while i < learnts.len() {
            let cref = learnts[i];
            i += 1;
            if self.arena.is_deleted(cref) {
                continue;
            }
            let dead = (0..self.arena.len(cref))
                .any(|k| self.elim.eliminated[self.arena.lit(cref, k).var().index()]);
            if dead {
                self.delete_clause(cref);
            } else {
                learnts[kept] = cref;
                kept += 1;
            }
        }
        learnts.truncate(kept);
        self.stats.learnt_clauses = learnts.len() as u64;
        self.learnts = learnts;
    }
}
