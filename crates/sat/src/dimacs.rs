//! A small DIMACS CNF reader, used by tests and the command-line utilities.

use plic3_logic::{Clause, Cnf, Lit};
use std::error::Error;
use std::fmt;

/// Error returned by [`parse_dimacs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where the error was detected.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid DIMACS at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF document into a [`Cnf`] and the declared variable count.
///
/// The `p cnf <vars> <clauses>` header is optional; comment lines start with
/// `c`. Clauses may span lines and are terminated by `0`.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers or non-integer tokens.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), plic3_sat::ParseDimacsError> {
/// let (num_vars, cnf) = plic3_sat::parse_dimacs("p cnf 2 2\n1 -2 0\n2 0\n")?;
/// assert_eq!(num_vars, 2);
/// assert_eq!(cnf.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(input: &str) -> Result<(usize, Cnf), ParseDimacsError> {
    let mut declared_vars = 0usize;
    let mut max_var = 0usize;
    let mut cnf = Cnf::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError::new(lineno, "expected 'p cnf' header"));
            }
            declared_vars = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(lineno, "missing variable count"))?;
            continue;
        }
        for tok in line.split_whitespace() {
            let value: i64 = tok
                .parse()
                .map_err(|_| ParseDimacsError::new(lineno, format!("bad literal '{tok}'")))?;
            if value == 0 {
                cnf.push(Clause::from_lits(current.drain(..)));
            } else {
                let lit = Lit::from_dimacs(value);
                max_var = max_var.max(lit.var().index() + 1);
                current.push(lit);
            }
        }
    }
    if !current.is_empty() {
        cnf.push(Clause::from_lits(current));
    }
    Ok((declared_vars.max(max_var), cnf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_logic::Var;

    #[test]
    fn parses_header_comments_and_clauses() {
        let text = "c a comment\np cnf 3 2\n1 -3 0\n2 3 0\n";
        let (vars, cnf) = parse_dimacs(text).expect("valid");
        assert_eq!(vars, 3);
        assert_eq!(cnf.len(), 2);
        assert_eq!(
            cnf.clauses()[0],
            Clause::from_lits([Lit::pos(Var::new(0)), Lit::neg(Var::new(2))])
        );
    }

    #[test]
    fn clause_may_span_lines_and_trailing_clause_is_kept() {
        let text = "1 2\n-3 0\n4 5";
        let (vars, cnf) = parse_dimacs(text).expect("valid");
        assert_eq!(cnf.len(), 2);
        assert_eq!(vars, 5);
        assert_eq!(cnf.clauses()[0].len(), 3);
        assert_eq!(cnf.clauses()[1].len(), 2);
    }

    #[test]
    fn header_grows_to_actual_max_var() {
        let (vars, _) = parse_dimacs("p cnf 1 1\n7 0\n").expect("valid");
        assert_eq!(vars, 7);
    }

    #[test]
    fn rejects_garbage_tokens() {
        let err = parse_dimacs("1 x 0").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("bad literal"));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_dimacs("p dnf 2 2").is_err());
        assert!(parse_dimacs("p cnf").is_err());
    }
}
