//! Memory budgets: resource exhaustion as a solver verdict, not a crash.
//!
//! A production checker cannot let an adversarial instance grow the clause
//! arena until the allocator aborts the process. [`ResourceBudget`] turns the
//! memory ceiling into the same kind of cooperative signal as [`crate::StopFlag`]:
//! allocation-heavy components *charge* the budget as their backing storage
//! grows, and the solver *polls* [`ResourceBudget::is_exhausted`] at the same
//! places it polls the stop flag. An exceeded budget therefore unwinds through
//! the ordinary "interrupted query" path and surfaces as an `Unknown` verdict
//! carrying a memory-out reason — the process itself never dies.
//!
//! Charging is deliberately *advisory*: `charge` never fails and never blocks
//! an allocation that is already in flight. Components account for capacity
//! they have actually reserved (e.g. `Vec::capacity`, not `Vec::len`), so the
//! budget tracks real allocator pressure, and the first poll after crossing
//! the limit aborts the search. The small overshoot between "crossed" and
//! "polled" is bounded by one allocation burst, which is exactly the slack a
//! supervisor must leave anyway.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, thread-safe memory budget measured in bytes.
///
/// Like [`crate::StopFlag`], a `ResourceBudget` is a cheap `Arc`ed handle:
/// every clone observes the same accounting. The default budget is
/// *unlimited* — charging still tallies usage (useful for reporting) but
/// never trips exhaustion, so existing callers pay one relaxed atomic add on
/// a cold path and nothing more.
///
/// Exhaustion is **sticky**: once the tally crosses the limit (or
/// [`ResourceBudget::exhaust`] is called explicitly), `is_exhausted` stays
/// `true` even if usage later shrinks. A query abandoned halfway through is
/// not resumable, so flapping around the limit must not un-cancel it.
///
/// # Example
///
/// ```
/// use plic3_sat::ResourceBudget;
///
/// let budget = ResourceBudget::with_limit(1024);
/// let shared = budget.clone();
/// shared.charge(1000);
/// assert!(!budget.is_exhausted());
/// shared.charge(100);
/// assert!(budget.is_exhausted(), "all clones observe the same tally");
/// ```
#[derive(Clone)]
pub struct ResourceBudget {
    inner: Arc<BudgetInner>,
}

struct BudgetInner {
    /// Byte limit; `u64::MAX` means unlimited.
    limit: u64,
    /// Bytes currently charged.
    used: AtomicU64,
    /// Sticky exhaustion latch.
    exhausted: AtomicBool,
}

impl ResourceBudget {
    /// Creates an unlimited budget: usage is tallied but never trips.
    pub fn unlimited() -> Self {
        ResourceBudget::with_raw_limit(u64::MAX)
    }

    /// Creates a budget of `bytes` bytes.
    pub fn with_limit(bytes: u64) -> Self {
        ResourceBudget::with_raw_limit(bytes)
    }

    fn with_raw_limit(limit: u64) -> Self {
        ResourceBudget {
            inner: Arc::new(BudgetInner {
                limit,
                used: AtomicU64::new(0),
                exhausted: AtomicBool::new(false),
            }),
        }
    }

    /// The configured limit, or `None` for an unlimited budget.
    pub fn limit(&self) -> Option<u64> {
        (self.inner.limit != u64::MAX).then_some(self.inner.limit)
    }

    /// Bytes currently charged across all clones.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Records `bytes` of additional usage; trips the exhaustion latch when
    /// the tally crosses the limit. Never fails and never blocks.
    pub fn charge(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let used = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        if used > self.inner.limit {
            self.inner.exhausted.store(true, Ordering::Relaxed);
        }
    }

    /// Releases `bytes` of previously charged usage. Exhaustion is sticky:
    /// uncharging below the limit does not clear the latch.
    pub fn uncharge(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        // Saturate rather than wrap if a component double-releases; the
        // budget is advisory and must never panic in a drop path.
        let mut current = self.inner.used.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(bytes);
            match self.inner.used.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Returns `true` once the budget has been exceeded (or explicitly
    /// exhausted). Cheap enough for search-loop polling.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.inner.exhausted.load(Ordering::Relaxed)
    }

    /// Trips the exhaustion latch directly, regardless of the tally or the
    /// limit. Fault injection uses this to simulate memory pressure on
    /// budgets that are otherwise unlimited.
    pub fn exhaust(&self) {
        self.inner.exhausted.store(true, Ordering::Relaxed);
    }

    /// Splits the budget into `n` independent sub-budgets of `limit / n`
    /// bytes each, so one greedy consumer cannot starve its siblings. An
    /// unlimited budget splits into unlimited sub-budgets.
    ///
    /// The sub-budgets are fresh (their tallies start at zero) and do not
    /// feed back into `self`; the caller reports aggregate usage by summing
    /// [`ResourceBudget::used`] over the parts.
    pub fn split(&self, n: usize) -> Vec<ResourceBudget> {
        let n = n.max(1);
        let share = if self.inner.limit == u64::MAX {
            u64::MAX
        } else {
            // Keep at least one byte per share so a split budget can still
            // account (a zero limit would trip on the first charge, which is
            // the faithful reading of "no memory left to hand out").
            self.inner.limit / n as u64
        };
        (0..n)
            .map(|_| ResourceBudget::with_raw_limit(share))
            .collect()
    }
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget::unlimited()
    }
}

impl fmt::Debug for ResourceBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceBudget")
            .field("limit", &self.limit())
            .field("used", &self.used())
            .field("exhausted", &self.is_exhausted())
            .finish()
    }
}

/// Two budgets compare equal when they are in the same observable state.
/// Identity is deliberately ignored, mirroring [`crate::StopFlag`], so that
/// configurations embedding a budget still compare equal regardless of which
/// runner created them.
impl PartialEq for ResourceBudget {
    fn eq(&self, other: &Self) -> bool {
        self.limit() == other.limit()
            && self.used() == other.used()
            && self.is_exhausted() == other.is_exhausted()
    }
}

impl Eq for ResourceBudget {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_tallies_but_never_trips() {
        let budget = ResourceBudget::unlimited();
        budget.charge(u64::MAX / 2);
        assert_eq!(budget.limit(), None);
        assert!(!budget.is_exhausted());
        assert_eq!(budget.used(), u64::MAX / 2);
    }

    #[test]
    fn crossing_the_limit_trips_the_latch() {
        let budget = ResourceBudget::with_limit(100);
        budget.charge(100);
        assert!(!budget.is_exhausted(), "exactly at the limit is fine");
        budget.charge(1);
        assert!(budget.is_exhausted());
    }

    #[test]
    fn exhaustion_is_sticky_across_uncharge() {
        let budget = ResourceBudget::with_limit(10);
        budget.charge(20);
        assert!(budget.is_exhausted());
        budget.uncharge(20);
        assert_eq!(budget.used(), 0);
        assert!(budget.is_exhausted(), "an abandoned query stays abandoned");
    }

    #[test]
    fn uncharge_saturates_instead_of_wrapping() {
        let budget = ResourceBudget::unlimited();
        budget.charge(5);
        budget.uncharge(50);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = ResourceBudget::with_limit(8);
        let b = a.clone();
        b.charge(16);
        assert!(a.is_exhausted());
        assert_eq!(a.used(), 16);
    }

    #[test]
    fn explicit_exhaust_works_on_unlimited_budgets() {
        let budget = ResourceBudget::unlimited();
        budget.exhaust();
        assert!(budget.is_exhausted());
    }

    #[test]
    fn split_divides_the_limit() {
        let budget = ResourceBudget::with_limit(1000);
        let parts = budget.split(4);
        assert_eq!(parts.len(), 4);
        for part in &parts {
            assert_eq!(part.limit(), Some(250));
            assert!(!part.is_exhausted());
        }
        parts[0].charge(300);
        assert!(parts[0].is_exhausted());
        assert!(!parts[1].is_exhausted(), "sub-budgets are independent");
        assert!(!budget.is_exhausted(), "the parent is left untouched");
    }

    #[test]
    fn split_of_unlimited_stays_unlimited() {
        let parts = ResourceBudget::unlimited().split(3);
        assert!(parts.iter().all(|p| p.limit().is_none()));
    }

    #[test]
    fn equality_ignores_identity() {
        let a = ResourceBudget::with_limit(64);
        let b = ResourceBudget::with_limit(64);
        assert_eq!(a, b);
        a.charge(10);
        assert_ne!(a, b);
        b.charge(10);
        assert_eq!(a, b);
    }
}
