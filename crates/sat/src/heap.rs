//! Indexed max-heap ordered by variable activity (the VSIDS order).

/// A binary max-heap over variable indices, keyed by an external activity array.
///
/// Supports the operations CDCL needs: insert, pop-max, membership test, and
/// sift-up after an activity bump. Positions are tracked so updates are `O(log n)`.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActivityHeap {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        ActivityHeap {
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Ensures the position table can hold `n` variables.
    pub(crate) fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    pub(crate) fn contains(&self, var: usize) -> bool {
        var < self.pos.len() && self.pos[var] != ABSENT
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `var` (no-op if present).
    pub(crate) fn insert(&mut self, var: usize, activity: &[f64]) {
        self.grow_to(var + 1);
        if self.contains(var) {
            return;
        }
        self.pos[var] = self.heap.len();
        self.heap.push(var as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0] as usize;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property around `var` after its activity increased.
    pub(crate) fn bumped(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            self.sift_up(self.pos[var], activity);
        }
    }

    /// Restores the heap property around `var` after its activity decreased
    /// (used when a recycled variable has its activity reset to zero while
    /// still sitting in the heap).
    pub(crate) fn decreased(&mut self, var: usize, activity: &[f64]) {
        if self.contains(var) {
            self.sift_down(self.pos[var], activity);
        }
    }

    /// Rebuilds the heap from scratch (used after a global activity rescale).
    pub(crate) fn rebuild(&mut self, activity: &[f64]) {
        let vars: Vec<u32> = self.heap.clone();
        for &v in &vars {
            self.pos[v as usize] = ABSENT;
        }
        self.heap.clear();
        for v in vars {
            self.insert(v as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) >> 1;
            let pv = self.heap[parent];
            if activity[v as usize] <= activity[pv as usize] {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv as usize] = i;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            let cv = self.heap[child];
            if activity[cv as usize] <= activity[v as usize] {
                break;
            }
            self.heap[i] = cv;
            self.pos[cv as usize] = i;
            i = child;
        }
        self.heap[i] = v;
        self.pos[v as usize] = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_follows_activity() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), Some(3));
        assert_eq!(h.pop_max(&activity), Some(2));
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), None);
        assert!(h.is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &activity);
        h.insert(0, &activity);
        assert_eq!(h.len(), 1);
        assert!(h.contains(0));
        assert!(!h.contains(1));
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.bumped(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
    }

    #[test]
    fn decreased_restores_order_after_activity_reset() {
        let mut activity = vec![1.0, 2.0, 5.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        // Var 2 sits at the top; resetting its activity must sift it down.
        activity[2] = 0.0;
        h.decreased(2, &activity);
        assert_eq!(h.pop_max(&activity), Some(3));
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), Some(2));
    }

    #[test]
    fn rebuild_preserves_membership() {
        let mut activity = vec![1.0, 2.0, 3.0, 4.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        h.pop_max(&activity); // remove var 3
        for a in activity.iter_mut() {
            *a *= 1e-3;
        }
        h.rebuild(&activity);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop_max(&activity), Some(2));
    }
}
