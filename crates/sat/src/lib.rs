//! An incremental CDCL SAT solver built for IC3-style model checking.
//!
//! The solver is a from-scratch reimplementation of the MiniSat 2.2 architecture
//! (the solver embedded in IC3ref, the baseline of *Predicting Lemmas in
//! Generalization of IC3*, DAC 2024):
//!
//! * two-literal watching with blocker literals,
//! * first-UIP conflict analysis with basic clause minimization and
//!   on-the-fly self-subsumption,
//! * VSIDS variable activities with an indexed max-heap,
//! * glucose-style EMA restarts (with a Luby fallback mode), phase saving
//!   with best-phase snapshotting and periodic rephasing, bounded
//!   chronological backtracking, learnt-clause database reduction, and
//!   restart-boundary vivification — all configurable through
//!   [`SearchConfig`] (see `docs/SAT_SEARCH.md`),
//! * incremental solving under **assumptions** with extraction of the
//!   **assumption core** (the subset of assumptions used to derive UNSAT),
//!   which IC3 uses to shrink blocked cubes for free.
//!
//! # Example
//!
//! ```
//! use plic3_logic::{Lit, Var};
//! use plic3_sat::{SatResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = Lit::pos(solver.new_var());
//! let b = Lit::pos(solver.new_var());
//! solver.add_clause([a, b]);
//! solver.add_clause([!a, b]);
//! assert_eq!(solver.solve(&[]), SatResult::Sat);
//! assert_eq!(solver.model_value_lit(b), Some(true));
//! // Under the assumption ¬b the formula is unsatisfiable, and the core says so.
//! assert_eq!(solver.solve(&[!b]), SatResult::Unsat);
//! assert_eq!(solver.unsat_core(), &[!b]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod brute;
mod budget;
mod dimacs;
mod fault;
mod heap;
mod proof;
mod solver;
mod stats;
mod stop;

pub use brute::brute_force_sat;
pub use budget::ResourceBudget;
pub use dimacs::{parse_dimacs, ParseDimacsError};
pub use fault::{FaultKind, FaultPlan, FaultSite, INJECTED_PANIC};
pub use proof::{proof_logging_compiled, Proof, ProofStep};
pub use solver::{ModelView, RestartPolicy, SatResult, SearchConfig, Solver, SolverConfig};
pub use stats::SolverStats;
pub use stop::StopFlag;
