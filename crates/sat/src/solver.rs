//! The CDCL search engine.

use crate::heap::ActivityHeap;
use crate::stats::SolverStats;
use crate::stop::StopFlag;
use plic3_logic::{Clause, Lit, Var};
use std::fmt;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; the subset of
    /// assumptions used is available from [`Solver::unsat_core`].
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatResult::Sat => write!(f, "sat"),
            SatResult::Unsat => write!(f, "unsat"),
            SatResult::Unknown => write!(f, "unknown"),
        }
    }
}

/// Tuning knobs for the CDCL search.
///
/// The defaults follow MiniSat 2.2 and are what the IC3 engine uses; they are
/// exposed so the benchmark harness can run ablations on the SAT backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities after each conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities after each conflict.
    pub clause_decay: f64,
    /// Base (first) restart interval in conflicts; later intervals follow the
    /// Luby sequence scaled by this value.
    pub restart_base: u64,
    /// Start reducing the learnt-clause database once it exceeds this many
    /// clauses plus one third of the number of original clauses.
    pub max_learnts_base: usize,
    /// Default polarity a variable is assigned when it is picked as a decision
    /// and has never been assigned before.
    pub default_polarity: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            max_learnts_base: 8000,
            default_polarity: false,
        }
    }
}

/// Reference to a clause in the arena.
type ClauseRef = u32;

const NO_REASON: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

#[derive(Clone, Copy, Debug, Default)]
struct VarData {
    level: u32,
    reason: u32,
}

/// An incremental CDCL SAT solver with assumptions and assumption cores.
///
/// See the [crate-level documentation](crate) for an example. Clauses may only
/// be added between `solve` calls (the solver returns to decision level zero
/// after every call).
pub struct Solver {
    config: SolverConfig,
    // Clause arena.
    clauses: Vec<ClauseData>,
    learnts: Vec<ClauseRef>,
    // Watch lists indexed by literal code.
    watches: Vec<Vec<Watcher>>,
    // Assignment state.
    assigns: Vec<Option<bool>>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // Decision heuristic.
    activity: Vec<f64>,
    var_inc: f64,
    order_heap: ActivityHeap,
    polarity: Vec<bool>,
    // Clause activity.
    cla_inc: f64,
    // Conflict analysis scratch.
    seen: Vec<bool>,
    // Solver status.
    ok: bool,
    assumptions: Vec<Lit>,
    conflict_core: Vec<Lit>,
    model: Vec<Option<bool>>,
    conflict_budget: Option<u64>,
    stop: StopFlag,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_clauses", &self.clauses.len())
            .field("ok", &self.ok)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Solver {
    /// Creates an empty solver with default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order_heap: ActivityHeap::new(),
            polarity: Vec::new(),
            cla_inc: 1.0,
            seen: Vec::new(),
            ok: true,
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            model: Vec::new(),
            conflict_budget: None,
            stop: StopFlag::new(),
            stats: SolverStats::new(),
        }
    }

    // ------------------------------------------------------------------
    // Variables and clauses
    // ------------------------------------------------------------------

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(None);
        self.vardata.push(VarData {
            level: 0,
            reason: NO_REASON,
        });
        self.activity.push(0.0);
        self.polarity.push(self.config.default_polarity);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order_heap.grow_to(self.assigns.len());
        self.order_heap.insert(v.index(), &self.activity);
        v
    }

    /// Ensures that variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Ensures that `var` exists.
    pub fn ensure_var(&mut self, var: Var) {
        self.ensure_vars(var.index() + 1);
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt, non-deleted) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Returns `false` if the clause database is already known to be
    /// unsatisfiable at the top level.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Returns solver statistics collected so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Limits the number of conflicts a single [`Solver::solve`] call may use;
    /// `None` removes the limit. When the budget is exhausted `solve` returns
    /// [`SatResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a shared cancellation flag, polled inside the search loop.
    ///
    /// Once the flag is raised (possibly from another thread), the current and
    /// every future [`Solver::solve`] call returns [`SatResult::Unknown`]
    /// promptly instead of running to completion.
    pub fn set_stop_flag(&mut self, stop: StopFlag) {
        self.stop = stop;
    }

    /// Adds a clause given as an iterator of literals.
    ///
    /// Returns `false` if the clause database became unsatisfiable at the top
    /// level (in which case future `solve` calls return `Unsat` immediately).
    ///
    /// Variables mentioned by the clause are created on demand.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        if let Some(max) = lits.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max + 1);
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology or satisfied at level 0: nothing to do.
        let mut simplified = Vec::with_capacity(lits.len());
        let mut prev: Option<Lit> = None;
        for &l in &lits {
            if let Some(p) = prev {
                if p.var() == l.var() {
                    // p and l are the two polarities of the same var: tautology.
                    return true;
                }
            }
            prev = Some(l);
            match self.lit_value(l) {
                Some(true) => return true,
                Some(false) => {
                    // Only drop literals that are false at level 0.
                    if self.vardata[l.var().index()].level == 0 {
                        continue;
                    }
                    simplified.push(l);
                }
                None => simplified.push(l),
            }
        }
        let lits = simplified;
        self.stats.original_clauses += 1;
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_new_clause(lits, false);
                true
            }
        }
    }

    /// Adds a [`Clause`] by reference. See [`Solver::add_clause`].
    pub fn add_clause_ref(&mut self, clause: &Clause) -> bool {
        self.add_clause(clause.iter())
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as ClauseRef;
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(ClauseData {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        if learnt {
            self.learnts.push(cref);
            self.stats.learnt_clauses += 1;
        }
        cref
    }

    fn detach_clause(&mut self, cref: ClauseRef) {
        let (w0, w1) = {
            let c = &self.clauses[cref as usize];
            ((!c.lits[0]).code(), (!c.lits[1]).code())
        };
        self.watches[w0].retain(|w| w.cref != cref);
        self.watches[w1].retain(|w| w.cref != cref);
        self.clauses[cref as usize].deleted = true;
    }

    // ------------------------------------------------------------------
    // Values and models
    // ------------------------------------------------------------------

    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.assigns[lit.var().index()].map(|v| if lit.is_pos() { v } else { !v })
    }

    /// The value of `var` in the most recent satisfying model, if any.
    ///
    /// Returns `None` for variables the model leaves unconstrained or when the
    /// last call was not `Sat`.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        self.model.get(var.index()).copied().flatten()
    }

    /// The value of `lit` in the most recent satisfying model, if any.
    pub fn model_value_lit(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit.var())
            .map(|v| if lit.is_pos() { v } else { !v })
    }

    /// The subset of the last `solve` call's assumptions that were used to
    /// derive unsatisfiability (only meaningful after [`SatResult::Unsat`]).
    ///
    /// The conjunction of these assumption literals together with the clause
    /// database is unsatisfiable.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Returns `true` if `lit` is in the unsat core of the last `solve` call.
    pub fn core_contains(&self, lit: Lit) -> bool {
        self.conflict_core.contains(&lit)
    }

    // ------------------------------------------------------------------
    // Trail management
    // ------------------------------------------------------------------

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: u32) {
        debug_assert!(self.lit_value(lit).is_none());
        let v = lit.var().index();
        self.assigns[v] = Some(lit.asserted_value());
        self.vardata[v] = VarData {
            level: self.decision_level(),
            reason,
        };
        self.trail.push(lit);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        for i in (target..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            self.polarity[v] = lit.asserted_value();
            self.assigns[v] = None;
            self.vardata[v].reason = NO_REASON;
            self.order_heap.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Clauses watching ¬p (which just became false) must be inspected;
            // by the attach convention they live in the list indexed by `p`.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0;
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                if self.lit_value(w.blocker) == Some(true) {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalize so that lits[1] is the falsified watch.
                let first;
                {
                    let c = &mut self.clauses[cref as usize];
                    debug_assert!(!c.deleted);
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                    first = c.lits[0];
                }
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[kept] = Watcher {
                        cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let clause_len = self.clauses[cref as usize].lits.len();
                for k in 2..clause_len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.lit_value(lk) != Some(false) {
                        let c = &mut self.clauses[cref as usize];
                        c.lits.swap(1, k);
                        let new_watch = c.lits[1];
                        self.watches[(!new_watch).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[kept] = Watcher {
                    cref,
                    blocker: first,
                };
                kept += 1;
                if self.lit_value(first) == Some(false) {
                    // Conflict: keep the remaining watchers and stop.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(kept);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::new(0))]; // placeholder for the UIP
        let mut path_c: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        loop {
            {
                if self.clauses[confl as usize].learnt {
                    self.bump_clause_activity(confl);
                }
                let start = usize::from(p.is_some());
                let lits = self.clauses[confl as usize].lits.clone();
                for &q in &lits[start..] {
                    let v = q.var().index();
                    if !self.seen[v] && self.vardata[v].level > 0 {
                        self.bump_var_activity(q.var());
                        self.seen[v] = true;
                        if self.vardata[v].level >= self.decision_level() {
                            path_c += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.vardata[pl.var().index()].reason;
            debug_assert_ne!(confl, NO_REASON);
        }

        // Basic clause minimization: drop literals implied by the rest.
        let to_clear = learnt.clone();
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.literal_is_redundant(l) {
                minimized.push(l);
            }
        }
        let mut learnt = minimized;

        // Clear the seen flags of every literal touched, including the ones that
        // minimization removed.
        for &l in &to_clear {
            self.seen[l.var().index()] = false;
        }

        // Compute backtrack level and move the second-highest-level literal to
        // position 1 so that it is watched after the backjump.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.vardata[learnt[i].var().index()].level
                    > self.vardata[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.vardata[learnt[1].var().index()].level
        };
        (learnt, bt_level)
    }

    /// Returns `true` if the literal's reason clause is entirely made of seen or
    /// level-0 literals, i.e. it can be removed from the learnt clause.
    fn literal_is_redundant(&self, lit: Lit) -> bool {
        let reason = self.vardata[lit.var().index()].reason;
        if reason == NO_REASON {
            return false;
        }
        let c = &self.clauses[reason as usize];
        c.lits[1..].iter().all(|&q| {
            let v = q.var().index();
            self.seen[v] || self.vardata[v].level == 0
        })
    }

    /// Computes the assumption core after a conflict with assumption literal `p`
    /// (i.e. `¬p` is implied by the clause database and earlier assumptions).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            let reason = self.vardata[v].reason;
            if reason == NO_REASON {
                debug_assert!(self.vardata[v].level > 0);
                // A decision: under assumptions, every decision below the
                // assumption levels is an assumption literal.
                if lit != p {
                    self.conflict_core.push(lit);
                }
            } else {
                let lits = self.clauses[reason as usize].lits.clone();
                for &q in &lits[1..] {
                    if self.vardata[q.var().index()].level > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        // Keep only literals that are actual assumptions of this call (decisions
        // above the assumption prefix can never appear, but be defensive).
        let assumptions = &self.assumptions;
        self.conflict_core.retain(|l| assumptions.contains(l));
        self.conflict_core.sort_unstable();
        self.conflict_core.dedup();
    }

    // ------------------------------------------------------------------
    // Activities
    // ------------------------------------------------------------------

    fn bump_var_activity(&mut self, var: Var) {
        let v = var.index();
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.order_heap.rebuild(&self.activity);
        }
        self.order_heap.bumped(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause_activity(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &lc in &self.learnts {
                self.clauses[lc as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= self.config.clause_decay;
    }

    // ------------------------------------------------------------------
    // Learnt-clause database reduction
    // ------------------------------------------------------------------

    fn clause_is_locked(&self, cref: ClauseRef) -> bool {
        let c = &self.clauses[cref as usize];
        let first = c.lits[0];
        self.lit_value(first) == Some(true) && self.vardata[first.var().index()].reason == cref
    }

    fn reduce_db(&mut self) {
        let mut learnts = std::mem::take(&mut self.learnts);
        learnts.retain(|&c| !self.clauses[c as usize].deleted);
        learnts.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let target = learnts.len() / 2;
        let mut removed = 0;
        let mut kept = Vec::with_capacity(learnts.len());
        for (i, &cref) in learnts.iter().enumerate() {
            let removable = i < target
                && self.clauses[cref as usize].lits.len() > 2
                && !self.clause_is_locked(cref);
            if removable {
                self.detach_clause(cref);
                removed += 1;
            } else {
                kept.push(cref);
            }
        }
        self.stats.removed_clauses += removed;
        self.stats.learnt_clauses = kept.len() as u64;
        self.learnts = kept;
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order_heap.pop_max(&self.activity)?;
            if self.assigns[v].is_none() {
                let var = Var::new(v as u32);
                return Some(Lit::new(var, self.polarity[v]));
            }
        }
    }

    fn search(&mut self, nof_conflicts: u64, total_conflicts_start: u64) -> Option<bool> {
        let mut conflict_count: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflict_count += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.conflict_core.clear();
                    return Some(false);
                }
                let (learnt, bt_level) = self.analyze(confl);
                self.cancel_until(bt_level);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], NO_REASON);
                } else {
                    let first = learnt[0];
                    let cref = self.attach_new_clause(learnt, true);
                    self.bump_clause_activity(cref);
                    self.unchecked_enqueue(first, cref);
                }
                self.decay_var_activity();
                self.decay_clause_activity();
            } else {
                // No conflict.
                if conflict_count >= nof_conflicts {
                    self.cancel_until(0);
                    return None;
                }
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - total_conflicts_start >= budget {
                        self.cancel_until(0);
                        return None;
                    }
                }
                if self.stop.is_stopped() {
                    self.cancel_until(0);
                    return None;
                }
                let limit = self.config.max_learnts_base + self.stats.original_clauses as usize / 3;
                if self.learnts.len() > limit {
                    self.reduce_db();
                }
                // Make sure all assumptions are decided first.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < self.assumptions.len() {
                    let p = self.assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        Some(true) => self.new_decision_level(),
                        Some(false) => {
                            self.analyze_final(p);
                            return Some(false);
                        }
                        None => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(l) => {
                            self.stats.decisions += 1;
                            l
                        }
                        None => return Some(true),
                    },
                };
                self.new_decision_level();
                self.unchecked_enqueue(decision, NO_REASON);
            }
        }
    }

    /// Decides the satisfiability of the clause database under `assumptions`.
    ///
    /// After [`SatResult::Sat`], the model is available through
    /// [`Solver::model_value`]. After [`SatResult::Unsat`],
    /// [`Solver::unsat_core`] returns the subset of assumptions that was used.
    /// [`SatResult::Unknown`] is only returned when a conflict budget is set
    /// ([`Solver::set_conflict_budget`]) or a stop flag has been raised
    /// ([`Solver::set_stop_flag`]).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.stats.solves += 1;
        self.model.clear();
        self.conflict_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption over unknown variable {}",
                l.var()
            );
        }
        self.assumptions = assumptions.to_vec();
        let start_conflicts = self.stats.conflicts;
        let result;
        let mut restarts = 0u32;
        loop {
            let interval = luby(2.0, restarts) * self.config.restart_base as f64;
            match self.search(interval as u64, start_conflicts) {
                Some(true) => {
                    self.model = self.assigns.clone();
                    result = SatResult::Sat;
                    break;
                }
                Some(false) => {
                    result = SatResult::Unsat;
                    break;
                }
                None => {
                    if self.stop.is_stopped() {
                        result = SatResult::Unknown;
                        break;
                    }
                    self.stats.restarts += 1;
                    restarts += 1;
                    if let Some(budget) = self.conflict_budget {
                        if self.stats.conflicts - start_conflicts >= budget {
                            result = SatResult::Unknown;
                            break;
                        }
                    }
                }
            }
        }
        self.cancel_until(0);
        self.assumptions.clear();
        result
    }
}

/// The Luby restart sequence scaled by `y`: 1, 1, 2, 1, 1, 2, 4, …
fn luby(y: f64, mut x: u32) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < (x as u64) + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size as u32;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        assert!(s.add_clause([a]));
        assert!(s.add_clause([!a, b]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model_value_lit(a), Some(true));
        assert_eq!(s.model_value_lit(b), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        assert!(s.add_clause([a]));
        assert!(!s.add_clause([!a]));
        assert!(!s.is_ok());
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn simple_unsat_core() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        s.add_clause([!a, b]);
        // Assume a and ¬b: contradiction needs exactly those two; c is irrelevant.
        assert_eq!(s.solve(&[a, !b, c]), SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a) || core.contains(&!b));
        assert!(!core.contains(&c));
        // The core must itself be sufficient for unsatisfiability.
        assert_eq!(s.solve(&core), SatResult::Unsat);
    }

    #[test]
    fn solve_is_incremental() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        assert_eq!(s.solve(&[!a]), SatResult::Sat);
        assert_eq!(s.model_value_lit(b), Some(true));
        s.add_clause([!b]);
        assert_eq!(s.solve(&[!a]), SatResult::Unsat);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model_value_lit(a), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: var p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * 2 + j));
        s.ensure_vars(6);
        for i in 0..3 {
            s.add_clause([var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard-ish pigeonhole instance with a tiny conflict budget.
        let mut s = Solver::new();
        let n = 7u32; // pigeons
        let m = 6u32; // holes
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * m + j));
        s.ensure_vars((n * m) as usize);
        for i in 0..n {
            s.add_clause((0..m).map(|j| var(i, j)));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn raised_stop_flag_returns_unknown() {
        let mut s = Solver::new();
        let n = 8u32; // pigeons
        let m = 7u32; // holes
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * m + j));
        s.ensure_vars((n * m) as usize);
        for i in 0..n {
            s.add_clause((0..m).map(|j| var(i, j)));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        let stop = StopFlag::new();
        s.set_stop_flag(stop.clone());
        stop.stop();
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        // A fresh flag lets the same solver finish the proof.
        s.set_stop_flag(StopFlag::new());
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn model_respects_all_clauses() {
        let mut s = Solver::new();
        // Random-ish 3-CNF with a known satisfying assignment: all true.
        s.ensure_vars(6);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(0, true), lit(1, false), lit(2, true)],
            vec![lit(3, true), lit(4, true)],
            vec![lit(0, false), lit(5, true)],
            vec![lit(2, true), lit(4, false), lit(5, true)],
        ];
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.model_value_lit(l) == Some(true)),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn assumptions_drive_the_model() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        assert_eq!(s.solve(&[!b]), SatResult::Sat);
        assert_eq!(s.model_value_lit(a), Some(true));
        assert_eq!(s.model_value_lit(b), Some(false));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn assumption_over_unknown_var_panics() {
        let mut s = Solver::new();
        let _ = s.solve(&[lit(3, true)]);
    }

    #[test]
    fn stats_are_updated() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        s.add_clause([!a, b]);
        s.add_clause([a, !b]);
        let _ = s.solve(&[]);
        assert_eq!(s.stats().solves, 1);
        assert_eq!(s.stats().original_clauses, 3);
    }
}
