//! The CDCL search engine.
//!
//! The solver stores every clause inline in a flat [`ClauseArena`] (see
//! `arena.rs`) and keeps its hot paths — [`Solver::solve`]'s propagation,
//! conflict analysis, and assumption-core extraction — free of heap
//! allocations in steady state: all intermediate literal sets live in scratch
//! buffers owned by the solver and reused across conflicts.

use crate::arena::{ClauseArena, ClauseRef};
use crate::budget::ResourceBudget;
use crate::fault::{FaultKind, FaultPlan, FaultSite, INJECTED_PANIC};
use crate::heap::ActivityHeap;
use crate::proof::{Proof, ProofRecorder};
use crate::stats::SolverStats;
use crate::stop::StopFlag;
use plic3_logic::{Clause, Lit, Var};
use std::fmt;

// CNF inprocessing (BVE / subsumption / BCE) is implemented as a child module
// so its passes can reach the solver's private state; the `#[path]` keeps the
// file at `src/eliminate.rs` instead of `src/solver/eliminate.rs`.
#[path = "eliminate.rs"]
mod eliminate;
use eliminate::Eliminator;

/// Result of a [`Solver::solve`] call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions; the subset of
    /// assumptions used is available from [`Solver::unsat_core`].
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

impl fmt::Display for SatResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatResult::Sat => write!(f, "sat"),
            SatResult::Unsat => write!(f, "unsat"),
            SatResult::Unknown => write!(f, "unknown"),
        }
    }
}

/// How the solver decides when to restart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RestartPolicy {
    /// Glucose-style dynamic restarts: restart as soon as a fast exponential
    /// moving average of conflict LBD exceeds a slow one by
    /// [`SearchConfig::restart_margin`] (recent conflicts are "worse" than the
    /// long-run average, so the current branch is unlikely to be productive).
    Ema,
    /// The classic Luby sequence scaled by [`SearchConfig::restart_base`]
    /// (the pre-modernization behaviour, kept as a fallback mode and for
    /// portfolio diversification).
    Luby,
}

/// Tuning knobs of the modern search loop: restart policy, phase handling,
/// chronological backtracking, and restart-boundary inprocessing.
///
/// All knobs are plumbed through `plic3::Config::search`, so the IC3 engine
/// and the portfolio workers can diversify on search behaviour. The defaults
/// are the modern engine; [`SearchConfig::classic`] reproduces the previous
/// fixed-Luby search for A/B benchmarking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchConfig {
    /// Restart policy (EMA-driven or Luby).
    pub restart: RestartPolicy,
    /// Window (in conflicts) of the fast LBD moving average.
    pub ema_fast_window: u64,
    /// Window (in conflicts) of the slow LBD moving average.
    pub ema_slow_window: u64,
    /// Restart when `fast > restart_margin * slow` (Glucose's `1 / K`).
    pub restart_margin: f64,
    /// Minimum number of conflicts between two EMA restarts.
    pub restart_min_conflicts: u64,
    /// Base (first) restart interval in conflicts for
    /// [`RestartPolicy::Luby`]; later intervals follow the Luby sequence
    /// scaled by this value.
    pub restart_base: u64,
    /// Block an EMA restart while the trail is this many times longer than
    /// its long-run average (the solver is close to a model; Glucose's `R`).
    /// `0.0` disables restart blocking.
    pub restart_blocking: f64,
    /// Conflicts without a new trail-depth maximum before the Luby-schedule
    /// fallback may restart a solve whose EMA trigger has not fired at all
    /// (`0` disables). On workloads with flat LBD profiles — uniform random
    /// UNSAT is the canonical case — the fast average never exceeds the slow
    /// one by the margin and plain EMA stops restarting entirely, which both
    /// loses to a fixed Luby schedule and starves the restart-boundary
    /// inprocessing passes of their trigger. The fallback restores the
    /// periodic schedule, but only while the search is *stalled*: a run that
    /// keeps deepening its best trail is making progress toward a model and
    /// is left alone, which is what preserves the EMA policy's zero-restart
    /// advantage on satisfiable workloads whose trigger is equally silent.
    /// Solves carrying assumptions are exempt altogether: incremental
    /// queries are short, profit from trail and phase locality across
    /// calls, and lose more to the forced repropagation than the schedule
    /// returns. It also stays subject to the trail-blocking rule. A
    /// single EMA restart disarms the fallback for the rest of the solve: a
    /// trigger that fired and went quiet is resting on purpose — deep
    /// refutation phases look exactly like that — while one that never fired
    /// is dead. Ignored under [`RestartPolicy::Luby`].
    pub restart_starvation: u64,
    /// Remember the last asserted polarity of a variable and use it for the
    /// next decision on that variable (phase saving).
    pub phase_saving: bool,
    /// Conflicts between two rephasing events, which cycle the decision
    /// polarities through best-phase / default / inverted-best snapshots.
    /// `0` disables rephasing.
    pub rephase_interval: u64,
    /// Chronological backtracking bound: when conflict analysis asks for a
    /// backjump longer than this many levels, backtrack a single level
    /// instead, keeping the rest of the trail. `0` disables chronological
    /// backtracking.
    pub chrono: u32,
    /// Vivify learnt clauses at restart boundaries (assume the negation of
    /// each literal in turn and shorten the clause on conflicts / implied
    /// literals).
    pub vivify: bool,
    /// Minimum number of conflicts between two vivification rounds, so the
    /// (budgeted) inprocessing cost stays a small fraction of the search
    /// effort on short queries instead of dominating them.
    pub vivify_interval: u64,
    /// Strengthen clauses found self-subsumed during conflict analysis
    /// (on-the-fly subsumption, applied at the next restart boundary).
    pub subsume: bool,
    /// Run CNF inprocessing rounds (bounded variable elimination,
    /// occurrence-index subsumption/strengthening, blocked-clause
    /// elimination) at restart boundaries. Incremental-safe: assumption
    /// variables are frozen automatically and eliminated clauses are elided
    /// to a reconstruction stack (see [`Solver::set_frozen`] and
    /// `eliminate.rs`).
    pub elim: bool,
    /// Minimum number of conflicts between two elimination rounds (the same
    /// pacing discipline as `vivify_interval`).
    pub elim_interval: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            restart: RestartPolicy::Ema,
            ema_fast_window: 32,
            ema_slow_window: 4096,
            restart_margin: 1.25,
            restart_min_conflicts: 64,
            restart_base: 100,
            restart_blocking: 1.4,
            restart_starvation: 24,
            phase_saving: true,
            rephase_interval: 8192,
            chrono: 64,
            vivify: true,
            vivify_interval: 1024,
            subsume: true,
            elim: true,
            elim_interval: 2048,
        }
    }
}

impl SearchConfig {
    /// The pre-modernization search: fixed Luby restarts, plain phase saving,
    /// full non-chronological backtracking, no inprocessing. Used as the
    /// "before" side of the paired benchmark entries and as a conservative
    /// portfolio diversification point.
    pub fn classic() -> Self {
        SearchConfig {
            restart: RestartPolicy::Luby,
            rephase_interval: 0,
            chrono: 0,
            vivify: false,
            subsume: false,
            elim: false,
            ..SearchConfig::default()
        }
    }
}

/// Tuning knobs for the CDCL search.
///
/// The defaults follow MiniSat 2.2 (with the modern [`SearchConfig`] search
/// loop) and are what the IC3 engine uses; they are exposed so the benchmark
/// harness can run ablations on the SAT backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities after each conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities after each conflict.
    pub clause_decay: f64,
    /// Hard ceiling of the learnt-clause limit: the database is always reduced
    /// once it exceeds this many clauses plus one third of the number of
    /// original clauses. The effective limit starts much lower (one third of
    /// the problem clauses, MiniSat's `learntsize_factor`) and grows
    /// geometrically with each restart up to this cap, so small instances keep
    /// their watch lists short instead of drowning in stale lemmas.
    pub max_learnts_base: usize,
    /// Default polarity a variable is assigned when it is picked as a decision
    /// and has never been assigned before.
    pub default_polarity: bool,
    /// Search-loop behaviour: restarts, phases, backtracking, inprocessing.
    pub search: SearchConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            max_learnts_base: 8000,
            default_polarity: false,
            search: SearchConfig::default(),
        }
    }
}

const NO_REASON: ClauseRef = u32::MAX;

// Packed ternary assignment values ("lbool"): a variable's value is one byte,
// and a literal is evaluated by XOR-ing the variable value with the literal's
// sign bit. `2` (and the `2 ^ 1 = 3` the XOR can produce) means unassigned, so
// "is unassigned" is the single comparison `>= L_UNDEF`.
const L_TRUE: u8 = 0;
const L_FALSE: u8 = 1;
const L_UNDEF: u8 = 2;

/// Learnt clauses with an LBD at or below this are "glue" clauses and are
/// never removed by database reduction (Glucose's invariant).
const GLUE_LBD: u32 = 2;

/// Released variables are reclaimed eagerly once this many are pending, even
/// when the propagation-amortized simplification budget has not been reached.
const RELEASE_BATCH: usize = 64;

/// Bound on on-the-fly subsumption candidates queued between two restarts;
/// detections past the cap are simply dropped (they are a performance hint,
/// not a correctness obligation).
const PENDING_STRENGTHEN_CAP: usize = 64;

/// Learnt clauses inspected per vivification round (one round per restart).
const VIVIFY_CLAUSES_PER_ROUND: usize = 24;

/// Propagation budget of one vivification round; bounds the inprocessing cost
/// to a small fraction of the search effort between two restarts.
const VIVIFY_PROP_BUDGET: u64 = 2_000;

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// An exponential moving average with a smooth warm-up: for the first
/// `window` samples the value is the running mean, after which it behaves as
/// an EMA with smoothing factor `1 / window` (so early restarts are not
/// driven by a biased average).
#[derive(Clone, Copy, Debug, Default)]
struct Ema {
    value: f64,
    count: u64,
}

impl Ema {
    fn update(&mut self, x: f64, window: u64) {
        self.count += 1;
        let n = self.count.min(window.max(1));
        self.value += (x - self.value) / n as f64;
    }

    fn get(&self) -> f64 {
        self.value
    }

    /// Forces the average to `value` without touching the sample count (used
    /// to defuse the fast average after a restart or a blocked restart).
    fn set(&mut self, value: f64) {
        self.value = value;
    }
}

#[derive(Clone, Copy, Debug)]
struct VarData {
    level: u32,
    reason: ClauseRef,
}

impl Default for VarData {
    fn default() -> Self {
        VarData {
            level: 0,
            reason: NO_REASON,
        }
    }
}

/// An incremental CDCL SAT solver with assumptions and assumption cores.
///
/// See the [crate-level documentation](crate) for an example. Clauses may only
/// be added between `solve` calls (the solver returns to decision level zero
/// after every call).
pub struct Solver {
    config: SolverConfig,
    // Clause storage: one flat arena, plus the problem/learnt reference lists.
    arena: ClauseArena,
    clauses: Vec<ClauseRef>,
    learnts: Vec<ClauseRef>,
    // Watch lists indexed by literal code.
    watches: Vec<Vec<Watcher>>,
    // Assignment state.
    assigns: Vec<u8>,
    vardata: Vec<VarData>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // Decision heuristic.
    activity: Vec<f64>,
    var_inc: f64,
    order_heap: ActivityHeap,
    polarity: Vec<bool>,
    // Best-phase snapshot: the polarities of the deepest trail seen in the
    // current solve call, used by the periodic rephasing schedule.
    best_phase: Vec<bool>,
    best_trail: usize,
    rephase_count: u64,
    next_rephase: u64,
    // Restart scheduling state: moving averages of conflict LBD (fast/slow)
    // and of the trail size at conflicts (for restart blocking), plus the
    // per-solve restart counters.
    ema_fast: Ema,
    ema_slow: Ema,
    ema_trail: Ema,
    conflicts_since_restart: u64,
    luby_restarts: u32,
    // Per-solve starvation state for the Luby restart fallback (see
    // `SearchConfig::restart_starvation`): whether the EMA trigger has
    // produced any restart yet. One EMA restart disarms the fallback for the
    // rest of the solve — a trigger that fired and went quiet is resting on
    // purpose (deep refutation phases look exactly like that); one that
    // never fired is dead.
    ema_restart_fired: bool,
    // Trail-progress tracking for the fallback's second gate: the deepest
    // trail seen this solve and the conflict count when it last improved. A
    // run still reaching new maxima is heading somewhere (usually a model) —
    // the fallback leaves it alone even with a dead EMA trigger.
    progress_trail: usize,
    progress_conflict: u64,
    // On-the-fly self-subsumption: (clause, pivot literal) pairs detected
    // during conflict analysis, applied at the next restart boundary (the
    // strengthened clause is implied by the resolvent, so deferring is sound).
    pending_strengthen: Vec<(ClauseRef, Lit)>,
    // Rotating cursor into `learnts` for the budgeted vivification rounds,
    // and the global conflict count at the last round (pacing).
    vivify_head: usize,
    last_vivify_conflicts: u64,
    // CNF inprocessing state: occurrence lists, freeze/eliminated sets, and
    // the reconstruction stack of elided clauses (see `eliminate.rs`).
    elim: Eliminator,
    // Clause activity.
    cla_inc: f64,
    // Adaptive learnt-database limit (grows by 10% per restart, capped by
    // `config.max_learnts_base`).
    max_learnts: f64,
    // Conflict-analysis scratch buffers (reused across conflicts so that the
    // hot path performs no heap allocation in steady state).
    seen: Vec<bool>,
    learnt_scratch: Vec<Lit>,
    toclear_scratch: Vec<Lit>,
    add_scratch: Vec<Lit>,
    // LBD computation: one stamp slot per decision level.
    level_stamp: Vec<u64>,
    stamp: u64,
    // Released-variable recycling.
    released_vars: Vec<Var>,
    free_vars: Vec<Var>,
    free_mark: Vec<bool>,
    simplify_mark: usize,
    simplify_props_mark: u64,
    // Solver status.
    ok: bool,
    assumptions: Vec<Lit>,
    assumptions_sorted: Vec<Lit>,
    conflict_core: Vec<Lit>,
    model: Vec<u8>,
    conflict_budget: Option<u64>,
    stop: StopFlag,
    budget: ResourceBudget,
    /// Arena bytes currently charged against `budget` (capacity snapshot).
    arena_charged: u64,
    faults: FaultPlan,
    proof: ProofRecorder,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_clauses", &self.num_clauses())
            .field("ok", &self.ok)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Solver {
    /// Creates an empty solver with default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            arena: ClauseArena::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            vardata: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order_heap: ActivityHeap::new(),
            polarity: Vec::new(),
            best_phase: Vec::new(),
            best_trail: 0,
            rephase_count: 0,
            next_rephase: 0,
            ema_fast: Ema::default(),
            ema_slow: Ema::default(),
            ema_trail: Ema::default(),
            conflicts_since_restart: 0,
            luby_restarts: 0,
            ema_restart_fired: false,
            progress_trail: 0,
            progress_conflict: 0,
            pending_strengthen: Vec::new(),
            vivify_head: 0,
            last_vivify_conflicts: 0,
            elim: Eliminator::new(),
            cla_inc: 1.0,
            max_learnts: 0.0,
            seen: Vec::new(),
            learnt_scratch: Vec::new(),
            toclear_scratch: Vec::new(),
            add_scratch: Vec::new(),
            level_stamp: vec![0],
            stamp: 0,
            released_vars: Vec::new(),
            free_vars: Vec::new(),
            free_mark: Vec::new(),
            simplify_mark: 0,
            simplify_props_mark: 0,
            ok: true,
            assumptions: Vec::new(),
            assumptions_sorted: Vec::new(),
            conflict_core: Vec::new(),
            model: Vec::new(),
            conflict_budget: None,
            stop: StopFlag::new(),
            budget: ResourceBudget::unlimited(),
            arena_charged: 0,
            faults: FaultPlan::inert(),
            proof: ProofRecorder::default(),
            stats: SolverStats::new(),
        }
    }

    // ------------------------------------------------------------------
    // Variables and clauses
    // ------------------------------------------------------------------

    /// Allocates a variable and returns it, preferring to recycle one
    /// previously retired through [`Solver::release_var`].
    pub fn new_var(&mut self) -> Var {
        if let Some(v) = self.free_vars.pop() {
            let i = v.index();
            debug_assert!(self.assigns[i] >= L_UNDEF);
            self.free_mark[i] = false;
            self.activity[i] = 0.0;
            self.polarity[i] = self.config.default_polarity;
            self.best_phase[i] = self.config.default_polarity;
            self.vardata[i] = VarData::default();
            // The variable may still sit in the heap, positioned by its stale
            // pre-release activity; sift it down to match the reset.
            self.order_heap.decreased(i, &self.activity);
            self.order_heap.insert(i, &self.activity);
            self.elim.on_recycle(i);
            self.stats.recycled_vars += 1;
            return v;
        }
        self.fresh_var()
    }

    fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(L_UNDEF);
        self.vardata.push(VarData::default());
        self.activity.push(0.0);
        self.polarity.push(self.config.default_polarity);
        self.best_phase.push(self.config.default_polarity);
        self.seen.push(false);
        self.free_mark.push(false);
        self.elim.on_fresh_var();
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order_heap.grow_to(self.assigns.len());
        self.order_heap.insert(v.index(), &self.activity);
        v
    }

    /// Ensures that variables `0..n` exist (never recycles released ones).
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.fresh_var();
        }
    }

    /// Ensures that `var` exists.
    pub fn ensure_var(&mut self, var: Var) {
        self.ensure_vars(var.index() + 1);
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem (non-learnt, non-deleted) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|&&c| !self.arena.is_deleted(c))
            .count()
    }

    /// Returns `false` if the clause database is already known to be
    /// unsatisfiable at the top level.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Returns solver statistics collected so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The active search configuration.
    pub fn search_config(&self) -> &SearchConfig {
        &self.config.search
    }

    /// Replaces the search configuration (restart policy, phase handling,
    /// chronological backtracking, inprocessing). Takes effect from the next
    /// [`Solver::solve`] call; safe to call at any point between calls.
    pub fn set_search_config(&mut self, search: SearchConfig) {
        self.config.search = search;
    }

    /// Limits the number of conflicts a single [`Solver::solve`] call may use;
    /// `None` removes the limit. When the budget is exhausted `solve` returns
    /// [`SatResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a shared cancellation flag, polled inside the search loop.
    ///
    /// Once the flag is raised (possibly from another thread), the current and
    /// every future [`Solver::solve`] call returns [`SatResult::Unknown`]
    /// promptly instead of running to completion.
    pub fn set_stop_flag(&mut self, stop: StopFlag) {
        self.stop = stop;
    }

    /// Installs a shared memory budget. The solver charges the budget for its
    /// clause-arena storage and polls it wherever it polls the stop flag:
    /// once exhausted, the current and every future [`Solver::solve`] call
    /// returns [`SatResult::Unknown`] promptly. The caller (engine layer)
    /// distinguishes memory-out from cancellation by inspecting its own
    /// budget handle.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        // Move the already-reserved arena storage onto the new budget so a
        // solver rebuilt mid-run keeps honest accounting.
        self.budget.uncharge(self.arena_charged);
        budget.charge(self.arena_charged);
        self.budget = budget;
    }

    /// Installs a fault-injection plan (inert unless the `fault-injection`
    /// feature is enabled; see [`FaultPlan`]).
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Turns on DRAT proof tracing for this solver. Returns `true` when the
    /// tracer is compiled in (the `proof-log` feature) and recording actually
    /// starts; without the feature this is a no-op returning `false`.
    ///
    /// Call this on a **fresh** solver, before any clause is added: the proof
    /// only covers activity after this call, so enabling late yields a trace
    /// whose input lines are incomplete and uncheckable.
    pub fn enable_proof_tracing(&mut self) -> bool {
        self.proof.enable()
    }

    /// The DRAT proof recorded so far, or `None` when tracing was never
    /// enabled (or is compiled out). The trace spans all `solve` calls made
    /// since [`Solver::enable_proof_tracing`].
    pub fn proof(&self) -> Option<&Proof> {
        self.proof.proof()
    }

    /// Executes the scheduled fault for `site`, if one is due. Compiles to
    /// nothing when the `fault-injection` feature is off.
    #[inline]
    fn poll_fault(&self, site: FaultSite) {
        match self.faults.poll(site) {
            None => {}
            Some(FaultKind::Panic) => panic!("{INJECTED_PANIC} at {site:?}"),
            Some(FaultKind::MemOut) => self.budget.exhaust(),
            Some(FaultKind::Cancel) => self.stop.stop(),
        }
    }

    /// Re-syncs the arena storage charge after the arena grew or shrank.
    fn sync_arena_charge(&mut self) {
        let now = self.arena.capacity_bytes();
        if now > self.arena_charged {
            self.budget.charge(now - self.arena_charged);
        } else {
            self.budget.uncharge(self.arena_charged - now);
        }
        self.arena_charged = now;
    }

    /// Adds a clause given as an iterator of literals.
    ///
    /// Returns `false` if the clause database became unsatisfiable at the top
    /// level (in which case future `solve` calls return `Unsat` immediately).
    ///
    /// Variables mentioned by the clause are created on demand.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut tmp = std::mem::take(&mut self.add_scratch);
        tmp.clear();
        tmp.extend(lits);
        let result = self.add_clause_inner(&mut tmp);
        self.add_scratch = tmp;
        result
    }

    fn add_clause_inner(&mut self, lits: &mut Vec<Lit>) -> bool {
        if let Some(max) = lits.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max + 1);
        }
        // A new clause over the witness variable of an elided clause could be
        // broken by the model-reconstruction flip on that witness: restore
        // everything first, and freeze the triggering variables so repeated
        // adds over them cannot thrash eliminate/restore cycles.
        if self.elim.has_entries() {
            let mut restore = false;
            for l in lits.iter() {
                let v = l.var().index();
                if self.elim.is_witness_var(v) {
                    self.set_frozen_raw(v);
                    restore = true;
                }
            }
            if restore {
                self.restore_eliminated();
                if !self.ok {
                    return false;
                }
            }
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautologies and clauses already satisfied at the top level are
        // dropped without ever entering the database, so they are not traced
        // either: the proof describes exactly the clauses the solver reasons
        // with.
        let traced: Option<Vec<Lit>> = if self.proof.is_active() {
            Some(lits.clone())
        } else {
            None
        };
        // Simplify in place: drop level-0-false literals, detect tautologies
        // and clauses already satisfied at the top level.
        let mut kept = 0;
        let mut prev: Option<Lit> = None;
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            i += 1;
            if let Some(p) = prev {
                if p.var() == l.var() {
                    // p and l are the two polarities of the same var: tautology.
                    return true;
                }
            }
            prev = Some(l);
            let value = self.lit_value(l);
            if value == L_TRUE {
                return true;
            }
            // Only drop literals that are false at level 0.
            if value == L_FALSE && self.vardata[l.var().index()].level == 0 {
                continue;
            }
            lits[kept] = l;
            kept += 1;
        }
        lits.truncate(kept);
        self.stats.original_clauses += 1;
        if let Some(original) = traced {
            self.proof.input(&original);
            if lits.len() != original.len() {
                // Level-0-false literals were dropped: the shortened clause is
                // a derived consequence (RUP via the root-level units).
                self.proof.add(lits);
            }
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], NO_REASON);
                self.ok = self.propagate().is_none();
                if !self.ok && self.proof.is_active() {
                    self.proof.add(&[]);
                }
                self.ok
            }
            _ => {
                let cref = self.attach_clause(lits, false);
                self.clauses.push(cref);
                true
            }
        }
    }

    /// Adds a [`Clause`] by reference. See [`Solver::add_clause`].
    pub fn add_clause_ref(&mut self, clause: &Clause) -> bool {
        self.add_clause(clause.iter())
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.watches[(!lits[0]).code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.learnts.push(cref);
            self.stats.learnt_clauses += 1;
        }
        if self.config.search.elim {
            // Queue the clause as a subsumer candidate for the next
            // elimination round (capped; purely a performance hint).
            self.elim.touch(cref);
        }
        self.sync_arena_charge();
        cref
    }

    /// Marks a clause deleted. Its watchers are dropped lazily the next time
    /// propagation walks over them (or wholesale by garbage collection), so
    /// deletion is O(1) instead of O(|watch list|).
    fn delete_clause(&mut self, cref: ClauseRef) {
        if self.clause_is_locked(cref) {
            // Only clauses satisfied at level 0 are deleted while locked; the
            // implied literal keeps its level-0 assignment without a reason.
            // Such deletions are kept out of the proof (drat-trim convention):
            // the solver goes on using the implied literal, so the checker
            // must keep its reason clause available too.
            let first = self.arena.lit(cref, 0);
            self.vardata[first.var().index()].reason = NO_REASON;
        } else if self.proof.is_active() {
            let lits: Vec<Lit> = (0..self.arena.len(cref))
                .map(|i| self.arena.lit(cref, i))
                .collect();
            self.proof.delete(&lits);
        }
        self.arena.delete(cref);
    }

    // ------------------------------------------------------------------
    // Released variables and top-level simplification
    // ------------------------------------------------------------------

    /// Retires a variable: asserts `lit` at the top level and schedules the
    /// variable for recycling by a future [`Solver::new_var`] once
    /// [`Solver::simplify`] has removed every clause `lit` satisfies.
    ///
    /// The caller must guarantee that after this call the variable is never
    /// used again and that `lit` satisfies every clause containing the
    /// variable (the IC3 activation-literal discipline: the variable occurs
    /// only as `!lit` in clauses, and is only ever assumed as `lit`).
    pub fn release_var(&mut self, lit: Lit) {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert!(
            !self.free_mark[lit.var().index()],
            "variable released twice"
        );
        self.stats.released_vars += 1;
        // The variable index will eventually be recycled by `new_var`; elided
        // clauses that merely mention it would then be reconstructed against
        // an unrelated variable, so restore them while the retirement is
        // still observable.
        if self.elim.has_entries() && self.elim.is_mentioned_var(lit.var().index()) {
            self.restore_eliminated();
        }
        self.free_mark[lit.var().index()] = true;
        self.released_vars.push(lit.var());
        self.add_clause([lit]);
    }

    /// Number of variables released but not yet reclaimed by
    /// [`Solver::simplify`] (the garbage a solver rebuild would clear).
    pub fn num_released_pending(&self) -> usize {
        self.released_vars.len()
    }

    /// Removes clauses satisfied at the top level and recycles released
    /// variables. Returns `false` if the database is unsatisfiable.
    ///
    /// [`Solver::solve`] runs this opportunistically: the full database scan
    /// is only paid once enough propagation work has happened to amortize it
    /// (or once a batch of released variables is pending). Calling `simplify`
    /// directly forces the scan.
    pub fn simplify(&mut self) -> bool {
        self.simplify_inner(true)
    }

    fn simplify_inner(&mut self, force: bool) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        if self.propagate().is_some() {
            self.ok = false;
            if self.proof.is_active() {
                self.proof.add(&[]);
            }
            return false;
        }
        if self.trail.len() == self.simplify_mark && self.released_vars.is_empty() {
            return true;
        }
        if !force {
            let amortized =
                self.stats.propagations - self.simplify_props_mark >= 4 * self.arena.words() as u64;
            if !amortized && self.released_vars.len() < RELEASE_BATCH {
                return true;
            }
        }
        self.remove_satisfied(true);
        self.remove_satisfied(false);
        if !self.released_vars.is_empty() {
            // Every clause containing a released variable was just removed as
            // satisfied, so the variable can be scrubbed from the trail and
            // reused as if fresh.
            let mut kept = 0;
            let mut i = 0;
            while i < self.trail.len() {
                let lit = self.trail[i];
                i += 1;
                if self.free_mark[lit.var().index()] {
                    continue;
                }
                self.trail[kept] = lit;
                kept += 1;
            }
            self.trail.truncate(kept);
            while let Some(v) = self.released_vars.pop() {
                self.assigns[v.index()] = L_UNDEF;
                self.vardata[v.index()] = VarData::default();
                self.free_vars.push(v);
            }
        }
        self.qhead = self.trail.len();
        self.simplify_mark = self.trail.len();
        self.simplify_props_mark = self.stats.propagations;
        self.check_garbage();
        true
    }

    fn remove_satisfied(&mut self, learnt_list: bool) {
        let mut list = std::mem::take(if learnt_list {
            &mut self.learnts
        } else {
            &mut self.clauses
        });
        let mut kept = 0;
        let mut i = 0;
        while i < list.len() {
            let cref = list[i];
            i += 1;
            if self.arena.is_deleted(cref) {
                continue;
            }
            if self.clause_is_satisfied(cref) {
                self.delete_clause(cref);
            } else {
                list[kept] = cref;
                kept += 1;
            }
        }
        list.truncate(kept);
        if learnt_list {
            self.stats.learnt_clauses = list.len() as u64;
            self.learnts = list;
        } else {
            self.clauses = list;
        }
    }

    fn clause_is_satisfied(&self, cref: ClauseRef) -> bool {
        (0..self.arena.len(cref)).any(|i| self.lit_value(self.arena.lit(cref, i)) == L_TRUE)
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Compacts the clause arena when at least 20% of it is wasted by deleted
    /// clauses, patching every stored [`ClauseRef`] (clause lists, trail
    /// reasons) and rebuilding the watch lists.
    fn check_garbage(&mut self) {
        if self.arena.words() > 1024 && self.arena.wasted() * 5 > self.arena.words() {
            self.poll_fault(FaultSite::ArenaGc);
            self.garbage_collect();
        }
    }

    fn garbage_collect(&mut self) {
        let arena = &self.arena;
        self.clauses.retain(|&c| !arena.is_deleted(c));
        self.learnts.retain(|&c| !arena.is_deleted(c));
        self.pending_strengthen
            .retain(|&(c, _)| !arena.is_deleted(c));
        let (compact, reloc) = std::mem::take(&mut self.arena).garbage_collect();
        self.arena = compact;
        for cref in self.clauses.iter_mut().chain(self.learnts.iter_mut()) {
            *cref = reloc.map(*cref);
        }
        for (cref, _) in self.pending_strengthen.iter_mut() {
            *cref = reloc.map(*cref);
        }
        self.elim.relocate(&reloc);
        // Only assigned variables carry reasons, and locked clauses are never
        // deleted (deletion clears the reason), so every reason relocates.
        for &lit in &self.trail {
            let vd = &mut self.vardata[lit.var().index()];
            if vd.reason != NO_REASON {
                vd.reason = reloc.map(vd.reason);
            }
        }
        for ws in &mut self.watches {
            ws.clear();
        }
        let mut i = 0;
        while i < self.clauses.len() {
            let cref = self.clauses[i];
            self.attach_watchers(cref);
            i += 1;
        }
        let mut i = 0;
        while i < self.learnts.len() {
            let cref = self.learnts[i];
            self.attach_watchers(cref);
            i += 1;
        }
        self.sync_arena_charge();
        self.stats.garbage_collections += 1;
    }

    fn attach_watchers(&mut self, cref: ClauseRef) {
        let l0 = self.arena.lit(cref, 0);
        let l1 = self.arena.lit(cref, 1);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    // ------------------------------------------------------------------
    // Values and models
    // ------------------------------------------------------------------

    /// Evaluates `lit` under the current assignment: [`L_TRUE`], [`L_FALSE`],
    /// or `>= L_UNDEF` when the variable is unassigned (sign-XOR evaluation —
    /// no branch, no `Option`).
    #[inline]
    fn lit_value(&self, lit: Lit) -> u8 {
        self.assigns[lit.var().index()] ^ lit.is_neg() as u8
    }

    /// The value of `var` in the most recent satisfying model, if any.
    ///
    /// Returns `None` for variables the model leaves unconstrained or when the
    /// last call was not `Sat`.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        match self.model.get(var.index()) {
            Some(&v) if v < L_UNDEF => Some(v == L_TRUE),
            _ => None,
        }
    }

    /// The value of `lit` in the most recent satisfying model, if any.
    pub fn model_value_lit(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit.var())
            .map(|v| if lit.is_pos() { v } else { !v })
    }

    /// A borrowed view of the most recent satisfying model's packed buffer.
    ///
    /// Callers that read many variables after one `Sat` answer (e.g. IC3
    /// extracting predecessor/input/successor cubes from one model) should
    /// take this view once instead of going through [`Solver::model_value`]
    /// per variable.
    pub fn model(&self) -> ModelView<'_> {
        ModelView {
            values: &self.model,
        }
    }

    /// The subset of the last `solve` call's assumptions that were used to
    /// derive unsatisfiability (only meaningful after [`SatResult::Unsat`]).
    ///
    /// The conjunction of these assumption literals together with the clause
    /// database is unsatisfiable. The slice is sorted.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Returns `true` if `lit` is in the unsat core of the last `solve` call.
    pub fn core_contains(&self, lit: Lit) -> bool {
        // The core is kept sorted (see `analyze_final`), so membership is a
        // binary search instead of a linear scan.
        self.conflict_core.binary_search(&lit).is_ok()
    }

    // ------------------------------------------------------------------
    // Trail management
    // ------------------------------------------------------------------

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
        // Keep one LBD stamp slot per decision level ever reached. Levels are
        // not bounded by the variable count: an already-satisfied (e.g.
        // duplicate) assumption opens a decision level without assigning
        // anything, so the slot is grown here rather than in `fresh_var`.
        if self.level_stamp.len() <= self.trail_lim.len() {
            self.level_stamp.push(0);
        }
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        let v = lit.var().index();
        debug_assert!(self.assigns[v] >= L_UNDEF);
        self.assigns[v] = lit.is_neg() as u8;
        self.vardata[v] = VarData {
            level: self.decision_level(),
            reason,
        };
        self.trail.push(lit);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        let phase_saving = self.config.search.phase_saving;
        for i in (target..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if phase_saving {
                self.polarity[v] = lit.asserted_value();
            }
            self.assigns[v] = L_UNDEF;
            self.vardata[v].reason = NO_REASON;
            self.order_heap.insert(v, &self.activity);
        }
        self.trail.truncate(target);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    // ------------------------------------------------------------------
    // Propagation
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Option<ClauseRef> {
        self.poll_fault(FaultSite::Propagate);
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Clauses watching ¬p (which just became false) must be inspected;
            // by the attach convention they live in the list indexed by `p`.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0;
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Fast path: blocker already true.
                let blocker_value = self.lit_value(w.blocker);
                if blocker_value == L_TRUE {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let cref = w.cref;
                // One header read gives the length and the deleted flag;
                // watchers of deleted clauses are dropped lazily here.
                let (clause_len, deleted) = self.arena.len_and_deleted(cref);
                if deleted {
                    continue;
                }
                // Normalize so that position 1 holds the falsified watch.
                let l0 = self.arena.lit(cref, 0);
                let first = if l0 == false_lit {
                    let l1 = self.arena.lit(cref, 1);
                    self.arena.swap_lits(cref, 0, 1);
                    l1
                } else {
                    l0
                };
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                if clause_len == 2 {
                    // Binary fast path: `first` is the only other literal and
                    // is always the blocker, whose value we already know — the
                    // clause is unit or conflicting, never re-watched.
                    debug_assert_eq!(first, w.blocker);
                    ws[kept] = w;
                    kept += 1;
                    if blocker_value == L_FALSE {
                        while i < ws.len() {
                            ws[kept] = ws[i];
                            kept += 1;
                            i += 1;
                        }
                        conflict = Some(cref);
                        self.qhead = self.trail.len();
                    } else {
                        self.unchecked_enqueue(first, cref);
                    }
                    continue;
                }
                if first != w.blocker && self.lit_value(first) == L_TRUE {
                    ws[kept] = Watcher {
                        cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..clause_len {
                    if self.lit_value(self.arena.lit(cref, k)) != L_FALSE {
                        self.arena.swap_lits(cref, 1, k);
                        let new_watch = self.arena.lit(cref, 1);
                        self.watches[(!new_watch).code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[kept] = Watcher {
                    cref,
                    blocker: first,
                };
                kept += 1;
                if self.lit_value(first) == L_FALSE {
                    // Conflict: keep the remaining watchers and stop.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                } else {
                    self.unchecked_enqueue(first, cref);
                }
            }
            ws.truncate(kept);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Fills `self.learnt_scratch` with the
    /// learnt clause (asserting literal at index 0, second watch at index 1)
    /// and returns the backtrack level and the clause's LBD. Allocation-free:
    /// the clause is built in reusable scratch buffers, and antecedent
    /// literals are read straight out of the arena by index.
    fn analyze(&mut self, mut confl: ClauseRef) -> (u32, u32) {
        let mut learnt = std::mem::take(&mut self.learnt_scratch);
        learnt.clear();
        learnt.push(Lit::pos(Var::new(0))); // placeholder for the UIP
        let mut path_c: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let subsume = self.config.search.subsume;
        loop {
            if self.arena.is_learnt(confl) {
                self.bump_clause_activity(confl);
            }
            let start = usize::from(p.is_some());
            let len = self.arena.len(confl);
            // Size of the current resolvent (seen literals), sampled before
            // this antecedent's literals are merged in: `path_c` literals at
            // the conflict level plus the below-level ones already in `learnt`
            // (minus the UIP placeholder at index 0).
            let resolvent_size = path_c as usize + learnt.len() - 1;
            let mut already_seen = 0usize;
            for k in start..len {
                let q = self.arena.lit(confl, k);
                let v = q.var().index();
                if !self.seen[v] && self.vardata[v].level > 0 {
                    self.bump_var_activity(q.var());
                    self.seen[v] = true;
                    if self.vardata[v].level >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                } else if self.seen[v] {
                    already_seen += 1;
                }
            }
            // On-the-fly self-subsumption (Han–Somenzi): if every literal of
            // the resolvent already occurs in this antecedent, the resolution
            // step's result subsumes the antecedent minus the pivot, so the
            // antecedent can be strengthened by dropping the pivot. The
            // strengthening is *recorded* here and applied at the next restart
            // boundary, where detach/re-attach is trivially safe.
            if subsume
                && already_seen == resolvent_size
                && len > 2
                && self.arena.is_learnt(confl)
                && self.pending_strengthen.len() < PENDING_STRENGTHEN_CAP
            {
                if let Some(pivot) = p {
                    self.pending_strengthen.push((confl, pivot));
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            p = Some(pl);
            if path_c == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.vardata[pl.var().index()].reason;
            debug_assert_ne!(confl, NO_REASON);
        }

        // Basic clause minimization: drop literals implied by the rest. The
        // pre-minimization clause is parked in `toclear_scratch` so the seen
        // flags of removed literals can still be cleared afterwards.
        let mut toclear = std::mem::take(&mut self.toclear_scratch);
        toclear.clear();
        toclear.extend_from_slice(&learnt);
        let mut kept = 1;
        let mut i = 1;
        while i < learnt.len() {
            if !self.literal_is_redundant(learnt[i]) {
                learnt[kept] = learnt[i];
                kept += 1;
            }
            i += 1;
        }
        learnt.truncate(kept);
        for &l in &toclear {
            self.seen[l.var().index()] = false;
        }
        self.toclear_scratch = toclear;

        // Compute backtrack level and move the second-highest-level literal to
        // position 1 so that it is watched after the backjump.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.vardata[learnt[i].var().index()].level
                    > self.vardata[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.vardata[learnt[1].var().index()].level
        };

        // LBD: number of distinct decision levels in the learnt clause,
        // counted with a per-level stamp (no clearing pass needed).
        self.stamp += 1;
        let mut lbd = 0u32;
        for &l in &learnt {
            let level = self.vardata[l.var().index()].level as usize;
            if self.level_stamp[level] != self.stamp {
                self.level_stamp[level] = self.stamp;
                lbd += 1;
            }
        }

        self.learnt_scratch = learnt;
        (bt_level, lbd)
    }

    /// Returns `true` if the literal's reason clause is entirely made of seen or
    /// level-0 literals, i.e. it can be removed from the learnt clause.
    fn literal_is_redundant(&self, lit: Lit) -> bool {
        let reason = self.vardata[lit.var().index()].reason;
        if reason == NO_REASON {
            return false;
        }
        (1..self.arena.len(reason)).all(|k| {
            let v = self.arena.lit(reason, k).var().index();
            self.seen[v] || self.vardata[v].level == 0
        })
    }

    /// Computes the assumption core after a conflict with assumption literal `p`
    /// (i.e. `¬p` is implied by the clause database and earlier assumptions).
    /// The core ends up sorted, which `core_contains` relies on.
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            let reason = self.vardata[v].reason;
            if reason == NO_REASON {
                debug_assert!(self.vardata[v].level > 0);
                // A decision: under assumptions, every decision below the
                // assumption levels is an assumption literal.
                if lit != p {
                    self.conflict_core.push(lit);
                }
            } else {
                for k in 1..self.arena.len(reason) {
                    let q = self.arena.lit(reason, k);
                    if self.vardata[q.var().index()].level > 0 {
                        self.seen[q.var().index()] = true;
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
        // Keep only literals that are actual assumptions of this call
        // (decisions above the assumption prefix can never appear, but be
        // defensive). Binary search on the sorted assumption copy instead of
        // the former O(|core| · |assumptions|) scan.
        let sorted = &self.assumptions_sorted;
        self.conflict_core
            .retain(|l| sorted.binary_search(l).is_ok());
        self.conflict_core.sort_unstable();
        self.conflict_core.dedup();
    }

    // ------------------------------------------------------------------
    // Activities
    // ------------------------------------------------------------------

    fn bump_var_activity(&mut self, var: Var) {
        let v = var.index();
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.order_heap.rebuild(&self.activity);
        }
        self.order_heap.bumped(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause_activity(&mut self, cref: ClauseRef) {
        let activity = self.arena.activity(cref) + self.cla_inc;
        self.arena.set_activity(cref, activity);
        if activity > 1e20 {
            let mut i = 0;
            while i < self.learnts.len() {
                let lc = self.learnts[i];
                let rescaled = self.arena.activity(lc) * 1e-20;
                self.arena.set_activity(lc, rescaled);
                i += 1;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= self.config.clause_decay;
    }

    // ------------------------------------------------------------------
    // Learnt-clause database reduction
    // ------------------------------------------------------------------

    fn clause_is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.arena.lit(cref, 0);
        self.lit_value(first) == L_TRUE && self.vardata[first.var().index()].reason == cref
    }

    /// Removes the worst half of the learnt database: highest LBD first,
    /// ties broken by lowest activity (`f64::total_cmp`). Glue clauses
    /// (LBD ≤ [`GLUE_LBD`]), binary clauses, and reason clauses survive.
    fn reduce_db(&mut self) {
        let mut learnts = std::mem::take(&mut self.learnts);
        let arena = &self.arena;
        learnts.retain(|&c| !arena.is_deleted(c));
        learnts.sort_unstable_by(|&a, &b| {
            arena
                .lbd(b)
                .cmp(&arena.lbd(a))
                .then_with(|| arena.activity(a).total_cmp(&arena.activity(b)))
        });
        let target = learnts.len() / 2;
        let mut removed = 0;
        let mut kept = 0;
        let mut i = 0;
        while i < learnts.len() {
            let cref = learnts[i];
            let removable = i < target
                && self.arena.len(cref) > 2
                && self.arena.lbd(cref) > GLUE_LBD
                && !self.clause_is_locked(cref);
            if removable {
                self.delete_clause(cref);
                removed += 1;
            } else {
                learnts[kept] = cref;
                kept += 1;
            }
            i += 1;
        }
        learnts.truncate(kept);
        self.stats.removed_clauses += removed;
        self.stats.learnt_clauses = learnts.len() as u64;
        self.learnts = learnts;
        self.check_garbage();
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let v = self.order_heap.pop_max(&self.activity)?;
            if self.assigns[v] >= L_UNDEF && !self.free_mark[v] && !self.elim.is_eliminated_idx(v) {
                let var = Var::new(v as u32);
                return Some(Lit::new(var, self.polarity[v]));
            }
        }
    }

    /// Snapshots the polarities of the deepest trail reached so far in the
    /// current solve call (the "best phase": the assignment that got closest
    /// to a model), fed back into decisions by the rephasing schedule.
    fn save_best_phase(&mut self) {
        self.best_trail = self.trail.len();
        for i in 0..self.trail.len() {
            let lit = self.trail[i];
            self.best_phase[lit.var().index()] = lit.asserted_value();
        }
    }

    /// Rotates the decision polarities at a restart boundary: best-phase
    /// snapshot, then the configured default, then the inverted snapshot.
    /// Diversifies the search out of a stuck region while the snapshot keeps
    /// pulling it back towards the most promising assignment seen.
    fn rephase(&mut self) {
        self.stats.rephases += 1;
        match self.rephase_count % 3 {
            0 => self.polarity.copy_from_slice(&self.best_phase),
            1 => self.polarity.fill(self.config.default_polarity),
            _ => {
                for (p, &b) in self.polarity.iter_mut().zip(&self.best_phase) {
                    *p = !b;
                }
            }
        }
        self.rephase_count += 1;
    }

    /// `true` while the trail is so far above its long-run average that a
    /// restart should be blocked (the solver is probably closing in on a
    /// model). Counts the block.
    fn restart_blocked(&mut self) -> bool {
        let blocking = self.config.search.restart_blocking;
        if blocking > 0.0 && self.trail.len() as f64 > blocking * self.ema_trail.get() {
            self.stats.blocked_restarts += 1;
            return true;
        }
        false
    }

    /// Decides whether the search should restart now, per the configured
    /// policy. For the EMA policy this may instead *block* the restart (and
    /// defuse the fast average) while the trail is far above its long-run
    /// average — the solver is probably closing in on a model.
    fn restart_due(&mut self) -> bool {
        let search = self.config.search;
        let luby_due = {
            let interval = luby(2.0, self.luby_restarts) * search.restart_base as f64;
            self.conflicts_since_restart >= interval as u64
        };
        match search.restart {
            RestartPolicy::Luby => luby_due,
            RestartPolicy::Ema => {
                let ema_due = self.conflicts_since_restart >= search.restart_min_conflicts
                    && self.ema_fast.get() > search.restart_margin * self.ema_slow.get();
                if ema_due {
                    if self.restart_blocked() {
                        // Defuse the fast average so the trigger does not
                        // re-fire on the very next conflict.
                        let slow = self.ema_slow.get();
                        self.ema_fast.set(slow);
                        return false;
                    }
                    self.ema_restart_fired = true;
                    return true;
                }
                // Luby fallback for solves whose EMA trigger is dead on
                // arrival (see `SearchConfig::restart_starvation`): flat LBD
                // profiles never produce a restart, losing to a periodic
                // schedule and never reaching the restart-boundary
                // inprocessing passes. Only fires while the search is stalled
                // (no new trail maximum for `restart_starvation` conflicts) —
                // a still-deepening run is converging on a model and keeps
                // the zero-restart advantage. Assumption-driven solves are
                // exempt: incremental queries are short, lean on trail and
                // phase locality across calls, and measurably lose more to
                // the forced repropagation than they gain from the schedule.
                // Deep trails still block (without defusing: the fallback
                // has no trigger state to defuse).
                if search.restart_starvation > 0
                    && !self.ema_restart_fired
                    && self.assumptions.is_empty()
                    && luby_due
                    && self.stats.conflicts - self.progress_conflict >= search.restart_starvation
                {
                    return !self.restart_blocked();
                }
                false
            }
        }
    }

    fn search(&mut self, total_conflicts_start: u64) -> Option<bool> {
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.conflict_core.clear();
                    if self.proof.is_active() {
                        // A root-level conflict: the empty clause is RUP (unit
                        // propagation over the database alone refutes it).
                        self.proof.add(&[]);
                    }
                    return Some(false);
                }
                if self.trail.len() > self.progress_trail {
                    self.progress_trail = self.trail.len();
                    self.progress_conflict = self.stats.conflicts;
                }
                if self.config.search.rephase_interval > 0 && self.trail.len() > self.best_trail {
                    self.save_best_phase();
                }
                let (bt_level, lbd) = self.analyze(confl);
                let search = self.config.search;
                self.ema_fast.update(lbd as f64, search.ema_fast_window);
                self.ema_slow.update(lbd as f64, search.ema_slow_window);
                self.ema_trail
                    .update(self.trail.len() as f64, search.ema_slow_window);
                // Chronological backtracking: when the backjump would discard
                // more than `chrono` levels of trail, undo only the conflicting
                // level instead. The asserting literal is still enqueued with
                // the learnt clause as its reason (every other literal of the
                // clause remains false), it just carries the higher level —
                // which is sound, merely conservative. Unit learnt clauses
                // always go to level 0.
                let dl = self.decision_level();
                let backtrack_to = if search.chrono > 0
                    && self.learnt_scratch.len() > 1
                    && dl - bt_level > search.chrono
                {
                    self.stats.chrono_backtracks += 1;
                    dl - 1
                } else {
                    bt_level
                };
                self.cancel_until(backtrack_to);
                let learnt = std::mem::take(&mut self.learnt_scratch);
                if self.proof.is_active() {
                    // Every learnt clause (first-UIP, minimized, under chrono
                    // backtracking or not) is RUP w.r.t. the current database.
                    self.proof.add(&learnt);
                }
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], NO_REASON);
                } else {
                    let first = learnt[0];
                    let cref = self.attach_clause(&learnt, true);
                    self.arena.set_lbd(cref, lbd);
                    self.bump_clause_activity(cref);
                    self.unchecked_enqueue(first, cref);
                }
                self.learnt_scratch = learnt;
                self.decay_var_activity();
                self.decay_clause_activity();
            } else {
                // No conflict.
                if self.restart_due() {
                    self.cancel_until(0);
                    return None;
                }
                if let Some(budget) = self.conflict_budget {
                    if self.stats.conflicts - total_conflicts_start >= budget {
                        self.cancel_until(0);
                        return None;
                    }
                }
                if self.stop.is_stopped() || self.budget.is_exhausted() {
                    self.cancel_until(0);
                    return None;
                }
                let cap = self.config.max_learnts_base + self.stats.original_clauses as usize / 3;
                let limit = (self.max_learnts as usize).min(cap);
                if self.learnts.len() > limit {
                    self.reduce_db();
                }
                // Make sure all assumptions are decided first.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < self.assumptions.len() {
                    let p = self.assumptions[self.decision_level() as usize];
                    let value = self.lit_value(p);
                    if value == L_TRUE {
                        self.new_decision_level();
                    } else if value == L_FALSE {
                        self.analyze_final(p);
                        return Some(false);
                    } else {
                        next = Some(p);
                        break;
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(l) => {
                            self.stats.decisions += 1;
                            l
                        }
                        None => return Some(true),
                    },
                };
                self.new_decision_level();
                self.unchecked_enqueue(decision, NO_REASON);
            }
        }
    }

    /// Decides the satisfiability of the clause database under `assumptions`.
    ///
    /// After [`SatResult::Sat`], the model is available through
    /// [`Solver::model_value`]. After [`SatResult::Unsat`],
    /// [`Solver::unsat_core`] returns the subset of assumptions that was used.
    /// [`SatResult::Unknown`] is only returned when a conflict budget is set
    /// ([`Solver::set_conflict_budget`]), a stop flag has been raised
    /// ([`Solver::set_stop_flag`]), or a memory budget has been exhausted
    /// ([`Solver::set_budget`]).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SatResult {
        self.stats.solves += 1;
        self.model.clear();
        self.conflict_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption over unknown variable {}",
                l.var()
            );
        }
        self.assumptions.clear();
        self.assumptions.extend_from_slice(assumptions);
        self.assumptions_sorted.clear();
        self.assumptions_sorted.extend_from_slice(assumptions);
        self.assumptions_sorted.sort_unstable();
        // Assumption variables must never be eliminated (and elided clauses
        // whose reconstruction witness they carry must come back before the
        // search reasons under them).
        self.freeze_assumptions();
        if !self.simplify_inner(false) {
            return SatResult::Unsat;
        }
        // The adaptive learnt limit persists across solve calls (it only ever
        // grows), and never starts below a third of the problem clauses.
        self.max_learnts = self
            .max_learnts
            .max(400.0)
            .max(self.stats.original_clauses as f64 / 3.0);
        let start_conflicts = self.stats.conflicts;
        self.best_trail = 0;
        self.conflicts_since_restart = 0;
        self.luby_restarts = 0;
        self.ema_restart_fired = false;
        self.progress_trail = 0;
        self.progress_conflict = self.stats.conflicts;
        self.rephase_count = 0;
        self.next_rephase = self.config.search.rephase_interval;
        let result;
        loop {
            match self.search(start_conflicts) {
                Some(true) => {
                    self.model.extend_from_slice(&self.assigns);
                    if self.elim.has_entries() {
                        // Extend the model over the elided clauses so the
                        // caller sees a model of everything it ever added.
                        self.repair_model();
                    }
                    result = SatResult::Sat;
                    break;
                }
                Some(false) => {
                    if self.proof.is_active() && !self.conflict_core.is_empty() {
                        // Assumption UNSAT: the negated core is RUP — its RUP
                        // check propagates the core literals and replays the
                        // final conflict's reason chain, none of which can
                        // have been deleted (reason clauses are locked).
                        let negated: Vec<Lit> = self.conflict_core.iter().map(|&l| !l).collect();
                        self.proof.add(&negated);
                    }
                    result = SatResult::Unsat;
                    break;
                }
                None => {
                    self.poll_fault(FaultSite::Restart);
                    if self.stop.is_stopped() || self.budget.is_exhausted() {
                        result = SatResult::Unknown;
                        break;
                    }
                    self.stats.restarts += 1;
                    self.luby_restarts += 1;
                    self.conflicts_since_restart = 0;
                    let slow = self.ema_slow.get();
                    self.ema_fast.set(slow);
                    self.max_learnts *= 1.1;
                    if let Some(budget) = self.conflict_budget {
                        if self.stats.conflicts - start_conflicts >= budget {
                            result = SatResult::Unknown;
                            break;
                        }
                    }
                    // Restart-boundary inprocessing: the search is back at
                    // decision level 0, so detach/re-attach surgery on the
                    // learnt database is safe and cheap here.
                    if self.config.search.subsume {
                        self.apply_pending_strengthenings();
                    }
                    if self.config.search.vivify
                        && self.stats.conflicts - self.last_vivify_conflicts
                            >= self.config.search.vivify_interval
                    {
                        self.last_vivify_conflicts = self.stats.conflicts;
                        self.vivify_round();
                    }
                    if self.ok
                        && self.config.search.elim
                        && self.stats.conflicts - self.elim.last_elim_conflicts
                            >= self.config.search.elim_interval
                    {
                        self.elim.last_elim_conflicts = self.stats.conflicts;
                        self.eliminate_round();
                    }
                    if !self.ok {
                        // Inprocessing derived top-level unsatisfiability
                        // (independent of the assumptions: learnt clauses are
                        // implied by the problem clauses alone).
                        self.conflict_core.clear();
                        result = SatResult::Unsat;
                        break;
                    }
                    let interval = self.config.search.rephase_interval;
                    if interval > 0 && self.stats.conflicts - start_conflicts >= self.next_rephase {
                        self.rephase();
                        self.next_rephase += interval;
                    }
                }
            }
        }
        self.cancel_until(0);
        self.assumptions.clear();
        result
    }

    // ------------------------------------------------------------------
    // Restart-boundary inprocessing
    // ------------------------------------------------------------------

    /// Propagation probe at a throwaway decision level: returns `true` when
    /// asserting the negation of every literal of `lits` runs into a
    /// conflict, i.e. the clause has the RUP property w.r.t. the current
    /// database. Leaves the trail exactly as it found it. Only used while
    /// proof tracing is active.
    fn probe_is_rup(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if lits.is_empty() {
            return false;
        }
        self.new_decision_level();
        let mut conflict = false;
        for &l in lits {
            let value = self.lit_value(l);
            if value == L_TRUE {
                // The database already propagated `l` under the assumed
                // prefix: assuming `¬l` is an immediate conflict.
                conflict = true;
                break;
            }
            if value == L_FALSE {
                continue;
            }
            self.unchecked_enqueue(!l, NO_REASON);
            if self.propagate().is_some() {
                conflict = true;
                break;
            }
        }
        self.cancel_until(0);
        conflict
    }

    /// Applies the self-subsumption strengthenings recorded by conflict
    /// analysis: each pending `(clause, pivot)` pair is rebuilt without the
    /// pivot (the resolvent that subsumed it was exactly the clause minus the
    /// pivot, so the shortened clause is implied). Runs at decision level 0;
    /// stale entries — clauses deleted or replaced since detection — are
    /// skipped.
    fn apply_pending_strengthenings(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.pending_strengthen.is_empty() || !self.ok {
            self.pending_strengthen.clear();
            return;
        }
        let pending = std::mem::take(&mut self.pending_strengthen);
        let mut kept: Vec<Lit> = Vec::new();
        for (cref, pivot) in pending {
            if !self.ok {
                break;
            }
            if self.arena.is_deleted(cref) {
                continue;
            }
            kept.clear();
            let mut found_pivot = false;
            let mut satisfied = false;
            for i in 0..self.arena.len(cref) {
                let l = self.arena.lit(cref, i);
                if l == pivot {
                    found_pivot = true;
                    continue;
                }
                let value = self.lit_value(l);
                if value < L_UNDEF && self.vardata[l.var().index()].level == 0 {
                    if value == L_TRUE {
                        satisfied = true;
                        break;
                    }
                    continue; // false at top level: drop alongside the pivot
                }
                kept.push(l);
            }
            // `found_pivot` guards against a clause that was rebuilt (e.g. by
            // vivification) into the same storage semantics; satisfied clauses
            // are left for the next simplification sweep.
            if !found_pivot || satisfied {
                continue;
            }
            if self.proof.is_active() {
                // The subsuming resolvent that justifies this strengthening
                // was never added to the database, so the shortened clause is
                // not guaranteed RUP. Certify it with a propagation probe
                // (the original clause is still attached and may participate);
                // when the probe cannot, skip the strengthening — it is a
                // performance hint, not a correctness obligation — so every
                // traced `Add` line stays checkable.
                if !self.probe_is_rup(&kept) {
                    continue;
                }
                self.proof.add(&kept);
            }
            let old_lbd = self.arena.lbd(cref);
            let old_activity = self.arena.activity(cref);
            self.delete_clause(cref);
            self.stats.strengthened_clauses += 1;
            match kept.len() {
                0 => self.ok = false,
                1 => {
                    let value = self.lit_value(kept[0]);
                    if value >= L_UNDEF {
                        self.unchecked_enqueue(kept[0], NO_REASON);
                        self.ok = self.propagate().is_none();
                    } else if value == L_FALSE {
                        self.ok = false;
                    }
                    if !self.ok && self.proof.is_active() {
                        self.proof.add(&[]);
                    }
                }
                _ => {
                    let new_cref = self.attach_clause(&kept, true);
                    self.arena.set_lbd(new_cref, old_lbd.min(kept.len() as u32));
                    self.arena.set_activity(new_cref, old_activity);
                }
            }
        }
        self.check_garbage();
    }

    /// One budgeted vivification round over the learnt database: for each
    /// inspected clause, assume the negation of its literals one at a time
    /// and propagate. A conflict proves the assumed prefix is itself an
    /// implied clause; an implied true literal closes the clause early; an
    /// implied false literal is redundant and dropped. Every replacement is a
    /// logical consequence of the formula, so this only ever shortens learnt
    /// clauses (or proves top-level unsatisfiability).
    fn vivify_round(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok || self.learnts.is_empty() {
            return;
        }
        let budget = self.stats.propagations + VIVIFY_PROP_BUDGET;
        let mut inspected = 0usize;
        let mut lits: Vec<Lit> = Vec::new();
        let mut kept: Vec<Lit> = Vec::new();
        // Probe assignments deliberately go through the normal phase-saving
        // path in `cancel_until`. Suppressing it (as CaDiCaL does during
        // probing) was tried and measured: on the paired A/B workloads it
        // *cost* 1.2-1.3x on the satisfiable-random and IC3-shaped
        // incremental benches — the probe phases act as cheap decision
        // diversification between restarts — so the "pollution" is kept.
        while inspected < VIVIFY_CLAUSES_PER_ROUND
            && self.stats.propagations < budget
            && self.ok
            && !self.learnts.is_empty()
            && !self.stop.is_stopped()
            && !self.budget.is_exhausted()
        {
            if self.vivify_head >= self.learnts.len() {
                self.vivify_head = 0;
            }
            let cref = self.learnts[self.vivify_head];
            self.vivify_head += 1;
            inspected += 1;
            if self.arena.is_deleted(cref) || self.clause_is_locked(cref) {
                continue;
            }
            let len = self.arena.len(cref);
            if len < 3 {
                continue;
            }
            lits.clear();
            lits.extend((0..len).map(|i| self.arena.lit(cref, i)));
            let old_lbd = self.arena.lbd(cref);
            // The clause stays attached during the probe. It can then
            // propagate its own last literal (or conflict through itself),
            // but only once every other literal is false — exactly the stage
            // at which the derived replacement equals the original clause, so
            // nothing is lost, and the unchanged common case avoids a
            // delete/re-allocate round trip through the arena (which would
            // also zero the clause's activity).
            kept.clear();
            let mut satisfied_at_top = false;
            for &l in &lits {
                let value = self.lit_value(l);
                if value == L_TRUE {
                    if self.vardata[l.var().index()].level == 0 {
                        satisfied_at_top = true; // satisfied forever: skip it
                    } else {
                        // ¬(kept) implies l: the clause closes early here.
                        kept.push(l);
                    }
                    break;
                }
                if value == L_FALSE {
                    // False at the top level, or implied false by ¬(kept):
                    // either way the literal is redundant in this clause.
                    continue;
                }
                kept.push(l);
                self.new_decision_level();
                self.unchecked_enqueue(!l, NO_REASON);
                if self.propagate().is_some() {
                    // ¬(kept) is contradictory, so `kept` is implied.
                    break;
                }
            }
            self.cancel_until(0);
            if satisfied_at_top || kept.len() >= lits.len() {
                continue; // satisfied, or nothing shortened: leave it attached
            }
            let old_activity = self.arena.activity(cref);
            if self.proof.is_active() {
                // Vivified replacements are RUP by construction — the probe
                // above *is* a unit-propagation refutation of their negation
                // (with the original clause still attached, which is why the
                // `Add` precedes the `Delete`).
                self.proof.add(&kept);
            }
            self.delete_clause(cref);
            self.stats.vivified_clauses += 1;
            match kept.len() {
                0 => self.ok = false,
                1 => {
                    let value = self.lit_value(kept[0]);
                    if value >= L_UNDEF {
                        self.unchecked_enqueue(kept[0], NO_REASON);
                        self.ok = self.propagate().is_none();
                    } else if value == L_FALSE {
                        self.ok = false;
                    }
                    if !self.ok && self.proof.is_active() {
                        self.proof.add(&[]);
                    }
                }
                _ => {
                    let new_cref = self.attach_clause(&kept, true);
                    self.arena.set_lbd(new_cref, old_lbd.min(kept.len() as u32));
                    self.arena.set_activity(new_cref, old_activity);
                }
            }
        }
        self.check_garbage();
    }
}

/// A cheap, borrowed view of a solver's most recent satisfying model (the
/// packed `lbool` buffer). Obtained from [`Solver::model`]; all reads are a
/// single index into the buffer.
#[derive(Clone, Copy, Debug)]
pub struct ModelView<'a> {
    values: &'a [u8],
}

impl ModelView<'_> {
    /// The model value of `var`, or `None` when the variable is unconstrained
    /// by the model (or the last call was not `Sat`).
    #[inline]
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.values.get(var.index()) {
            Some(&v) if v < L_UNDEF => Some(v == L_TRUE),
            _ => None,
        }
    }

    /// The model value of `lit`, or `None` when its variable is unconstrained.
    #[inline]
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        match self.values.get(lit.var().index()) {
            Some(&v) if v < L_UNDEF => Some(v ^ lit.is_neg() as u8 == L_TRUE),
            _ => None,
        }
    }
}

/// The Luby restart sequence scaled by `y`: 1, 1, 2, 1, 1, 2, 4, …
fn luby(y: f64, mut x: u32) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < (x as u64) + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size as u32;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..9).map(|i| luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        assert!(s.add_clause([a]));
        assert!(s.add_clause([!a, b]));
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model_value_lit(a), Some(true));
        assert_eq!(s.model_value_lit(b), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        assert!(s.add_clause([a]));
        assert!(!s.add_clause([!a]));
        assert!(!s.is_ok());
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn simple_unsat_core() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        s.add_clause([!a, b]);
        // Assume a and ¬b: contradiction needs exactly those two; c is irrelevant.
        assert_eq!(s.solve(&[a, !b, c]), SatResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a) || core.contains(&!b));
        assert!(!core.contains(&c));
        assert!(!s.core_contains(c));
        for &l in &core {
            assert!(s.core_contains(l));
        }
        // The core must itself be sufficient for unsatisfiability.
        assert_eq!(s.solve(&core), SatResult::Unsat);
    }

    #[test]
    fn solve_is_incremental() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        assert_eq!(s.solve(&[!a]), SatResult::Sat);
        assert_eq!(s.model_value_lit(b), Some(true));
        s.add_clause([!b]);
        assert_eq!(s.solve(&[!a]), SatResult::Unsat);
        assert_eq!(s.solve(&[]), SatResult::Sat);
        assert_eq!(s.model_value_lit(a), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: var p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * 2 + j));
        s.ensure_vars(6);
        for i in 0..3 {
            s.add_clause([var(i, 0), var(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn conflict_budget_returns_unknown() {
        // A hard-ish pigeonhole instance with a tiny conflict budget.
        let mut s = Solver::new();
        let n = 7u32; // pigeons
        let m = 6u32; // holes
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * m + j));
        s.ensure_vars((n * m) as usize);
        for i in 0..n {
            s.add_clause((0..m).map(|j| var(i, j)));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn raised_stop_flag_returns_unknown() {
        let mut s = Solver::new();
        let n = 8u32; // pigeons
        let m = 7u32; // holes
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * m + j));
        s.ensure_vars((n * m) as usize);
        for i in 0..n {
            s.add_clause((0..m).map(|j| var(i, j)));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        let stop = StopFlag::new();
        s.set_stop_flag(stop.clone());
        stop.stop();
        assert_eq!(s.solve(&[]), SatResult::Unknown);
        // A fresh flag lets the same solver finish the proof.
        s.set_stop_flag(StopFlag::new());
        assert_eq!(s.solve(&[]), SatResult::Unsat);
    }

    #[test]
    fn model_respects_all_clauses() {
        let mut s = Solver::new();
        // Random-ish 3-CNF with a known satisfying assignment: all true.
        s.ensure_vars(6);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(0, true), lit(1, false), lit(2, true)],
            vec![lit(3, true), lit(4, true)],
            vec![lit(0, false), lit(5, true)],
            vec![lit(2, true), lit(4, false), lit(5, true)],
        ];
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(&[]), SatResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| s.model_value_lit(l) == Some(true)),
                "clause {c:?} not satisfied"
            );
        }
    }

    #[test]
    fn assumptions_drive_the_model() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        assert_eq!(s.solve(&[!b]), SatResult::Sat);
        assert_eq!(s.model_value_lit(a), Some(true));
        assert_eq!(s.model_value_lit(b), Some(false));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn assumption_over_unknown_var_panics() {
        let mut s = Solver::new();
        let _ = s.solve(&[lit(3, true)]);
    }

    #[test]
    fn stats_are_updated() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        s.add_clause([!a, b]);
        s.add_clause([a, !b]);
        let _ = s.solve(&[]);
        assert_eq!(s.stats().solves, 1);
        assert_eq!(s.stats().original_clauses, 3);
    }

    #[test]
    fn released_vars_are_recycled() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        // Activation-literal discipline: act occurs only negatively, and is
        // only assumed positively.
        let act = Lit::pos(s.new_var());
        s.add_clause([!act, !a]);
        assert_eq!(s.solve(&[act, a]), SatResult::Unsat);
        let total_before = s.num_vars();
        s.release_var(!act);
        assert_eq!(s.num_released_pending(), 1);
        // A forced simplify reclaims the variable ...
        assert!(s.simplify());
        assert_eq!(s.num_released_pending(), 0);
        assert_eq!(s.solve(&[a]), SatResult::Sat);
        // ... and the next new_var reuses the same index.
        let act2 = s.new_var();
        assert_eq!(act2, act.var());
        assert_eq!(s.num_vars(), total_before);
        assert_eq!(s.stats().released_vars, 1);
        assert_eq!(s.stats().recycled_vars, 1);
        // The recycled variable works as a fresh activation literal.
        let act2 = Lit::pos(act2);
        s.add_clause([!act2, !b]);
        assert_eq!(s.solve(&[act2, b]), SatResult::Unsat);
        assert_eq!(s.solve(&[act2, a]), SatResult::Sat);
        assert_eq!(s.model_value_lit(b), Some(false));
    }

    #[test]
    fn simplify_removes_satisfied_clauses() {
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        s.add_clause([a, b]);
        s.add_clause([a, c]);
        s.add_clause([b, c]);
        assert_eq!(s.num_clauses(), 3);
        s.add_clause([a]);
        assert!(s.simplify());
        // The two clauses containing `a` are satisfied at the top level.
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.solve(&[]), SatResult::Sat);
    }

    #[test]
    fn garbage_collection_preserves_verdicts() {
        // Interleave solving with releasing many activation variables so that
        // deleted clauses pile up and the arena is forced to compact, then
        // check the solver still answers correctly.
        let n = 200;
        let mut s = Solver::new();
        let xs: Vec<Lit> = (0..n).map(|_| Lit::pos(s.new_var())).collect();
        for w in xs.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        let last = xs[n - 1];
        for round in 0..50 {
            let act = Lit::pos(s.new_var());
            // act → ¬x_last: under act and x0 the implication chain conflicts.
            s.add_clause([!act, !last]);
            assert_eq!(s.solve(&[act, xs[0]]), SatResult::Unsat, "round {round}");
            s.release_var(!act);
            assert!(s.simplify(), "round {round}");
        }
        assert!(s.stats().garbage_collections > 0, "arena never compacted");
        assert!(s.stats().recycled_vars > 0, "activation vars never reused");
        assert_eq!(s.solve(&[xs[0]]), SatResult::Sat);
        assert_eq!(s.model_value_lit(last), Some(true));
        assert_eq!(s.solve(&[!last, xs[0]]), SatResult::Unsat);
    }

    #[test]
    fn duplicate_assumptions_exceeding_var_count_do_not_panic() {
        // Already-satisfied duplicate assumptions each open a decision level
        // without assigning a variable, so the decision level can exceed the
        // variable count; conflict analysis (the LBD stamp in particular)
        // must cope.
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        let d = Lit::pos(s.new_var());
        s.add_clause([!b, c, d]);
        s.add_clause([!b, !c, d]);
        s.add_clause([!b, c, !d]);
        s.add_clause([!b, !c, !d]);
        assert_eq!(s.solve(&[a, a, a, a, a, b]), SatResult::Unsat);
        assert!(s.unsat_core().contains(&b));
        assert_eq!(s.solve(&[a, a, a, a, a, !b]), SatResult::Sat);
    }

    #[test]
    fn unsat_core_is_sorted() {
        let mut s = Solver::new();
        let lits: Vec<Lit> = (0..6).map(|_| Lit::pos(s.new_var())).collect();
        // x0 ∧ x2 ∧ x4 → conflict via a chain.
        s.add_clause([!lits[0], !lits[2], !lits[4]]);
        assert_eq!(
            s.solve(&[lits[4], lits[0], lits[2], lits[5]]),
            SatResult::Unsat
        );
        let core = s.unsat_core();
        assert!(core.windows(2).all(|w| w[0] < w[1]), "core is sorted");
        for &l in core {
            assert!(s.core_contains(l));
        }
        assert!(!s.core_contains(lits[5]));
    }
}
