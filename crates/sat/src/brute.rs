//! Exhaustive reference solver used to cross-check the CDCL engine in tests.

use plic3_logic::{Assignment, Cnf, Lit};

/// Decides satisfiability of `cnf` (restricted to variables `0..num_vars`) under
/// the given `assumptions` by exhaustive enumeration, returning a satisfying
/// [`Assignment`] if one exists.
///
/// This is exponential in `num_vars` and intended only for testing the CDCL
/// solver and the model-checking engines on small instances.
///
/// # Panics
///
/// Panics if `num_vars > 24` to avoid accidentally enumerating huge spaces.
///
/// # Example
///
/// ```
/// use plic3_logic::{Clause, Cnf, Lit, Var};
/// use plic3_sat::brute_force_sat;
///
/// let x = Lit::pos(Var::new(0));
/// let cnf = Cnf::from_clauses([Clause::unit(x)]);
/// assert!(brute_force_sat(1, &cnf, &[]).is_some());
/// assert!(brute_force_sat(1, &cnf, &[!x]).is_none());
/// ```
pub fn brute_force_sat(num_vars: usize, cnf: &Cnf, assumptions: &[Lit]) -> Option<Assignment> {
    assert!(num_vars <= 24, "brute force limited to 24 variables");
    for bits in 0u64..(1u64 << num_vars) {
        let assignment =
            Assignment::from_values((0..num_vars).map(|i| Some(bits >> i & 1 == 1)).collect());
        if assumptions
            .iter()
            .all(|&l| assignment.eval_lit(l) == Some(true))
            && cnf.eval(&assignment) == Some(true)
        {
            return Some(assignment);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_logic::{Clause, Var};

    #[test]
    fn finds_model_for_satisfiable_formula() {
        let a = Lit::pos(Var::new(0));
        let b = Lit::pos(Var::new(1));
        let cnf = Cnf::from_clauses([Clause::from_lits([a, b]), Clause::from_lits([!a, b])]);
        let model = brute_force_sat(2, &cnf, &[]).expect("sat");
        assert_eq!(model.eval_clause(&cnf.clauses()[0]), Some(true));
        assert_eq!(model.eval_clause(&cnf.clauses()[1]), Some(true));
    }

    #[test]
    fn respects_assumptions() {
        let a = Lit::pos(Var::new(0));
        let cnf = Cnf::new();
        let model = brute_force_sat(1, &cnf, &[!a]).expect("sat");
        assert_eq!(model.eval_lit(a), Some(false));
    }

    #[test]
    fn detects_unsat() {
        let a = Lit::pos(Var::new(0));
        let cnf = Cnf::from_clauses([Clause::unit(a), Clause::unit(!a)]);
        assert!(brute_force_sat(1, &cnf, &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "24 variables")]
    fn refuses_large_spaces() {
        let _ = brute_force_sat(30, &Cnf::new(), &[]);
    }
}
