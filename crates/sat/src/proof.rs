//! DRAT-style proof tracing (`proof-log` feature).
//!
//! When a solver's tracer is enabled ([`crate::Solver::enable_proof_tracing`])
//! every change to the clause database is recorded as a [`ProofStep`]:
//!
//! * [`ProofStep::Input`] — an axiom handed to the solver by its caller
//!   (`add_clause`), recorded verbatim after sorting and deduplication. Input
//!   lines are *not* checked by the DRAT checker; they are the formula the
//!   proof is about, auditable against the caller's clauses.
//! * [`ProofStep::Add`] — a clause the solver *derived* (a learnt clause, a
//!   simplified input, a vivified or strengthened replacement, the negated
//!   assumption core of an UNSAT answer, or the empty clause). Every `Add`
//!   line has the RUP property with respect to the clauses preceding it,
//!   which is exactly what `plic3-check`'s backward DRAT checker verifies.
//! * [`ProofStep::Delete`] — a clause removed from the database (database
//!   reduction, satisfied-clause sweeps, and inprocessing replacements).
//!   Deletions of *locked* clauses (reasons of root-level literals) are not
//!   recorded, following the drat-trim convention: removing the reason of a
//!   fixed literal would make later derivations uncheckable even though the
//!   solver legitimately keeps relying on the literal.
//!
//! Clauses are identified by content (as literal sets), never by arena
//! address, so garbage collection and watch-order permutation need no tracer
//! interaction.
//!
//! # Cost model
//!
//! The tracer mirrors the `fault-injection` design: without the `proof-log`
//! cargo feature the recorder is a zero-sized no-op whose `is_active()` is the
//! constant `false`, so every hook branch in the solver hot path folds away.
//! With the feature compiled in, recording is still opt-in per solver at
//! runtime and costs one well-predicted branch per hook site when off.

use plic3_logic::Lit;

/// One line of a DRAT-style proof trace. See the [module docs](self) for the
/// meaning of each variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofStep {
    /// An axiom: a clause added by the solver's caller.
    Input(Vec<Lit>),
    /// A derived clause; has the RUP property w.r.t. the preceding lines.
    Add(Vec<Lit>),
    /// A clause removed from the database.
    Delete(Vec<Lit>),
}

impl ProofStep {
    /// The literals of this line's clause.
    pub fn lits(&self) -> &[Lit] {
        match self {
            ProofStep::Input(l) | ProofStep::Add(l) | ProofStep::Delete(l) => l,
        }
    }
}

/// A recorded proof trace: the sequence of clause additions and deletions of
/// one solver, in order. Obtained from [`crate::Solver::proof`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// Builds a proof from explicit steps. Intended for checker tests and
    /// external tooling (e.g. reading a proof back from a file); solvers
    /// produce proofs through the tracer, not through this constructor.
    pub fn from_steps(steps: Vec<ProofStep>) -> Self {
        Proof { steps }
    }

    /// The recorded steps, in emission order.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// `true` if this build compiles the proof tracer in (the `proof-log` cargo
/// feature). When `false`, [`crate::Solver::enable_proof_tracing`] is a no-op
/// that returns `false` and no tracing branch survives in the solver.
pub const fn proof_logging_compiled() -> bool {
    cfg!(feature = "proof-log")
}

/// The per-solver recorder. A no-op ZST-alike when `proof-log` is off.
#[derive(Clone, Debug, Default)]
pub(crate) struct ProofRecorder {
    #[cfg(feature = "proof-log")]
    log: Option<Box<Proof>>,
}

#[cfg(feature = "proof-log")]
impl ProofRecorder {
    /// Starts recording (idempotent). Returns `true`: tracing is compiled in.
    pub(crate) fn enable(&mut self) -> bool {
        if self.log.is_none() {
            self.log = Some(Box::default());
        }
        true
    }

    /// `true` while recording. Hook sites branch on this.
    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.log.is_some()
    }

    /// The proof recorded so far, if tracing was enabled.
    pub(crate) fn proof(&self) -> Option<&Proof> {
        self.log.as_deref()
    }

    #[inline]
    fn push(&mut self, step: ProofStep) {
        if let Some(log) = &mut self.log {
            log.steps.push(step);
        }
    }

    pub(crate) fn input(&mut self, lits: &[Lit]) {
        self.push(ProofStep::Input(lits.to_vec()));
    }

    pub(crate) fn add(&mut self, lits: &[Lit]) {
        self.push(ProofStep::Add(lits.to_vec()));
    }

    pub(crate) fn delete(&mut self, lits: &[Lit]) {
        self.push(ProofStep::Delete(lits.to_vec()));
    }
}

#[cfg(not(feature = "proof-log"))]
impl ProofRecorder {
    /// Tracing is compiled out: stays inert, returns `false`.
    #[inline(always)]
    pub(crate) fn enable(&mut self) -> bool {
        false
    }

    /// Constant `false`: every hook branch folds away.
    #[inline(always)]
    pub(crate) fn is_active(&self) -> bool {
        false
    }

    /// Always `None` without the feature.
    #[inline(always)]
    pub(crate) fn proof(&self) -> Option<&Proof> {
        None
    }

    #[inline(always)]
    pub(crate) fn input(&mut self, _lits: &[Lit]) {}

    #[inline(always)]
    pub(crate) fn add(&mut self, _lits: &[Lit]) {}

    #[inline(always)]
    pub(crate) fn delete(&mut self, _lits: &[Lit]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver};
    use plic3_logic::{Lit, Var};

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    /// The default-build inertness contract (the CI check named in the
    /// workflow): without the `proof-log` feature, enabling the tracer is a
    /// no-op, `proof()` stays `None`, and the recorder occupies no memory.
    #[cfg(not(feature = "proof-log"))]
    #[test]
    fn feature_off_tracer_is_inert() {
        assert!(!proof_logging_compiled());
        assert_eq!(std::mem::size_of::<ProofRecorder>(), 0);
        let mut solver = Solver::new();
        assert!(!solver.enable_proof_tracing());
        let a = Lit::pos(solver.new_var());
        solver.add_clause([a]);
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[]), SatResult::Unsat);
        assert!(solver.proof().is_none());
    }

    #[cfg(feature = "proof-log")]
    #[test]
    fn tracing_is_runtime_opt_in() {
        assert!(proof_logging_compiled());
        // Not enabled: nothing is recorded even with the feature compiled in.
        let mut solver = Solver::new();
        let a = Lit::pos(solver.new_var());
        solver.add_clause([a]);
        assert!(solver.proof().is_none());
        // Enabled: inputs are recorded verbatim (sorted, deduplicated).
        let mut solver = Solver::new();
        assert!(solver.enable_proof_tracing());
        let a = Lit::pos(solver.new_var());
        let b = Lit::pos(solver.new_var());
        solver.add_clause([b, a, b]);
        let proof = solver.proof().expect("tracing enabled");
        assert_eq!(proof.steps(), &[ProofStep::Input(vec![a, b])]);
    }

    #[cfg(feature = "proof-log")]
    #[test]
    fn unsat_answers_end_in_a_derived_clause() {
        let mut solver = Solver::new();
        solver.enable_proof_tracing();
        let a = Lit::pos(solver.new_var());
        solver.add_clause([a]);
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[]), SatResult::Unsat);
        let proof = solver.proof().expect("tracing enabled");
        assert!(
            proof
                .steps()
                .iter()
                .any(|s| matches!(s, ProofStep::Add(l) if l.is_empty())),
            "a top-level UNSAT must derive the empty clause: {proof:?}"
        );
    }

    #[cfg(feature = "proof-log")]
    #[test]
    fn assumption_unsat_logs_the_negated_core() {
        let mut solver = Solver::new();
        solver.enable_proof_tracing();
        let a = Lit::pos(solver.new_var());
        let b = Lit::pos(solver.new_var());
        solver.add_clause([!a, b]);
        assert_eq!(solver.solve(&[a, !b]), SatResult::Unsat);
        let core: Vec<Lit> = solver.unsat_core().to_vec();
        assert!(!core.is_empty());
        let mut negated: Vec<Lit> = core.iter().map(|&l| !l).collect();
        negated.sort_unstable();
        let proof = solver.proof().expect("tracing enabled");
        assert!(
            proof.steps().iter().any(|s| {
                if let ProofStep::Add(l) = s {
                    let mut l = l.clone();
                    l.sort_unstable();
                    l == negated
                } else {
                    false
                }
            }),
            "assumption UNSAT must log the negated core: {proof:?}"
        );
    }

    #[test]
    fn step_lits_views_every_variant() {
        let lits = vec![lit(0, true), lit(1, false)];
        for step in [
            ProofStep::Input(lits.clone()),
            ProofStep::Add(lits.clone()),
            ProofStep::Delete(lits.clone()),
        ] {
            assert_eq!(step.lits(), &lits[..]);
        }
        assert!(Proof::default().is_empty());
        assert_eq!(Proof::default().len(), 0);
    }
}
