//! Differential fuzzing of the modern search engine: every [`SearchConfig`]
//! variant — EMA vs Luby restarts, chronological backtracking on/off,
//! inprocessing (vivification + on-the-fly subsumption) on/off — is run
//! against the exhaustive reference solver on random CNFs, with assumption
//! sets and unsat-core self-unsatisfiability checks.
//!
//! The variants use deliberately aggressive knobs (tiny restart intervals,
//! a rephase every few conflicts, a chronological-backtracking bound of one
//! level) so that restart, rephase, chrono, and inprocessing paths all fire
//! even on the small formulas the brute-force oracle can handle; the stats
//! counters are asserted at the end to prove the paths were actually taken.
//!
//! The iteration count is `1000 * PLIC3_FUZZ_SCALE` (the nightly CI profile
//! sets the scale to 10); every failure message carries the seed.

use plic3_logic::{Clause, Cnf, Lit, SplitMix64 as Rng, Var};
use plic3_sat::{
    brute_force_sat, RestartPolicy, SatResult, SearchConfig, Solver, SolverConfig, SolverStats,
};
use std::collections::BTreeMap;

mod common;
use common::{iterations, labelled_variants as variants};

const MAX_VAR: u32 = 10;

fn arb_lit(rng: &mut Rng) -> Lit {
    Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool())
}

fn arb_clause(rng: &mut Rng) -> Clause {
    let len = 1 + rng.below(4) as usize;
    Clause::from_lits((0..len).map(|_| arb_lit(rng)))
}

fn arb_cnf(rng: &mut Rng) -> Cnf {
    let len = rng.below(30) as usize;
    Cnf::from_clauses((0..len).map(|_| arb_clause(rng)))
}

/// A random 3-CNF near the satisfiability phase transition (clause/variable
/// ratio ≈ 4.3): small enough for the brute-force oracle, hard enough that
/// the solver produces real conflict streaks — which is what drives the
/// restart, rephase, chronological-backtracking, and inprocessing paths.
fn hard_cnf(rng: &mut Rng) -> Cnf {
    let len = 38 + rng.below(10) as usize;
    Cnf::from_clauses((0..len).map(|_| {
        let mut vars = [0u32; 3];
        for i in 0..3 {
            loop {
                let candidate = rng.below(MAX_VAR as u64) as u32;
                if !vars[..i].contains(&candidate) {
                    vars[i] = candidate;
                    break;
                }
            }
        }
        Clause::from_lits(vars.iter().map(|&v| Lit::new(Var::new(v), rng.bool())))
    }))
}

/// Up to 3 assumption literals over distinct variables.
fn arb_assumptions(rng: &mut Rng) -> Vec<Lit> {
    let len = rng.below(4) as usize;
    let mut polarities: BTreeMap<u32, bool> = BTreeMap::new();
    for _ in 0..len {
        polarities.insert(rng.below(MAX_VAR as u64) as u32, rng.bool());
    }
    polarities
        .into_iter()
        .map(|(v, p)| Lit::new(Var::new(v), p))
        .collect()
}

fn load(cnf: &Cnf, search: SearchConfig) -> Solver {
    let mut solver = Solver::with_config(SolverConfig {
        search,
        ..SolverConfig::default()
    });
    // With the `proof-log` feature compiled in, every UNSAT answer below is
    // additionally DRAT-checked (see `drat_check`); without it this is a no-op.
    solver.enable_proof_tracing();
    solver.ensure_vars(MAX_VAR as usize);
    for clause in cnf {
        solver.add_clause_ref(clause);
    }
    solver
}

/// DRAT-checks the solver's recorded proof against `assumptions` after an
/// UNSAT answer. Inert when the `proof-log` feature is compiled out (the
/// solver records nothing); with the feature on, every UNSAT verdict of the
/// differential fuzz is backed by a machine-checked refutation.
fn drat_check(name: &str, solver: &Solver, assumptions: &[Lit], seed: u64) {
    if let Some(proof) = solver.proof() {
        if let Err(err) = plic3_check::check_unsat_proof(proof, assumptions) {
            panic!("[{name}] seed {seed}: DRAT check failed: {err}");
        }
    }
}

/// Solves `cnf` under `assumptions` with the given search variant and
/// cross-checks the result (verdict, model, core) against brute force.
fn check_one(
    name: &str,
    search: SearchConfig,
    cnf: &Cnf,
    assumptions: &[Lit],
    seed: u64,
) -> SolverStats {
    let mut solver = load(cnf, search);
    let expected = brute_force_sat(MAX_VAR as usize, cnf, assumptions).is_some();
    let got = solver.solve(assumptions);
    assert_eq!(
        got,
        if expected {
            SatResult::Sat
        } else {
            SatResult::Unsat
        },
        "[{name}] seed {seed}: {cnf} under {assumptions:?}"
    );
    if got == SatResult::Sat {
        for &a in assumptions {
            assert_eq!(
                solver.model_value_lit(a),
                Some(true),
                "[{name}] seed {seed}: assumption {a} not honoured"
            );
        }
        for clause in cnf {
            assert!(
                clause
                    .iter()
                    .any(|l| solver.model_value_lit(l) == Some(true)),
                "[{name}] seed {seed}: model does not satisfy {clause}"
            );
        }
    } else {
        drat_check(name, &solver, assumptions, seed);
        let core: Vec<Lit> = solver.unsat_core().to_vec();
        for l in &core {
            assert!(
                assumptions.contains(l),
                "[{name}] seed {seed}: core literal {l} not assumed"
            );
            assert!(solver.core_contains(*l), "[{name}] seed {seed}");
        }
        assert!(
            brute_force_sat(MAX_VAR as usize, cnf, &core).is_none(),
            "[{name}] seed {seed}: core {core:?} is not sufficient for unsat"
        );
        // The core must reproduce UNSAT when re-solved by the same
        // (incremental, possibly inprocessed) solver.
        assert_eq!(
            solver.solve(&core),
            SatResult::Unsat,
            "[{name}] seed {seed}: core {core:?} not self-unsatisfiable"
        );
        drat_check(name, &solver, &core, seed);
    }
    *solver.stats()
}

/// The load-bearing differential fuzz: ≥ 1000 iterations, every variant on
/// every case, with assumption sets and unsat-core checks.
#[test]
fn all_search_variants_agree_with_brute_force() {
    let variants = variants();
    let mut totals: Vec<SolverStats> = vec![SolverStats::new(); variants.len()];
    let mut rng = Rng::new(0x5ea_c4d1);
    for seed in 0..iterations(1000) {
        // Alternate between unconstrained random CNFs (edge cases: empty
        // clauses-after-simplification, tautologies, units) and dense 3-CNFs
        // (real conflict streaks that drive the search machinery).
        let cnf = if seed % 2 == 0 {
            arb_cnf(&mut rng)
        } else {
            hard_cnf(&mut rng)
        };
        let assumptions = arb_assumptions(&mut rng);
        for (i, (name, search)) in variants.iter().enumerate() {
            let stats = check_one(name, *search, &cnf, &assumptions, seed);
            totals[i].merge(&stats);
        }
    }
    // Sanity on the aggregates: the suite must have produced real conflicts
    // (otherwise it tests nothing but propagation), and the Luby variants —
    // whose restart schedule does not depend on conflict quality — must have
    // restarted. The per-variant machinery assertions (EMA restarts, rephase,
    // chrono, inprocessing) live in `pigeonhole_is_unsat_under_every_variant`,
    // which guarantees the long conflict streaks those paths need.
    for ((name, search), stats) in variants.iter().zip(&totals) {
        assert!(
            stats.conflicts > 100,
            "[{name}] suite produced almost no conflicts: {stats}"
        );
        if search.restart == RestartPolicy::Luby && search.restart_base <= 2 {
            assert!(stats.restarts > 0, "[{name}] never restarted: {stats}");
        }
    }
}

/// Incremental use across variants: clauses are added between solve calls, so
/// learnt clauses, saved phases, best-phase snapshots, and pending
/// inprocessing work survive into later calls and must stay sound.
#[test]
fn incremental_solving_stays_sound_across_variants() {
    let variants = variants();
    let mut rng = Rng::new(0x14c4);
    for seed in 0..iterations(150) {
        let cnf1 = arb_cnf(&mut rng);
        let cnf2 = arb_cnf(&mut rng);
        let assumptions = arb_assumptions(&mut rng);
        for (name, search) in &variants {
            let mut solver = load(&cnf1, *search);
            let first_expected = brute_force_sat(MAX_VAR as usize, &cnf1, &[]).is_some();
            let first = solver.solve(&[]);
            assert_eq!(
                first == SatResult::Sat,
                first_expected,
                "[{name}] seed {seed}: first solve"
            );
            for clause in &cnf2 {
                solver.add_clause_ref(clause);
            }
            let combined: Cnf = cnf1.iter().chain(cnf2.iter()).cloned().collect();
            let expected = brute_force_sat(MAX_VAR as usize, &combined, &assumptions).is_some();
            let got = solver.solve(&assumptions);
            assert_eq!(
                got == SatResult::Sat,
                expected,
                "[{name}] seed {seed}: incremental solve"
            );
            if got == SatResult::Unsat {
                // Clauses added *between* solve calls must appear in the trace
                // too, or this check would reject every incremental proof.
                drat_check(name, &solver, &assumptions, seed);
            }
            // A third call with the same assumptions must agree with the
            // second (rephasing and inprocessing may not flip verdicts).
            assert_eq!(got, solver.solve(&assumptions), "[{name}] seed {seed}");
        }
    }
}

/// A conflict-heavy unsatisfiable workload (pigeonhole) across all variants:
/// deep enough that database reduction, garbage collection, vivification and
/// restarts all occur with real learnt clauses in flight.
#[test]
fn pigeonhole_is_unsat_under_every_variant() {
    for (name, search) in &variants() {
        let mut solver = Solver::with_config(SolverConfig {
            search: *search,
            ..SolverConfig::default()
        });
        let n = 6u32; // pigeons
        let m = 5u32; // holes
        let var = |i: u32, j: u32| Lit::pos(Var::new(i * m + j));
        solver.enable_proof_tracing();
        solver.ensure_vars((n * m) as usize);
        for i in 0..n {
            solver.add_clause((0..m).map(|j| var(i, j)));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    solver.add_clause([!var(i1, j), !var(i2, j)]);
                }
            }
        }
        assert_eq!(solver.solve(&[]), SatResult::Unsat, "[{name}]");
        // A conflict-heavy refutation exercises learnt deletions, vivified
        // replacements and strengthenings in the trace — DRAT-check it.
        drat_check(name, &solver, &[], u64::from(n * m));
        // Re-solving after the proof must stay Unsat (the clause database is
        // unsat at the top level now).
        assert_eq!(solver.solve(&[]), SatResult::Unsat, "[{name}]");
        // This workload produces long conflict streaks, so on the aggressive
        // variants every configured piece of search machinery must actually
        // have fired — a knob that never triggers is not being differentially
        // tested. (The production `default`/`classic` knobs are tuned for
        // much longer runs and are exempt.)
        if *name == "default" || *name == "classic" {
            continue;
        }
        let stats = solver.stats();
        assert!(stats.restarts > 0, "[{name}] never restarted: {stats}");
        if search.rephase_interval > 0 && search.rephase_interval <= 64 {
            assert!(stats.rephases > 0, "[{name}] never rephased: {stats}");
        }
        if search.chrono == 1 {
            assert!(
                stats.chrono_backtracks > 0,
                "[{name}] never backtracked chronologically: {stats}"
            );
        }
        if search.vivify {
            assert!(
                stats.vivified_clauses + stats.strengthened_clauses > 0,
                "[{name}] inprocessing never fired: {stats}"
            );
        }
    }
}
