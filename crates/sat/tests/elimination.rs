//! Differential fuzzing of the CNF inprocessing subsystem (bounded variable
//! elimination, occurrence-index subsumption/strengthening, blocked-clause
//! elimination): every verdict is cross-checked against brute force and
//! against the same solver with elimination off, every model is evaluated
//! against the *original* clauses (so witness-based reconstruction is what is
//! actually under test), and — with the `proof-log` feature — every UNSAT
//! that went through elimination is DRAT-checked end to end.
//!
//! The incremental test reproduces IC3's `solve_relative` access pattern:
//! recycled activation variables, per-round activation clauses, assumption
//! sets, and `release_var` after each round, all with elimination rounds
//! forced on aggressively (one per restart).
//!
//! Iteration counts scale with `PLIC3_FUZZ_SCALE` (nightly CI sets 10);
//! every failure message carries the seed.

use plic3_logic::{Clause, Cnf, Lit, SplitMix64 as Rng, Var};
use plic3_sat::{brute_force_sat, SatResult, SearchConfig, Solver, SolverConfig, SolverStats};

mod common;
use common::{aggressive, iterations};
use plic3_sat::RestartPolicy;

const MAX_VAR: u32 = 12;

/// Aggressive knobs with elimination rounds on every restart. Luby restarts
/// (base 2) fire unconditionally after a couple of conflicts, so elimination
/// rounds run even on the short solves of this suite (EMA restarts need
/// conflict streaks these small formulas rarely produce).
fn elim_on() -> SearchConfig {
    aggressive(RestartPolicy::Luby, 1, true)
}

/// The same knobs with every occurrence-index pass off (the "B" side of the
/// differential; vivification and on-the-fly subsumption stay on so the only
/// variable is the new subsystem).
fn elim_off() -> SearchConfig {
    SearchConfig {
        elim: false,
        ..elim_on()
    }
}

fn load(cnf: &Cnf, search: SearchConfig) -> Solver {
    let mut solver = Solver::with_config(SolverConfig {
        search,
        ..SolverConfig::default()
    });
    solver.enable_proof_tracing();
    solver.ensure_vars(MAX_VAR as usize);
    for clause in cnf {
        solver.add_clause_ref(clause);
    }
    solver
}

/// DRAT-checks the recorded proof after an UNSAT answer; inert without the
/// `proof-log` feature.
fn drat_check(name: &str, solver: &Solver, assumptions: &[Lit], seed: u64) {
    if let Some(proof) = solver.proof() {
        if let Err(err) = plic3_check::check_unsat_proof(proof, assumptions) {
            panic!("[{name}] seed {seed}: DRAT check failed: {err}");
        }
    }
}

/// A CNF with the redundancy elimination exists to exploit: a conflict-dense
/// random 3-CNF core over the low variables, Tseitin-style definition
/// variables (`d ↔ a ∨ b`, prime BVE pivots) over the high ones, and a few
/// subsumed supersets of existing clauses.
fn redundant_cnf(rng: &mut Rng) -> Cnf {
    let core_vars = 8u32;
    let mut clauses: Vec<Clause> = Vec::new();
    let n = 30 + rng.below(8) as usize;
    for _ in 0..n {
        let mut picked = [0u32; 3];
        for i in 0..3 {
            loop {
                let candidate = rng.below(core_vars as u64) as u32;
                if !picked[..i].contains(&candidate) {
                    picked[i] = candidate;
                    break;
                }
            }
        }
        clauses.push(Clause::from_lits(
            picked.iter().map(|&v| Lit::new(Var::new(v), rng.bool())),
        ));
    }
    // Definition variables d8..d11: d ↔ (a ∨ b) over random core literals.
    for d in core_vars..MAX_VAR {
        let dl = Lit::pos(Var::new(d));
        let a = Lit::new(Var::new(rng.below(core_vars as u64) as u32), rng.bool());
        let b = Lit::new(Var::new(rng.below(core_vars as u64) as u32), rng.bool());
        clauses.push(Clause::from_lits([!dl, a, b]));
        clauses.push(Clause::from_lits([dl, !a]));
        if b.var() != a.var() {
            clauses.push(Clause::from_lits([dl, !b]));
        }
    }
    // Subsumed supersets: an existing clause plus two extra literals.
    for _ in 0..3 {
        let base = clauses[rng.below(clauses.len() as u64) as usize].clone();
        let extra =
            (0..2).map(|_| Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool()));
        clauses.push(Clause::from_lits(base.iter().chain(extra)));
    }
    Cnf::from_clauses(clauses)
}

/// Up to 2 assumption literals over distinct variables.
fn arb_assumptions(rng: &mut Rng) -> Vec<Lit> {
    let mut out: Vec<Lit> = Vec::new();
    for _ in 0..rng.below(3) {
        let l = Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool());
        if !out.iter().any(|o| o.var() == l.var()) {
            out.push(l);
        }
    }
    out
}

/// The load-bearing differential: elimination on vs off vs brute force, with
/// models evaluated against the original clauses (reconstruction correctness)
/// and DRAT checks on every UNSAT.
#[test]
fn elimination_agrees_with_brute_force_and_repairs_models() {
    let mut rng = Rng::new(0xe11);
    let mut on_totals = SolverStats::new();
    for seed in 0..iterations(250) {
        let cnf = redundant_cnf(&mut rng);
        let assumptions = arb_assumptions(&mut rng);
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &assumptions).is_some();
        let mut on = load(&cnf, elim_on());
        let mut off = load(&cnf, elim_off());
        let got_on = on.solve(&assumptions);
        let got_off = off.solve(&assumptions);
        for (name, got, solver) in [("elim-on", got_on, &on), ("elim-off", got_off, &off)] {
            assert_eq!(
                got,
                if expected {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "[{name}] seed {seed}: {cnf} under {assumptions:?}"
            );
            if got == SatResult::Sat {
                for &a in &assumptions {
                    assert_eq!(
                        solver.model_value_lit(a),
                        Some(true),
                        "[{name}] seed {seed}: assumption {a} not honoured"
                    );
                }
                // The reconstruction guarantee: the repaired model satisfies
                // every clause the caller added, including the elided ones.
                for clause in &cnf {
                    assert!(
                        clause
                            .iter()
                            .any(|l| solver.model_value_lit(l) == Some(true)),
                        "[{name}] seed {seed}: model does not satisfy {clause}"
                    );
                }
            } else {
                drat_check(name, solver, &assumptions, seed);
            }
        }
        if got_on == SatResult::Unsat {
            // The core must be a subset of the assumptions and sufficient.
            let core: Vec<Lit> = on.unsat_core().to_vec();
            for l in &core {
                assert!(
                    assumptions.contains(l),
                    "seed {seed}: core literal {l} not assumed"
                );
            }
            assert!(
                brute_force_sat(MAX_VAR as usize, &cnf, &core).is_none(),
                "seed {seed}: core {core:?} is not sufficient for unsat"
            );
            // Re-solving the core goes back through elimination-touched state.
            assert_eq!(on.solve(&core), SatResult::Unsat, "seed {seed}");
            drat_check("elim-on", &on, &core, seed);
        }
        on_totals.merge(on.stats());
    }
    // The suite must actually have exercised the subsystem, not just agreed
    // because nothing ever fired.
    assert!(
        on_totals.eliminated_vars > 0,
        "BVE never fired: {on_totals}"
    );
    assert!(
        on_totals.subsumed_clauses + on_totals.strengthened_clauses > 0,
        "subsumption never fired: {on_totals}"
    );
    assert!(
        on_totals.elim_resolvents > 0,
        "BVE never added a resolvent: {on_totals}"
    );
}

/// IC3's `solve_relative` shape: a fixed base CNF, then rounds of a fresh
/// (recycled) activation variable, an activation clause `act → c`, a solve
/// under `[act, extras...]`, and `release_var(!act)` — with elimination
/// forced on. Verdicts are cross-checked against brute force on the
/// activation-free equivalent, models against all live original clauses.
#[test]
fn incremental_activation_rounds_stay_sound_with_elimination() {
    let mut rng = Rng::new(0x1c3e);
    for seed in 0..iterations(40) {
        let base = redundant_cnf(&mut rng);
        let mut solver = load(&base, elim_on());
        for round in 0..12u64 {
            let act = Lit::pos(solver.new_var());
            assert!(
                !solver.is_eliminated(act.var()),
                "seed {seed} round {round}: recycled activation variable is eliminated"
            );
            let cube: Vec<Lit> = (0..3)
                .map(|_| Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool()))
                .collect();
            let mut activation_clause = vec![!act];
            activation_clause.extend(&cube);
            solver.add_clause(activation_clause);
            let extras = arb_assumptions(&mut rng);
            let mut assumptions = vec![act];
            assumptions.extend(extras.iter().filter(|e| e.var() != act.var()));
            // With `act` assumed true the activation clause reduces to the
            // cube clause; released rounds contribute nothing.
            let equivalent: Cnf = base
                .iter()
                .cloned()
                .chain([Clause::from_lits(cube.iter().copied())])
                .collect();
            let expected = brute_force_sat(MAX_VAR as usize, &equivalent, &extras).is_some();
            let got = solver.solve(&assumptions);
            assert_eq!(
                got,
                if expected {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "seed {seed} round {round}"
            );
            if got == SatResult::Sat {
                for &a in &assumptions {
                    assert_eq!(
                        solver.model_value_lit(a),
                        Some(true),
                        "seed {seed} round {round}: assumption {a} not honoured"
                    );
                }
                for clause in &base {
                    assert!(
                        clause
                            .iter()
                            .any(|l| solver.model_value_lit(l) == Some(true)),
                        "seed {seed} round {round}: model does not satisfy {clause}"
                    );
                }
            } else {
                drat_check("incremental", &solver, &assumptions, seed);
            }
            solver.release_var(!act);
        }
    }
}

/// Explicitly frozen variables are never eliminated, and freezing does not
/// change verdicts.
#[test]
fn frozen_variables_are_never_eliminated() {
    let mut rng = Rng::new(0xf0f0);
    for seed in 0..iterations(60) {
        let cnf = redundant_cnf(&mut rng);
        let mut solver = load(&cnf, elim_on());
        for v in 0..MAX_VAR {
            solver.set_frozen(Var::new(v), true);
        }
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &[]).is_some();
        let got = solver.solve(&[]);
        assert_eq!(got == SatResult::Sat, expected, "seed {seed}");
        assert_eq!(
            solver.stats().eliminated_vars,
            0,
            "seed {seed}: a frozen variable was eliminated"
        );
        for v in 0..MAX_VAR {
            assert!(!solver.is_eliminated(Var::new(v)), "seed {seed}: x{v}");
        }
    }
}

/// Adding a clause over eliminated state after a solve restores the elided
/// clauses transparently: the combined formula's verdicts and models stay
/// exact across the restore boundary.
#[test]
fn adding_clauses_over_eliminated_variables_restores_soundly() {
    let mut rng = Rng::new(0xab5e);
    for seed in 0..iterations(80) {
        let cnf1 = redundant_cnf(&mut rng);
        let mut solver = load(&cnf1, elim_on());
        let first = solver.solve(&[]);
        assert_eq!(
            first == SatResult::Sat,
            brute_force_sat(MAX_VAR as usize, &cnf1, &[]).is_some(),
            "seed {seed}: first solve"
        );
        // Constrain variables elimination may have removed: random binary
        // clauses over the definition-variable range.
        let extra: Vec<Clause> = (0..4)
            .map(|_| {
                Clause::from_lits(
                    (0..2)
                        .map(|_| Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool())),
                )
            })
            .collect();
        for clause in &extra {
            solver.add_clause_ref(clause);
        }
        let combined: Cnf = cnf1.iter().cloned().chain(extra.iter().cloned()).collect();
        let expected = brute_force_sat(MAX_VAR as usize, &combined, &[]).is_some();
        let got = solver.solve(&[]);
        assert_eq!(got == SatResult::Sat, expected, "seed {seed}: second solve");
        if got == SatResult::Sat {
            for clause in &combined {
                assert!(
                    clause
                        .iter()
                        .any(|l| solver.model_value_lit(l) == Some(true)),
                    "seed {seed}: model does not satisfy {clause} after restore"
                );
            }
        } else {
            drat_check("restore", &solver, &[], seed);
        }
    }
}
