//! Cancellation soundness of the modern search engine: interruptions —
//! whether from a raised [`StopFlag`] or an exhausted conflict budget — may
//! only ever surface as [`SatResult::Unknown`], never as a *wrong* verdict,
//! and a pre-raised flag must prevent any verdict that requires search.
//!
//! This is the regression guard for the PR 1 k-induction class of bug
//! (concluding from an interrupted query as if it had completed), pushed down
//! to the solver level and run across every [`SearchConfig`] variant so the
//! new restart / rephase / chronological-backtracking / inprocessing paths
//! are all crossed by an injected stop.

use plic3_logic::{Clause, Cnf, Lit, SplitMix64 as Rng, Var};
use plic3_sat::{brute_force_sat, SatResult, SearchConfig, Solver, SolverConfig, StopFlag};

mod common;
use common::iterations;

const MAX_VAR: u32 = 12;

/// Aggressive search variants (tiny restart/rephase intervals) so injected
/// stops land on restart boundaries, mid-inprocessing state, and chrono
/// backtracks — plus the shipped default and classic configurations.
fn variants() -> Vec<SearchConfig> {
    common::labelled_variants()
        .into_iter()
        .map(|(_, config)| config)
        .collect()
}

fn solver_with(search: SearchConfig) -> Solver {
    Solver::with_config(SolverConfig {
        search,
        ..SolverConfig::default()
    })
}

/// A dense random 3-CNF over `MAX_VAR` variables (conflict-heavy; roughly at
/// the phase transition, so both verdicts occur across seeds).
fn hard_cnf(rng: &mut Rng) -> Cnf {
    let len = 46 + rng.below(12) as usize;
    Cnf::from_clauses((0..len).map(|_| {
        let mut vars = [0u32; 3];
        for i in 0..3 {
            loop {
                let candidate = rng.below(MAX_VAR as u64) as u32;
                if !vars[..i].contains(&candidate) {
                    vars[i] = candidate;
                    break;
                }
            }
        }
        Clause::from_lits(vars.iter().map(|&v| Lit::new(Var::new(v), rng.bool())))
    }))
}

fn load(cnf: &Cnf, search: SearchConfig) -> Solver {
    let mut solver = solver_with(search);
    solver.ensure_vars(MAX_VAR as usize);
    for clause in cnf {
        solver.add_clause_ref(clause);
    }
    solver
}

/// Randomized interruption points: a conflict budget `k` below the full cost
/// of the query may only produce `Unknown` or the *correct* verdict (a
/// cascade of conflicts can legitimately finish a proof past the budget
/// check) — never the wrong one. Afterwards, a raised stop flag on the
/// half-searched solver state must yield `Unknown`, and a fresh flag must
/// recover the correct verdict from the same (learnt-clause-laden,
/// inprocessed) state.
#[test]
fn budget_and_stop_injection_never_flip_a_verdict() {
    let variants = variants();
    let mut rng = Rng::new(0xcafe_57a9);
    for seed in 0..iterations(120) {
        let cnf = hard_cnf(&mut rng);
        let expected = if brute_force_sat(MAX_VAR as usize, &cnf, &[]).is_some() {
            SatResult::Sat
        } else {
            SatResult::Unsat
        };
        for (i, &search) in variants.iter().enumerate() {
            // Full run to learn the query's conflict cost.
            let mut reference = load(&cnf, search);
            assert_eq!(reference.solve(&[]), expected, "seed {seed} variant {i}");
            let full_cost = reference.stats().conflicts;
            if full_cost == 0 {
                continue; // solved by propagation alone: nothing to interrupt
            }
            // Interrupt at a random conflict count below the full cost.
            let k = 1 + rng.below(full_cost);
            let mut solver = load(&cnf, search);
            solver.set_conflict_budget(Some(k));
            let interrupted = solver.solve(&[]);
            assert!(
                interrupted == SatResult::Unknown || interrupted == expected,
                "seed {seed} variant {i}: budget {k}/{full_cost} produced the \
                 wrong verdict {interrupted}"
            );
            // A raised stop flag on the half-searched state: Unknown, or a
            // correct Unsat that needed no search (the interrupted run may
            // already have made the database contradictory at level 0 —
            // reporting that is sound regardless of the flag). `Sat` is
            // impossible: the stop check precedes every decision.
            solver.set_conflict_budget(None);
            let stop = StopFlag::new();
            solver.set_stop_flag(stop.clone());
            stop.stop();
            let stopped = solver.solve(&[]);
            assert!(
                stopped == SatResult::Unknown
                    || (stopped == SatResult::Unsat && expected == SatResult::Unsat),
                "seed {seed} variant {i}: raised flag produced {stopped} \
                 (expected verdict {expected})"
            );
            // A fresh flag recovers the correct verdict from the same state.
            solver.set_stop_flag(StopFlag::new());
            assert_eq!(
                solver.solve(&[]),
                expected,
                "seed {seed} variant {i}: state corrupted by the interruptions"
            );
        }
    }
}

/// A pre-raised flag must return `Unknown` on every variant for a query that
/// requires any search at all — in particular it must never report `Sat`
/// (the solver cannot have found a model it never searched for).
#[test]
fn pre_raised_flag_reports_unknown_on_every_variant() {
    let mut rng = Rng::new(0x57a9_f1a6);
    for seed in 0..iterations(40) {
        let cnf = hard_cnf(&mut rng);
        for (i, &search) in variants().iter().enumerate() {
            let mut solver = load(&cnf, search);
            let stop = StopFlag::new();
            solver.set_stop_flag(stop.clone());
            stop.stop();
            assert_eq!(
                solver.solve(&[]),
                SatResult::Unknown,
                "seed {seed} variant {i}"
            );
        }
    }
}

/// Stops injected under assumptions: the unsat core of an *interrupted* call
/// is never consulted, but the next uninterrupted call must still produce a
/// correct verdict and a well-formed core.
#[test]
fn interrupted_assumption_queries_recover() {
    let mut rng = Rng::new(0xa55_0c1a);
    for seed in 0..iterations(80) {
        let cnf = hard_cnf(&mut rng);
        let assumptions: Vec<Lit> = (0..3).map(|i| Lit::new(Var::new(i), rng.bool())).collect();
        for (i, &search) in variants().iter().enumerate() {
            let mut solver = load(&cnf, search);
            solver.set_conflict_budget(Some(1 + rng.below(8)));
            let _ = solver.solve(&assumptions);
            solver.set_conflict_budget(None);
            let expected = brute_force_sat(MAX_VAR as usize, &cnf, &assumptions).is_some();
            let got = solver.solve(&assumptions);
            assert_eq!(
                got == SatResult::Sat,
                expected,
                "seed {seed} variant {i}: wrong verdict after interruption"
            );
            if got == SatResult::Unsat {
                let core: Vec<Lit> = solver.unsat_core().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l), "seed {seed} variant {i}");
                }
                assert!(
                    brute_force_sat(MAX_VAR as usize, &cnf, &core).is_none(),
                    "seed {seed} variant {i}: insufficient core {core:?}"
                );
            }
        }
    }
}
