//! Differential testing of the CDCL solver against the exhaustive reference
//! solver on random small formulas, with and without assumptions, including
//! incremental use and unsat-core checks.
//!
//! The formulas come from a deterministic seeded generator (the workspace is
//! dependency-free, so no proptest); every failing case is reproducible from
//! the seed reported in the assertion message.

use plic3_logic::{Clause, Cnf, Lit, SplitMix64 as Rng, Var};
use plic3_sat::{brute_force_sat, SatResult, Solver};
use std::collections::BTreeMap;

const MAX_VAR: u32 = 10;
const CASES: u64 = 256;

fn arb_lit(rng: &mut Rng) -> Lit {
    Lit::new(Var::new(rng.below(MAX_VAR as u64) as u32), rng.bool())
}

fn arb_clause(rng: &mut Rng) -> Clause {
    let len = 1 + rng.below(4) as usize;
    Clause::from_lits((0..len).map(|_| arb_lit(rng)))
}

fn arb_cnf(rng: &mut Rng) -> Cnf {
    let len = rng.below(30) as usize;
    Cnf::from_clauses((0..len).map(|_| arb_clause(rng)))
}

/// Up to 3 assumption literals over distinct variables.
fn arb_assumptions(rng: &mut Rng) -> Vec<Lit> {
    let len = rng.below(4) as usize;
    let mut polarities: BTreeMap<u32, bool> = BTreeMap::new();
    for _ in 0..len {
        polarities.insert(rng.below(MAX_VAR as u64) as u32, rng.bool());
    }
    polarities
        .into_iter()
        .map(|(v, p)| Lit::new(Var::new(v), p))
        .collect()
}

fn load(cnf: &Cnf) -> Solver {
    let mut solver = Solver::new();
    solver.ensure_vars(MAX_VAR as usize);
    for clause in cnf {
        solver.add_clause_ref(clause);
    }
    solver
}

#[test]
fn agrees_with_brute_force() {
    let mut rng = Rng::new(0xb001);
    for seed in 0..CASES {
        let cnf = arb_cnf(&mut rng);
        let mut solver = load(&cnf);
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &[]).is_some();
        let got = solver.solve(&[]);
        assert_eq!(
            got,
            if expected {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "seed {seed}: {cnf}"
        );
        if got == SatResult::Sat {
            // The reported model must satisfy every clause.
            for clause in &cnf {
                assert!(
                    clause
                        .iter()
                        .any(|l| solver.model_value_lit(l) == Some(true)),
                    "seed {seed}: model does not satisfy {clause}"
                );
            }
        }
    }
}

#[test]
fn agrees_with_brute_force_under_assumptions() {
    let mut rng = Rng::new(0xb002);
    for seed in 0..CASES {
        let cnf = arb_cnf(&mut rng);
        let assumptions = arb_assumptions(&mut rng);
        let mut solver = load(&cnf);
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &assumptions).is_some();
        let got = solver.solve(&assumptions);
        assert_eq!(
            got,
            if expected {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "seed {seed}: {cnf} under {assumptions:?}"
        );
        if got == SatResult::Sat {
            for &a in &assumptions {
                assert_eq!(solver.model_value_lit(a), Some(true), "seed {seed}");
            }
        } else {
            // The unsat core must be a subset of the assumptions and itself
            // sufficient for unsatisfiability.
            let core: Vec<Lit> = solver.unsat_core().to_vec();
            for l in &core {
                assert!(assumptions.contains(l), "seed {seed}");
            }
            assert!(
                brute_force_sat(MAX_VAR as usize, &cnf, &core).is_none(),
                "seed {seed}: core {core:?} is not sufficient for unsat"
            );
        }
    }
}

#[test]
fn incremental_solving_matches_monolithic() {
    let mut rng = Rng::new(0xb003);
    for seed in 0..CASES {
        let cnf1 = arb_cnf(&mut rng);
        let cnf2 = arb_cnf(&mut rng);
        let assumptions = arb_assumptions(&mut rng);
        // Solve cnf1, then add cnf2 and solve again: the second answer must
        // match a fresh solver on cnf1 ∧ cnf2.
        let mut solver = load(&cnf1);
        let _ = solver.solve(&[]);
        for clause in &cnf2 {
            solver.add_clause_ref(clause);
        }
        let combined: Cnf = cnf1.iter().chain(cnf2.iter()).cloned().collect();
        let expected = brute_force_sat(MAX_VAR as usize, &combined, &assumptions).is_some();
        let got = solver.solve(&assumptions);
        assert_eq!(
            got,
            if expected {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "seed {seed}"
        );
    }
}

/// The load-bearing assumption fuzz: 1000 seeded iterations of solving under
/// random assumption sets, cross-checked against exhaustive enumeration, with
/// every returned unsat core verified to be (a) a subset of the assumptions,
/// (b) unsatisfiable by brute force, and (c) reported unsatisfiable by the
/// solver itself when solved as the only assumptions.
#[test]
fn assumption_fuzz_1000_iterations_with_core_checks() {
    let mut rng = Rng::new(0xc0de);
    for seed in 0..1000u64 {
        let cnf = arb_cnf(&mut rng);
        let assumptions = arb_assumptions(&mut rng);
        let mut solver = load(&cnf);
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &assumptions).is_some();
        let got = solver.solve(&assumptions);
        assert_eq!(
            got,
            if expected {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "seed {seed}: {cnf} under {assumptions:?}"
        );
        if got == SatResult::Sat {
            for &a in &assumptions {
                assert_eq!(solver.model_value_lit(a), Some(true), "seed {seed}");
            }
            for clause in &cnf {
                assert!(
                    clause
                        .iter()
                        .any(|l| solver.model_value_lit(l) == Some(true)),
                    "seed {seed}: model does not satisfy {clause}"
                );
            }
        } else {
            let core: Vec<Lit> = solver.unsat_core().to_vec();
            for l in &core {
                assert!(assumptions.contains(l), "seed {seed}: {l} not assumed");
                assert!(solver.core_contains(*l), "seed {seed}: core_contains({l})");
            }
            assert!(
                brute_force_sat(MAX_VAR as usize, &cnf, &core).is_none(),
                "seed {seed}: core {core:?} is not sufficient for unsat"
            );
            // The core must reproduce UNSAT when used as the assumptions of
            // the same (incremental) solver.
            assert_eq!(
                solver.solve(&core),
                SatResult::Unsat,
                "seed {seed}: core {core:?} not self-unsatisfiable"
            );
        }
    }
}

/// Differential fuzz of the IC3 activation-literal discipline: a base formula
/// solved repeatedly under per-round activation clauses, with the activation
/// variable released (and eventually recycled) after each round.
#[test]
fn activation_release_fuzz_matches_brute_force() {
    let mut rng = Rng::new(0xac7);
    for seed in 0..250u64 {
        let cnf = arb_cnf(&mut rng);
        let mut solver = load(&cnf);
        for round in 0..4 {
            let extra = arb_clause(&mut rng);
            let assumptions = arb_assumptions(&mut rng);
            let act = Lit::pos(solver.new_var());
            assert!(act.var().index() >= MAX_VAR as usize, "seed {seed}");
            let mut activation_clause = vec![!act];
            activation_clause.extend(extra.iter());
            solver.add_clause(activation_clause);
            // Under `act`, the solver must agree with cnf ∧ extra.
            let mut with_extra: Cnf = cnf.iter().cloned().collect();
            with_extra.push(extra.clone());
            let expected = brute_force_sat(MAX_VAR as usize, &with_extra, &assumptions).is_some();
            let mut solver_assumptions = vec![act];
            solver_assumptions.extend_from_slice(&assumptions);
            let got = solver.solve(&solver_assumptions);
            assert_eq!(
                got,
                if expected {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "seed {seed} round {round}: {cnf} + {extra} under {assumptions:?}"
            );
            if got == SatResult::Sat {
                for clause in with_extra.iter() {
                    assert!(
                        clause
                            .iter()
                            .any(|l| solver.model_value_lit(l) == Some(true)),
                        "seed {seed} round {round}: model misses {clause}"
                    );
                }
            } else {
                // Core minus the activation literal must still be unsat
                // against the matching formula.
                let core: Vec<Lit> = solver.unsat_core().to_vec();
                let state_core: Vec<Lit> = core.iter().copied().filter(|&l| l != act).collect();
                let formula = if core.contains(&act) {
                    &with_extra
                } else {
                    &cnf
                };
                assert!(
                    brute_force_sat(MAX_VAR as usize, formula, &state_core).is_none(),
                    "seed {seed} round {round}: core {core:?} insufficient"
                );
            }
            // Retire the activation literal; every other round force the
            // reclamation so variable recycling gets exercised. (When the
            // base formula is contradictory at the top level, simplify
            // correctly reports unsatisfiability instead of reclaiming.)
            solver.release_var(!act);
            if round % 2 == 1 {
                let simplified = solver.simplify();
                assert_eq!(simplified, solver.is_ok(), "seed {seed} round {round}");
                if simplified {
                    assert_eq!(solver.num_released_pending(), 0, "seed {seed}");
                }
            }
            // With the activation literal retired the extra clause is inert.
            let expected = brute_force_sat(MAX_VAR as usize, &cnf, &assumptions).is_some();
            let got = solver.solve(&assumptions);
            assert_eq!(
                got,
                if expected {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "seed {seed} round {round}: post-release solve"
            );
        }
    }
}

#[test]
fn repeated_solves_are_consistent() {
    let mut rng = Rng::new(0xb004);
    for seed in 0..CASES {
        let cnf = arb_cnf(&mut rng);
        let assumptions = arb_assumptions(&mut rng);
        // Solving twice with the same assumptions must give the same verdict
        // (exercises trail cleanup / phase saving interactions).
        let mut solver = load(&cnf);
        let first = solver.solve(&assumptions);
        let second = solver.solve(&assumptions);
        assert_eq!(first, second, "seed {seed}");
        // And an unconstrained solve afterwards agrees with brute force.
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &[]).is_some();
        let third = solver.solve(&[]);
        assert_eq!(
            third,
            if expected {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "seed {seed}"
        );
    }
}
