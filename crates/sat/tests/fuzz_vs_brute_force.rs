//! Differential testing of the CDCL solver against the exhaustive reference
//! solver on random small formulas, with and without assumptions, including
//! incremental use and unsat-core checks.

use plic3_logic::{Clause, Cnf, Lit, Var};
use plic3_sat::{brute_force_sat, SatResult, Solver};
use proptest::prelude::*;

const MAX_VAR: u32 = 10;

fn arb_lit() -> impl Strategy<Value = Lit> {
    (0..MAX_VAR, any::<bool>()).prop_map(|(v, pos)| Lit::new(Var::new(v), pos))
}

fn arb_clause() -> impl Strategy<Value = Clause> {
    prop::collection::vec(arb_lit(), 1..5).prop_map(Clause::from_lits)
}

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    prop::collection::vec(arb_clause(), 0..30).prop_map(Cnf::from_clauses)
}

fn arb_assumptions() -> impl Strategy<Value = Vec<Lit>> {
    prop::collection::btree_map(0..MAX_VAR, any::<bool>(), 0..4)
        .prop_map(|m| m.into_iter().map(|(v, p)| Lit::new(Var::new(v), p)).collect())
}

fn load(cnf: &Cnf) -> Solver {
    let mut solver = Solver::new();
    solver.ensure_vars(MAX_VAR as usize);
    for clause in cnf {
        solver.add_clause_ref(clause);
    }
    solver
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn agrees_with_brute_force(cnf in arb_cnf()) {
        let mut solver = load(&cnf);
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &[]).is_some();
        let got = solver.solve(&[]);
        prop_assert_eq!(got, if expected { SatResult::Sat } else { SatResult::Unsat });
        if got == SatResult::Sat {
            // The reported model must satisfy every clause.
            for clause in &cnf {
                prop_assert!(
                    clause.iter().any(|l| solver.model_value_lit(l) == Some(true)),
                    "model does not satisfy {}", clause
                );
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_under_assumptions(
        cnf in arb_cnf(),
        assumptions in arb_assumptions(),
    ) {
        let mut solver = load(&cnf);
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &assumptions).is_some();
        let got = solver.solve(&assumptions);
        prop_assert_eq!(got, if expected { SatResult::Sat } else { SatResult::Unsat });
        if got == SatResult::Sat {
            for &a in &assumptions {
                prop_assert_eq!(solver.model_value_lit(a), Some(true));
            }
        } else {
            // The unsat core must be a subset of the assumptions and itself
            // sufficient for unsatisfiability.
            let core: Vec<Lit> = solver.unsat_core().to_vec();
            for l in &core {
                prop_assert!(assumptions.contains(l));
            }
            prop_assert!(brute_force_sat(MAX_VAR as usize, &cnf, &core).is_none(),
                "core {:?} is not sufficient for unsat", core);
        }
    }

    #[test]
    fn incremental_solving_matches_monolithic(
        cnf1 in arb_cnf(),
        cnf2 in arb_cnf(),
        assumptions in arb_assumptions(),
    ) {
        // Solve cnf1, then add cnf2 and solve again: the second answer must match
        // a fresh solver on cnf1 ∧ cnf2.
        let mut solver = load(&cnf1);
        let _ = solver.solve(&[]);
        for clause in &cnf2 {
            solver.add_clause_ref(clause);
        }
        let combined: Cnf = cnf1.iter().chain(cnf2.iter()).cloned().collect();
        let expected = brute_force_sat(MAX_VAR as usize, &combined, &assumptions).is_some();
        let got = solver.solve(&assumptions);
        prop_assert_eq!(got, if expected { SatResult::Sat } else { SatResult::Unsat });
    }

    #[test]
    fn repeated_solves_are_consistent(cnf in arb_cnf(), assumptions in arb_assumptions()) {
        // Solving twice with the same assumptions must give the same verdict
        // (exercises trail cleanup / phase saving interactions).
        let mut solver = load(&cnf);
        let first = solver.solve(&assumptions);
        let second = solver.solve(&assumptions);
        prop_assert_eq!(first, second);
        // And an unconstrained solve afterwards agrees with brute force.
        let expected = brute_force_sat(MAX_VAR as usize, &cnf, &[]).is_some();
        let third = solver.solve(&[]);
        prop_assert_eq!(third, if expected { SatResult::Sat } else { SatResult::Unsat });
    }
}
