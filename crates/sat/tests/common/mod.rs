//! Helpers shared by the search-engine test binaries (`search_differential`
//! and `cancellation_soundness`): the nightly iteration scaling and the
//! aggressive [`SearchConfig`] variant set.

use plic3_sat::{RestartPolicy, SearchConfig};

/// Base iteration count scaled by the `PLIC3_FUZZ_SCALE` environment
/// variable (the nightly CI profile sets it to 10).
pub fn iterations(base: u64) -> u64 {
    let scale = std::env::var("PLIC3_FUZZ_SCALE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(1)
        .max(1);
    base * scale
}

/// A search configuration stressed enough that restarts, rephases, chrono
/// backtracks, and inprocessing all trigger on the small formulas the
/// brute-force oracle can handle.
pub fn aggressive(restart: RestartPolicy, chrono: u32, inprocess: bool) -> SearchConfig {
    SearchConfig {
        restart,
        ema_fast_window: 4,
        ema_slow_window: 16,
        restart_margin: 1.05,
        restart_min_conflicts: 2,
        restart_base: 2,
        restart_blocking: 1.4,
        restart_starvation: 8,
        phase_saving: true,
        rephase_interval: 8,
        chrono,
        vivify: inprocess,
        vivify_interval: 1,
        subsume: inprocess,
        elim: inprocess,
        elim_interval: 1,
    }
}

/// Every search variant under test: the cross product of restart policy,
/// chronological backtracking, and inprocessing (aggressive knobs), plus the
/// shipped default and classic configurations, each with a stable label.
/// (Unused by the elimination test binary, which sweeps its own on/off pair.)
#[allow(dead_code)]
pub fn labelled_variants() -> Vec<(String, SearchConfig)> {
    let mut variants = Vec::new();
    for (rname, restart) in [("ema", RestartPolicy::Ema), ("luby", RestartPolicy::Luby)] {
        for chrono in [0u32, 1] {
            for inprocess in [false, true] {
                let name = format!(
                    "{rname}/chrono={chrono}/inprocess={}",
                    if inprocess { "on" } else { "off" }
                );
                variants.push((name, aggressive(restart, chrono, inprocess)));
            }
        }
    }
    variants.push(("default".to_string(), SearchConfig::default()));
    variants.push(("classic".to_string(), SearchConfig::classic()));
    variants
}
