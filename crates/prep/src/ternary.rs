//! Three-valued (ternary) fixed-point simulation for stuck-at latch detection.
//!
//! Inputs are held at the unknown value `X` and the latch state starts at the
//! reset values (`X` for uninitialized latches). One abstract step evaluates
//! every gate under ternary AND and feeds the next-state literals back into
//! the latches; a latch whose value would change is *widened* to `X`. The
//! widening makes the iteration monotone in the `{0,1} ⊑ X` lattice, so it
//! reaches a fixed point after at most `num_latches + 1` steps. Any latch that
//! still holds a Boolean constant at the fixed point provably holds that value
//! in **every** reachable state of the concrete circuit, for every input
//! sequence — it is stuck and can be replaced by the constant.

use plic3_aig::{Aig, AigLit};

/// A value of the three-valued simulation domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ternary {
    /// Definitely false.
    False,
    /// Definitely true.
    True,
    /// Unknown (either value possible).
    Unknown,
}

impl Ternary {
    /// Lifts a Boolean constant.
    pub fn from_bool(value: bool) -> Ternary {
        if value {
            Ternary::True
        } else {
            Ternary::False
        }
    }

    /// Ternary conjunction: false dominates, two trues make a true, anything
    /// else is unknown.
    pub fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::False, _) | (_, Ternary::False) => Ternary::False,
            (Ternary::True, Ternary::True) => Ternary::True,
            _ => Ternary::Unknown,
        }
    }

    /// The Boolean value, if the ternary value is a constant.
    pub fn constant(self) -> Option<bool> {
        match self {
            Ternary::False => Some(false),
            Ternary::True => Some(true),
            Ternary::Unknown => None,
        }
    }
}

impl std::ops::Not for Ternary {
    type Output = Ternary;

    /// Ternary negation (`X` stays `X`).
    fn not(self) -> Ternary {
        match self {
            Ternary::False => Ternary::True,
            Ternary::True => Ternary::False,
            Ternary::Unknown => Ternary::Unknown,
        }
    }
}

/// Evaluates every variable of `aig` under the given latch valuation, with all
/// primary inputs at `X`. Returns one value per variable (indexed by AIGER
/// variable number; variable 0 evaluates to false so literal 1 is true).
fn eval_all(aig: &Aig, latch_values: &[Ternary]) -> Vec<Ternary> {
    let mut values = vec![Ternary::Unknown; aig.max_var() as usize + 1];
    values[0] = Ternary::False;
    for (latch, &v) in aig.latches().iter().zip(latch_values) {
        values[latch.lit.variable() as usize] = v;
    }
    for gate in aig.ands() {
        let a = eval(&values, gate.rhs0);
        let b = eval(&values, gate.rhs1);
        values[gate.lhs.variable() as usize] = a.and(b);
    }
    values
}

fn eval(values: &[Ternary], lit: AigLit) -> Ternary {
    let v = values[lit.variable() as usize];
    if lit.is_negated() {
        !v
    } else {
        v
    }
}

/// For each latch of `aig`, `Some(c)` if ternary fixed-point simulation proves
/// the latch holds the constant `c` in every reachable state (under every
/// input sequence), `None` otherwise.
pub fn stuck_latches(aig: &Aig) -> Vec<Option<bool>> {
    stuck_latches_with_stop(aig, &plic3_sat::StopFlag::new())
}

/// [`stuck_latches`] with a cancellation point between fixed-point
/// iterations: once `stop` is raised the sweep returns the all-`None`
/// (nothing proven stuck) answer, which is always sound.
pub fn stuck_latches_with_stop(aig: &Aig, stop: &plic3_sat::StopFlag) -> Vec<Option<bool>> {
    let mut state: Vec<Ternary> = aig
        .latches()
        .iter()
        .map(|l| l.init.map_or(Ternary::Unknown, Ternary::from_bool))
        .collect();
    // Widening kills at least one constant per non-fixpoint iteration, so the
    // loop ends after at most num_latches + 1 rounds; the bound below is a
    // defensive cap, not a tuning knob.
    for _ in 0..aig.num_latches() + 2 {
        if stop.is_stopped() {
            return vec![None; aig.num_latches()];
        }
        let values = eval_all(aig, &state);
        let mut changed = false;
        for (i, latch) in aig.latches().iter().enumerate() {
            let next = eval(&values, latch.next);
            if next != state[i] {
                // Widen: once a latch can take a second value it is unknown.
                if state[i] != Ternary::Unknown {
                    state[i] = Ternary::Unknown;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    state.into_iter().map(Ternary::constant).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;

    #[test]
    fn ternary_operators() {
        use Ternary::*;
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(False), False);
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(!Unknown, Unknown);
        assert_eq!(!True, False);
        assert_eq!(Ternary::from_bool(true).constant(), Some(true));
        assert_eq!(Unknown.constant(), None);
    }

    #[test]
    fn self_looping_latches_are_stuck_at_their_reset_value() {
        let mut b = AigBuilder::new();
        let zero = b.latch(Some(false));
        let one = b.latch(Some(true));
        b.set_latch_next(zero, zero);
        b.set_latch_next(one, one);
        b.add_bad(zero);
        let stuck = stuck_latches(&b.build());
        assert_eq!(stuck, vec![Some(false), Some(true)]);
    }

    #[test]
    fn constants_propagate_through_gates_and_latch_chains() {
        // l0 is fed the constant false, l1 copies l0, l2 = AND(l1, input):
        // l0 and l1 are stuck at 0, and so is l2 (false dominates the X input).
        let mut b = AigBuilder::new();
        let x = b.input();
        let l0 = b.latch(Some(false));
        let l1 = b.latch(Some(false));
        let l2 = b.latch(Some(false));
        b.set_latch_next(l0, b.constant_false());
        b.set_latch_next(l1, l0);
        let guarded = b.and(l1, x);
        b.set_latch_next(l2, guarded);
        b.add_bad(l2);
        let stuck = stuck_latches(&b.build());
        assert_eq!(stuck, vec![Some(false), Some(false), Some(false)]);
    }

    #[test]
    fn toggling_and_input_driven_latches_are_not_stuck() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let toggle = b.latch(Some(false));
        let follow = b.latch(Some(false));
        b.set_latch_next(toggle, !toggle);
        b.set_latch_next(follow, x);
        b.add_bad(toggle);
        let stuck = stuck_latches(&b.build());
        assert_eq!(stuck, vec![None, None]);
    }

    #[test]
    fn uninitialized_latches_never_count_as_stuck() {
        let mut b = AigBuilder::new();
        let l = b.latch(None);
        b.set_latch_next(l, l);
        b.add_bad(l);
        assert_eq!(stuck_latches(&b.build()), vec![None]);
    }

    #[test]
    fn eventually_constant_latches_are_not_claimed_stuck() {
        // A chain l0 <- false, l1 <- l0, ..., each initialized to 1: every
        // latch is 1 at reset but becomes 0 forever after i+1 steps — so none
        // of them is stuck (their value changes over time).
        let mut b = AigBuilder::new();
        let chain = b.latches(4, Some(true));
        b.set_latch_next(chain[0], b.constant_false());
        for i in 1..4 {
            b.set_latch_next(chain[i], chain[i - 1]);
        }
        b.add_bad(chain[3]);
        assert_eq!(stuck_latches(&b.build()), vec![None; 4]);
    }
}
