//! Witness reconstruction: mapping executions of the simplified circuit back
//! to executions of the original circuit.

use plic3_aig::Aig;

/// Where an *original* input or latch gets its value from when a witness found
/// on the simplified circuit is replayed on the original one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SignalSource {
    /// The signal survived preprocessing: read position `index` of the
    /// simplified circuit's input frame / latch state, negated if `negated`.
    Kept {
        /// Input or latch index in the *simplified* circuit.
        index: usize,
        /// `true` if the original signal is the complement of the kept one.
        negated: bool,
    },
    /// Preprocessing proved the signal constant in every execution (a stuck-at
    /// latch, or a signal folded to a constant).
    Constant(bool),
    /// The signal was dropped as irrelevant (outside the cone of influence).
    /// Any value is sound; replay uses the latch's reset value (inputs default
    /// to `false`).
    Free,
}

/// The invertible witness map recorded by a preprocessing pipeline.
///
/// A `Reconstruction` describes, for every input and latch of the *original*
/// circuit, how to obtain its value from an execution of the *simplified*
/// circuit ([`SignalSource`]). This is the contract that makes preprocessing
/// sound end to end:
///
/// * a counterexample trace found on the simplified circuit maps — via
///   [`Reconstruction::map_input_frame`] and
///   [`Reconstruction::map_initial_state`] — to an execution of the original
///   circuit that violates the same property, and
/// * an inductive invariant of the simplified circuit certifies the original
///   property because every pass preserves the property's value step for step
///   (see `docs/PREPROCESSING.md` for the per-pass argument).
///
/// Reconstructions compose: running pass B after pass A yields
/// `A.compose(&B)`, which maps original signals all the way to B's output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reconstruction {
    inputs: Vec<SignalSource>,
    latches: Vec<SignalSource>,
    /// Input/latch counts of the *simplified* circuit, kept so composition and
    /// witness mapping can reject mismatched circuits instead of silently
    /// producing a wrong map.
    simplified_inputs: usize,
    simplified_latches: usize,
}

impl Reconstruction {
    /// Creates a reconstruction from explicit per-signal sources and the
    /// simplified circuit's input/latch counts.
    pub(crate) fn new(
        inputs: Vec<SignalSource>,
        latches: Vec<SignalSource>,
        simplified_inputs: usize,
        simplified_latches: usize,
    ) -> Self {
        debug_assert!(inputs.iter().all(|s| match s {
            SignalSource::Kept { index, .. } => *index < simplified_inputs,
            _ => true,
        }));
        debug_assert!(latches.iter().all(|s| match s {
            SignalSource::Kept { index, .. } => *index < simplified_latches,
            _ => true,
        }));
        Reconstruction {
            inputs,
            latches,
            simplified_inputs,
            simplified_latches,
        }
    }

    /// The identity map for a circuit with the given input/latch counts (the
    /// reconstruction of a pipeline that changed nothing).
    pub fn identity(num_inputs: usize, num_latches: usize) -> Self {
        let kept = |index: usize| SignalSource::Kept {
            index,
            negated: false,
        };
        Reconstruction {
            inputs: (0..num_inputs).map(kept).collect(),
            latches: (0..num_latches).map(kept).collect(),
            simplified_inputs: num_inputs,
            simplified_latches: num_latches,
        }
    }

    /// Number of inputs of the original circuit.
    pub fn num_original_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches of the original circuit.
    pub fn num_original_latches(&self) -> usize {
        self.latches.len()
    }

    /// The source of the `i`-th original input.
    pub fn input_source(&self, i: usize) -> SignalSource {
        self.inputs[i]
    }

    /// The source of the `i`-th original latch.
    pub fn latch_source(&self, i: usize) -> SignalSource {
        self.latches[i]
    }

    /// Composes two reconstructions: `self` maps original → intermediate,
    /// `later` maps intermediate → final; the result maps original → final.
    ///
    /// # Panics
    ///
    /// Panics if `later`'s original widths do not match `self`'s simplified
    /// widths (i.e. the two maps do not describe consecutive passes).
    pub fn compose(&self, later: &Reconstruction) -> Reconstruction {
        assert_eq!(
            (self.simplified_inputs, self.simplified_latches),
            (later.inputs.len(), later.latches.len()),
            "composed reconstructions must describe consecutive passes"
        );
        let resolve = |source: SignalSource, through: &[SignalSource]| match source {
            SignalSource::Free => SignalSource::Free,
            SignalSource::Constant(c) => SignalSource::Constant(c),
            SignalSource::Kept { index, negated } => match through[index] {
                SignalSource::Free => SignalSource::Free,
                SignalSource::Constant(c) => SignalSource::Constant(c != negated),
                SignalSource::Kept {
                    index: final_index,
                    negated: also,
                } => SignalSource::Kept {
                    index: final_index,
                    negated: negated != also,
                },
            },
        };
        Reconstruction {
            inputs: self
                .inputs
                .iter()
                .map(|&s| resolve(s, &later.inputs))
                .collect(),
            latches: self
                .latches
                .iter()
                .map(|&s| resolve(s, &later.latches))
                .collect(),
            simplified_inputs: later.simplified_inputs,
            simplified_latches: later.simplified_latches,
        }
    }

    /// Maps one input frame of the simplified circuit to an input frame of the
    /// original circuit. Dropped inputs default to `false`.
    ///
    /// # Panics
    ///
    /// Panics if the frame's width differs from the simplified circuit's
    /// input count.
    pub fn map_input_frame(&self, simplified: &[bool]) -> Vec<bool> {
        assert_eq!(
            simplified.len(),
            self.simplified_inputs,
            "input frame width does not match the simplified circuit"
        );
        self.inputs
            .iter()
            .map(|&source| match source {
                SignalSource::Kept { index, negated } => simplified[index] != negated,
                SignalSource::Constant(c) => c,
                SignalSource::Free => false,
            })
            .collect()
    }

    /// Maps a latch valuation of the simplified circuit to a latch valuation of
    /// the original circuit. Dropped latches take their reset value from
    /// `original` (uninitialized latches default to `false`), so the result is
    /// a legitimate initial state whenever `simplified` is one.
    ///
    /// # Panics
    ///
    /// Panics if `original`'s latch count differs from the reconstruction's,
    /// or if `simplified`'s width differs from the simplified circuit's latch
    /// count.
    pub fn map_initial_state(&self, simplified: &[bool], original: &Aig) -> Vec<bool> {
        assert_eq!(
            original.num_latches(),
            self.latches.len(),
            "reconstruction was recorded for a different circuit"
        );
        assert_eq!(
            simplified.len(),
            self.simplified_latches,
            "latch valuation width does not match the simplified circuit"
        );
        original
            .latches()
            .iter()
            .zip(&self.latches)
            .map(|(latch, &source)| match source {
                SignalSource::Kept { index, negated } => simplified[index] != negated,
                SignalSource::Constant(c) => c,
                SignalSource::Free => latch.init.unwrap_or(false),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;

    #[test]
    fn identity_maps_values_through_unchanged() {
        let r = Reconstruction::identity(2, 3);
        assert_eq!(r.num_original_inputs(), 2);
        assert_eq!(r.num_original_latches(), 3);
        assert_eq!(r.map_input_frame(&[true, false]), vec![true, false]);
        let mut b = AigBuilder::new();
        let l = b.latches(3, Some(false));
        for &x in &l {
            b.set_latch_next(x, x);
        }
        let aig = b.build();
        assert_eq!(
            r.map_initial_state(&[true, false, true], &aig),
            vec![true, false, true]
        );
    }

    #[test]
    fn constants_and_free_signals_resolve_locally() {
        let r = Reconstruction::new(
            vec![SignalSource::Free],
            vec![
                SignalSource::Constant(true),
                SignalSource::Kept {
                    index: 0,
                    negated: true,
                },
                SignalSource::Free,
            ],
            0,
            1,
        );
        assert_eq!(r.map_input_frame(&[]), vec![false]);
        let mut b = AigBuilder::new();
        let l0 = b.latch(Some(true));
        let l1 = b.latch(Some(false));
        let l2 = b.latch(Some(true));
        for x in [l0, l1, l2] {
            b.set_latch_next(x, x);
        }
        let aig = b.build();
        // Simplified circuit has one latch, currently 0 → original latch 1 is
        // its negation (1), latch 0 is the constant, latch 2 falls back to its
        // reset value.
        assert_eq!(r.map_initial_state(&[false], &aig), vec![true, true, true]);
    }

    #[test]
    fn composition_chains_negations_and_constants() {
        let first = Reconstruction::new(
            vec![SignalSource::Kept {
                index: 0,
                negated: false,
            }],
            vec![
                SignalSource::Kept {
                    index: 1,
                    negated: true,
                },
                SignalSource::Kept {
                    index: 0,
                    negated: false,
                },
                SignalSource::Free,
            ],
            1,
            2,
        );
        let second = Reconstruction::new(
            vec![SignalSource::Free],
            vec![
                SignalSource::Kept {
                    index: 0,
                    negated: true,
                },
                SignalSource::Constant(false),
            ],
            0,
            1,
        );
        let composed = first.compose(&second);
        // Original latch 0 went through "negated copy of latch 1", and latch 1
        // of the middle circuit is now the constant false → constant true.
        assert_eq!(composed.latch_source(0), SignalSource::Constant(true));
        // Original latch 1 was latch 0 of the middle circuit, which is a
        // negated copy of the final latch 0.
        assert_eq!(
            composed.latch_source(1),
            SignalSource::Kept {
                index: 0,
                negated: true
            }
        );
        assert_eq!(composed.latch_source(2), SignalSource::Free);
        assert_eq!(composed.input_source(0), SignalSource::Free);
    }

    #[test]
    #[should_panic(expected = "consecutive passes")]
    fn composing_mismatched_passes_panics() {
        let a = Reconstruction::identity(1, 2);
        let b = Reconstruction::identity(1, 3);
        let _ = a.compose(&b);
    }
}
