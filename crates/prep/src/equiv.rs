//! Sequential latch-equivalence detection by *signed* partition refinement
//! (van-Eijk-style, but purely structural: candidate classes are refined with
//! strashed next-state signatures instead of SAT checks, so every surviving
//! class is proven equivalent by induction and no solver is needed).
//!
//! Classes are signed: a latch can be equivalent to a classmate (`l ≡ m`) or
//! to its complement (`l ≡ ¬m`). The phase of each latch relative to its
//! class representative is tracked explicitly, so a pair of registers that
//! reset to opposite values and toggle in lock-step still collapses onto one
//! representative.

use plic3_aig::{Aig, AigBuilder, AigLit};
use std::collections::HashMap;

/// Partitions the latches of `aig` into signed classes that provably hold the
/// same (or the complemented) value in every reachable state. Returns, for
/// each latch index, the representative (smallest) latch index of its class
/// and the phase relative to it: `(i, false)` means the latch is its own
/// class, `(r, true)` means the latch always equals `¬r`.
///
/// `stuck` is the per-latch stuck-at result of
/// [`crate::ternary::stuck_latches`]; stuck latches are excluded from
/// the partition (they are handled by constant sweeping) but their constants
/// strengthen the signatures of everything downstream.
///
/// Soundness is by induction over time. The initial partition puts every
/// *initialized*, non-stuck latch into one class, with the phase recording
/// whether its reset value is the complement of the representative's — so
/// classmates agree (phase-adjusted) at step 0. Uninitialized latches are
/// frozen as singletons: their step-0 values are independent. The refinement
/// loop keeps two latches together only if their next-state functions are
/// structurally identical *after substituting every latch by its
/// phase-adjusted class representative* (and every stuck latch by its
/// constant), **and** the structural phase between the two next-state
/// functions matches the phase between the latches. Under the induction
/// hypothesis that classmates agree phase-adjusted at step `t`, identical
/// substituted functions then yield phase-consistent values at step `t + 1`.
/// A partition the loop cannot refine further is therefore an inductive
/// (signed) equivalence.
pub(crate) fn equivalent_latches(
    aig: &Aig,
    stuck: &[Option<bool>],
    stop: &plic3_sat::StopFlag,
) -> Vec<(usize, bool)> {
    let n = aig.num_latches();
    let mut reps: Vec<usize> = (0..n).collect();
    let mut phase: Vec<bool> = vec![false; n];
    let frozen: Vec<bool> = aig
        .latches()
        .iter()
        .zip(stuck)
        .map(|(latch, stuck)| latch.init.is_none() || stuck.is_some())
        .collect();
    // Initial partition: one signed class holding every candidate; the phase
    // encodes the reset value relative to the first candidate's.
    let mut leader: Option<(usize, bool)> = None;
    for (i, latch) in aig.latches().iter().enumerate() {
        if frozen[i] {
            continue;
        }
        let init = latch.init == Some(true);
        match leader {
            None => leader = Some((i, init)),
            Some((l, leader_init)) => {
                reps[i] = l;
                phase[i] = init != leader_init;
            }
        }
    }
    if reps.iter().enumerate().all(|(i, &r)| r == i) {
        return reps.into_iter().zip(phase).collect();
    }
    // Refine until stable. Each round either splits a class or terminates (a
    // stable round keeps every leader, which pins the phases too), so at most
    // n rounds run.
    loop {
        if stop.is_stopped() {
            // Cancelled mid-refinement: the current partition is not yet
            // proven inductive, so the only sound answer is "merge nothing".
            return (0..n).map(|i| (i, false)).collect();
        }
        let sigs = signatures(aig, stuck, &reps, &phase);
        let mut group_leader: HashMap<(usize, u32), usize> = HashMap::new();
        let mut next_reps: Vec<usize> = (0..n).collect();
        let mut next_phase: Vec<bool> = vec![false; n];
        for i in 0..n {
            if frozen[i] {
                continue;
            }
            // Two classmates may stay together only if their substituted
            // next-state functions sit on the same strashed node AND the
            // structural phase between the functions equals the phase between
            // the latches — i.e. `sig_neg XOR phase` agrees.
            let bit = sigs[i].is_negated() != phase[i];
            let key = (reps[i], (sigs[i].variable() << 1) | u32::from(bit));
            let leader = *group_leader.entry(key).or_insert(i);
            next_reps[i] = leader;
            next_phase[i] = phase[i] != phase[leader];
        }
        if next_reps == reps && next_phase == phase {
            return reps.into_iter().zip(phase).collect();
        }
        reps = next_reps;
        phase = next_phase;
    }
}

/// Computes, for each latch, the structural signature of its next-state
/// function with every latch substituted by its phase-adjusted class
/// representative and every stuck latch substituted by its constant.
/// Signatures are literals in a strashed scratch builder, so structurally
/// identical (or complemented) functions collide exactly (up to negation).
fn signatures(aig: &Aig, stuck: &[Option<bool>], reps: &[usize], phase: &[bool]) -> Vec<AigLit> {
    let mut b = AigBuilder::new();
    let mut mapped: Vec<AigLit> = vec![AigLit::FALSE; aig.max_var() as usize + 1];
    for i in 0..aig.num_inputs() {
        mapped[aig.input(i).variable() as usize] = b.input();
    }
    // One scratch latch node per representative, created in ascending order so
    // the assignment is deterministic.
    let mut rep_node: HashMap<usize, AigLit> = HashMap::new();
    for (i, latch) in aig.latches().iter().enumerate() {
        let node = match stuck[i] {
            Some(c) => {
                if c {
                    AigLit::TRUE
                } else {
                    AigLit::FALSE
                }
            }
            None => rep_node
                .entry(reps[i])
                .or_insert_with(|| b.latch(latch.init))
                .negate_if(phase[i]),
        };
        mapped[latch.lit.variable() as usize] = node;
    }
    for gate in aig.ands() {
        let a = map(&mapped, gate.rhs0);
        let c = map(&mapped, gate.rhs1);
        mapped[gate.lhs.variable() as usize] = b.and(a, c);
    }
    aig.latches()
        .iter()
        .map(|latch| map(&mapped, latch.next))
        .collect()
}

fn map(mapped: &[AigLit], lit: AigLit) -> AigLit {
    mapped[lit.variable() as usize].negate_if(lit.is_negated())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary;

    fn analyse(aig: &Aig) -> Vec<(usize, bool)> {
        equivalent_latches(
            aig,
            &ternary::stuck_latches(aig),
            &plic3_sat::StopFlag::new(),
        )
    }

    #[test]
    fn duplicated_toggle_latches_are_merged() {
        let mut b = AigBuilder::new();
        let a = b.latch(Some(false));
        let c = b.latch(Some(false));
        b.set_latch_next(a, !a);
        b.set_latch_next(c, !c);
        let both = b.and(a, c);
        b.add_bad(both);
        assert_eq!(analyse(&b.build()), vec![(0, false), (0, false)]);
    }

    #[test]
    fn cyclically_duplicated_rings_collapse_onto_one_copy() {
        // Two identical 3-cell token rings: no latch's next literal matches
        // another's syntactically, so only the inductive refinement can merge
        // the copies.
        let mut b = AigBuilder::new();
        let mut rings = Vec::new();
        for _ in 0..2 {
            let cells: Vec<AigLit> = (0..3).map(|i| b.latch(Some(i == 0))).collect();
            for i in 0..3 {
                b.set_latch_next(cells[i], cells[(i + 2) % 3]);
            }
            rings.push(cells);
        }
        let bad = b.and(rings[0][0], rings[1][1]);
        b.add_bad(bad);
        let reps = analyse(&b.build());
        let expected: Vec<(usize, bool)> =
            [0, 1, 2, 0, 1, 2].into_iter().map(|r| (r, false)).collect();
        assert_eq!(reps, expected);
    }

    #[test]
    fn latches_with_different_behaviour_stay_apart() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let toggle = b.latch(Some(false));
        let follow = b.latch(Some(false));
        let hold = b.latch(Some(false));
        b.set_latch_next(toggle, !toggle);
        b.set_latch_next(follow, x);
        b.set_latch_next(hold, hold);
        b.add_bad(toggle);
        let reps = analyse(&b.build());
        // `hold` is stuck (handled elsewhere), the other two differ.
        assert_eq!(reps, vec![(0, false), (1, false), (2, false)]);
    }

    #[test]
    fn complemented_toggles_merge_with_a_negated_phase() {
        // a resets to 0, c resets to 1, both toggle: c ≡ ¬a in every
        // reachable state. The equality-only analysis of PR 3 kept them apart;
        // the signed refinement merges them.
        let mut b = AigBuilder::new();
        let a = b.latch(Some(false));
        let c = b.latch(Some(true));
        b.set_latch_next(a, !a);
        b.set_latch_next(c, !c);
        let bad = b.and(a, c);
        b.add_bad(bad);
        assert_eq!(analyse(&b.build()), vec![(0, false), (0, true)]);
    }

    #[test]
    fn complemented_followers_merge_when_phases_are_consistent() {
        // a follows x, c follows ¬x, with complemented resets: c ≡ ¬a.
        let mut b = AigBuilder::new();
        let x = b.input();
        let a = b.latch(Some(false));
        let c = b.latch(Some(true));
        b.set_latch_next(a, x);
        b.set_latch_next(c, !x);
        let bad = b.and(a, c);
        b.add_bad(bad);
        assert_eq!(analyse(&b.build()), vec![(0, false), (0, true)]);
    }

    #[test]
    fn complement_candidates_with_inconsistent_phases_stay_apart() {
        // Complemented resets but *identical* next-state functions: the
        // latches agree at every step ≥ 1 yet differ at step 0, so no signed
        // class may keep them together.
        let mut b = AigBuilder::new();
        let x = b.input();
        let a = b.latch(Some(false));
        let c = b.latch(Some(true));
        b.set_latch_next(a, x);
        b.set_latch_next(c, x);
        let bad = b.and(a, c);
        b.add_bad(bad);
        assert_eq!(analyse(&b.build()), vec![(0, false), (1, false)]);
    }

    #[test]
    fn uninitialized_latches_are_never_merged() {
        // Same next-state function, but free (independent) step-0 values.
        let mut b = AigBuilder::new();
        let x = b.input();
        let a = b.latch(None);
        let c = b.latch(None);
        b.set_latch_next(a, x);
        b.set_latch_next(c, x);
        let bad = b.and(a, !c);
        b.add_bad(bad);
        assert_eq!(analyse(&b.build()), vec![(0, false), (1, false)]);
    }
}
