//! Sequential latch-equivalence detection by partition refinement
//! (van-Eijk-style, but purely structural: candidate classes are refined with
//! strashed next-state signatures instead of SAT checks, so every surviving
//! class is proven equivalent by induction and no solver is needed).

use plic3_aig::{Aig, AigBuilder, AigLit};
use std::collections::HashMap;

/// Partitions the latches of `aig` into classes that provably hold the same
/// value in every reachable state. Returns, for each latch index, the
/// representative (smallest) latch index of its class; `reps[i] == i` means
/// the latch is its own class.
///
/// `stuck` is the per-latch stuck-at result of
/// [`crate::ternary::stuck_latches`]; stuck latches are excluded from
/// the partition (they are handled by constant sweeping) but their constants
/// strengthen the signatures of everything downstream.
///
/// Soundness is by induction over time. The initial partition only groups
/// latches with the *same constant reset value*, so classmates agree at step
/// 0 (uninitialized latches are frozen as singletons — their step-0 values
/// are independent). The refinement loop keeps two latches together only if
/// their next-state functions are structurally identical *after substituting
/// every latch by its class representative* (and every stuck latch by its
/// constant); under the induction hypothesis that classmates agree at step
/// `t`, identical substituted functions yield identical values at step
/// `t + 1`. A partition the loop cannot refine further is therefore an
/// inductive equivalence.
pub(crate) fn equivalent_latches(aig: &Aig, stuck: &[Option<bool>]) -> Vec<usize> {
    let n = aig.num_latches();
    let mut reps: Vec<usize> = (0..n).collect();
    let frozen: Vec<bool> = aig
        .latches()
        .iter()
        .zip(stuck)
        .map(|(latch, stuck)| latch.init.is_none() || stuck.is_some())
        .collect();
    // Initial partition: one class per reset constant.
    let mut first_with_reset: [Option<usize>; 2] = [None, None];
    for (i, latch) in aig.latches().iter().enumerate() {
        if frozen[i] {
            continue;
        }
        let slot = &mut first_with_reset[usize::from(latch.init == Some(true))];
        reps[i] = *slot.get_or_insert(i);
    }
    if reps.iter().enumerate().all(|(i, &r)| r == i) {
        return reps;
    }
    // Refine until stable. Each round either splits a class or terminates, so
    // at most n rounds run.
    loop {
        let sigs = signatures(aig, stuck, &reps);
        let mut group_rep: HashMap<(usize, u32), usize> = HashMap::new();
        let mut next: Vec<usize> = (0..n).collect();
        for i in 0..n {
            if frozen[i] {
                continue;
            }
            next[i] = *group_rep.entry((reps[i], sigs[i])).or_insert(i);
        }
        if next == reps {
            return reps;
        }
        reps = next;
    }
}

/// Computes, for each latch, the structural signature of its next-state
/// function with every latch substituted by its class representative and
/// every stuck latch substituted by its constant. Signatures are literal
/// codes in a strashed scratch builder, so structurally identical functions
/// collide exactly.
fn signatures(aig: &Aig, stuck: &[Option<bool>], reps: &[usize]) -> Vec<u32> {
    let mut b = AigBuilder::new();
    let mut mapped: Vec<AigLit> = vec![AigLit::FALSE; aig.max_var() as usize + 1];
    for i in 0..aig.num_inputs() {
        mapped[aig.input(i).variable() as usize] = b.input();
    }
    // One scratch latch node per representative, created in ascending order so
    // the assignment is deterministic.
    let mut rep_node: HashMap<usize, AigLit> = HashMap::new();
    for (i, latch) in aig.latches().iter().enumerate() {
        let node = match stuck[i] {
            Some(c) => {
                if c {
                    AigLit::TRUE
                } else {
                    AigLit::FALSE
                }
            }
            None => *rep_node
                .entry(reps[i])
                .or_insert_with(|| b.latch(latch.init)),
        };
        mapped[latch.lit.variable() as usize] = node;
    }
    for gate in aig.ands() {
        let a = map(&mapped, gate.rhs0);
        let c = map(&mapped, gate.rhs1);
        mapped[gate.lhs.variable() as usize] = b.and(a, c);
    }
    aig.latches()
        .iter()
        .map(|latch| map(&mapped, latch.next).code())
        .collect()
}

fn map(mapped: &[AigLit], lit: AigLit) -> AigLit {
    mapped[lit.variable() as usize].negate_if(lit.is_negated())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ternary;

    fn analyse(aig: &Aig) -> Vec<usize> {
        equivalent_latches(aig, &ternary::stuck_latches(aig))
    }

    #[test]
    fn duplicated_toggle_latches_are_merged() {
        let mut b = AigBuilder::new();
        let a = b.latch(Some(false));
        let c = b.latch(Some(false));
        b.set_latch_next(a, !a);
        b.set_latch_next(c, !c);
        let both = b.and(a, c);
        b.add_bad(both);
        assert_eq!(analyse(&b.build()), vec![0, 0]);
    }

    #[test]
    fn cyclically_duplicated_rings_collapse_onto_one_copy() {
        // Two identical 3-cell token rings: no latch's next literal matches
        // another's syntactically, so only the inductive refinement can merge
        // the copies.
        let mut b = AigBuilder::new();
        let mut rings = Vec::new();
        for _ in 0..2 {
            let cells: Vec<AigLit> = (0..3).map(|i| b.latch(Some(i == 0))).collect();
            for i in 0..3 {
                b.set_latch_next(cells[i], cells[(i + 2) % 3]);
            }
            rings.push(cells);
        }
        let bad = b.and(rings[0][0], rings[1][1]);
        b.add_bad(bad);
        let reps = analyse(&b.build());
        assert_eq!(reps, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn latches_with_different_behaviour_stay_apart() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let toggle = b.latch(Some(false));
        let follow = b.latch(Some(false));
        let hold = b.latch(Some(false));
        b.set_latch_next(toggle, !toggle);
        b.set_latch_next(follow, x);
        b.set_latch_next(hold, hold);
        b.add_bad(toggle);
        let reps = analyse(&b.build());
        // `hold` is stuck (handled elsewhere), the other two differ.
        assert_eq!(reps, vec![0, 1, 2]);
    }

    #[test]
    fn different_reset_values_block_merging() {
        let mut b = AigBuilder::new();
        let a = b.latch(Some(false));
        let c = b.latch(Some(true));
        b.set_latch_next(a, !a);
        b.set_latch_next(c, !c);
        let bad = b.and(a, c);
        b.add_bad(bad);
        assert_eq!(analyse(&b.build()), vec![0, 1]);
    }

    #[test]
    fn uninitialized_latches_are_never_merged() {
        // Same next-state function, but free (independent) step-0 values.
        let mut b = AigBuilder::new();
        let x = b.input();
        let a = b.latch(None);
        let c = b.latch(None);
        b.set_latch_next(a, x);
        b.set_latch_next(c, x);
        let bad = b.and(a, !c);
        b.add_bad(bad);
        assert_eq!(analyse(&b.build()), vec![0, 1]);
    }
}
