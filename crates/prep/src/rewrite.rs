//! The rewrite engine shared by every preprocessing round: rebuilds the
//! circuit through a structural-hashing builder (which also folds constants),
//! applies the per-latch fates decided by the analyses (stuck-at constants,
//! equivalence merges), and optionally restricts the rebuild to the cone of
//! influence of the checked property and the invariant constraints.

use crate::recon::{Reconstruction, SignalSource};
use plic3_aig::{Aig, AigBuilder, AigLit};
use std::collections::HashSet;

/// What happens to one latch during a rewrite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum LatchFate {
    /// The latch survives (subject to cone-of-influence pruning).
    Keep,
    /// The latch is replaced by a constant everywhere.
    Stuck(bool),
    /// The latch is replaced by the (kept) representative latch of its signed
    /// equivalence class, complemented when `negated` is set (`l ≡ ¬rep`).
    Merge {
        /// Index of the representative latch; must itself be [`LatchFate::Keep`].
        representative: usize,
        /// `true` when the latch is the *complement* of its representative.
        negated: bool,
    },
}

/// Rebuilds `aig` with the given latch fates applied.
///
/// With `coi` set, only the logic transitively feeding the checked property
/// ([`Aig::property_literal`]) and the invariant constraints is rebuilt;
/// everything else — including secondary outputs and bad literals, which the
/// model checkers never look at — is dropped. Without `coi` every input,
/// latch, output, bad literal and constraint is preserved.
///
/// Constant folding happens on the way: constraints that fold to `true`
/// disappear, and the property may itself collapse to a constant (the
/// trivially safe / trivially unsafe cases).
pub(crate) fn rewrite(aig: &Aig, fates: &[LatchFate], coi: bool) -> (Aig, Reconstruction) {
    debug_assert_eq!(fates.len(), aig.num_latches());
    for fate in fates {
        if let LatchFate::Merge { representative, .. } = fate {
            debug_assert_eq!(
                fates[*representative],
                LatchFate::Keep,
                "merge representative must itself be kept"
            );
        }
    }

    // ------------------------------------------------------------------
    // Demand analysis: which original variables are still needed, with the
    // fates already applied (a merged latch forwards demand to its
    // representative, a stuck latch demands nothing).
    // ------------------------------------------------------------------
    let mut needed: HashSet<u32> = HashSet::new();
    let mut stack: Vec<u32> = Vec::new();
    let demand = |lit: AigLit, stack: &mut Vec<u32>, needed: &mut HashSet<u32>| {
        let mut v = lit.variable();
        loop {
            if v == 0 {
                return;
            }
            if let Some(idx) = aig.latch_index(AigLit::positive(v)) {
                match fates[idx] {
                    LatchFate::Stuck(_) => return,
                    LatchFate::Merge { representative, .. } => {
                        v = aig.latches()[representative].lit.variable();
                        continue;
                    }
                    LatchFate::Keep => {}
                }
            }
            if needed.insert(v) {
                stack.push(v);
            }
            return;
        }
    };
    if coi {
        if let Some(property) = aig.property_literal() {
            demand(property, &mut stack, &mut needed);
        }
        for &c in aig.constraints() {
            demand(c, &mut stack, &mut needed);
        }
    } else {
        for i in 0..aig.num_inputs() {
            demand(aig.input(i), &mut stack, &mut needed);
        }
        for latch in aig.latches() {
            demand(latch.lit, &mut stack, &mut needed);
        }
        for &lit in aig
            .outputs()
            .iter()
            .chain(aig.bad())
            .chain(aig.constraints())
        {
            demand(lit, &mut stack, &mut needed);
        }
    }
    while let Some(v) = stack.pop() {
        let lit = AigLit::positive(v);
        if let Some(gate) = aig.and_for(lit) {
            demand(gate.rhs0, &mut stack, &mut needed);
            demand(gate.rhs1, &mut stack, &mut needed);
        } else if let Some(idx) = aig.latch_index(lit) {
            demand(aig.latches()[idx].next, &mut stack, &mut needed);
        }
    }

    // ------------------------------------------------------------------
    // Rebuild. Inputs and latches first (their nodes have no operands), then
    // the gates in ascending variable order (operands always refer to earlier
    // variables), then the latch next-state functions.
    // ------------------------------------------------------------------
    let mut b = AigBuilder::new();
    let mut mapped: Vec<Option<AigLit>> = vec![None; aig.max_var() as usize + 1];
    mapped[0] = Some(AigLit::FALSE);
    let mut input_sources = Vec::with_capacity(aig.num_inputs());
    let mut new_input_count = 0usize;
    for i in 0..aig.num_inputs() {
        let var = aig.input(i).variable();
        if needed.contains(&var) {
            mapped[var as usize] = Some(b.input());
            input_sources.push(SignalSource::Kept {
                index: new_input_count,
                negated: false,
            });
            new_input_count += 1;
        } else {
            input_sources.push(SignalSource::Free);
        }
    }
    let mut new_latch_index: Vec<Option<usize>> = vec![None; aig.num_latches()];
    let mut new_latch_count = 0usize;
    for (i, latch) in aig.latches().iter().enumerate() {
        if fates[i] == LatchFate::Keep && needed.contains(&latch.lit.variable()) {
            mapped[latch.lit.variable() as usize] = Some(b.latch(latch.init));
            new_latch_index[i] = Some(new_latch_count);
            new_latch_count += 1;
        }
    }
    // Merged and stuck latches map through their fate; this must happen after
    // the kept latches exist so representatives resolve.
    for (i, latch) in aig.latches().iter().enumerate() {
        let var = latch.lit.variable() as usize;
        match fates[i] {
            LatchFate::Keep => {}
            LatchFate::Stuck(c) => {
                mapped[var] = Some(if c { AigLit::TRUE } else { AigLit::FALSE });
            }
            LatchFate::Merge {
                representative,
                negated,
            } => {
                mapped[var] = mapped[aig.latches()[representative].lit.variable() as usize]
                    .map(|l| l.negate_if(negated));
            }
        }
    }
    let map = |mapped: &[Option<AigLit>], lit: AigLit| -> AigLit {
        mapped[lit.variable() as usize]
            .expect("literal inside the demanded cone")
            .negate_if(lit.is_negated())
    };
    for gate in aig.ands() {
        if needed.contains(&gate.lhs.variable()) {
            let a = map(&mapped, gate.rhs0);
            let c = map(&mapped, gate.rhs1);
            mapped[gate.lhs.variable() as usize] = Some(b.and(a, c));
        }
    }
    for (i, latch) in aig.latches().iter().enumerate() {
        if new_latch_index[i].is_some() {
            let target = mapped[latch.lit.variable() as usize].expect("kept latch was created");
            b.set_latch_next(target, map(&mapped, latch.next));
        }
    }

    // ------------------------------------------------------------------
    // Properties. Under cone-of-influence pruning only the checked property
    // survives, re-attached in the slot kind the checkers read it from (a bad
    // literal when the original had any, the first output otherwise).
    // ------------------------------------------------------------------
    if coi {
        if let Some(property) = aig.property_literal() {
            let p = map(&mapped, property);
            if aig.num_bad() > 0 {
                b.add_bad(p);
            } else {
                b.add_output(p);
            }
        }
    } else {
        for &o in aig.outputs() {
            b.add_output(map(&mapped, o));
        }
        for &bad in aig.bad() {
            b.add_bad(map(&mapped, bad));
        }
    }
    for &c in aig.constraints() {
        let constraint = map(&mapped, c);
        // A constraint folded to `true` never restricts anything; one folded
        // to `false` must stay (it makes the circuit vacuously safe).
        if constraint != AigLit::TRUE {
            b.add_constraint(constraint);
        }
    }

    let latch_sources = (0..aig.num_latches())
        .map(|i| match fates[i] {
            LatchFate::Stuck(c) => SignalSource::Constant(c),
            LatchFate::Keep => match new_latch_index[i] {
                Some(index) => SignalSource::Kept {
                    index,
                    negated: false,
                },
                None => SignalSource::Free,
            },
            LatchFate::Merge {
                representative,
                negated,
            } => match new_latch_index[representative] {
                Some(index) => SignalSource::Kept { index, negated },
                None => SignalSource::Free,
            },
        })
        .collect();
    (
        b.build(),
        Reconstruction::new(
            input_sources,
            latch_sources,
            new_input_count,
            new_latch_count,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::Simulator;

    #[test]
    fn coi_drops_unrelated_logic_and_records_free_sources() {
        let mut b = AigBuilder::new();
        let relevant_in = b.input();
        let junk_in = b.input();
        let s = b.latch(Some(false));
        let junk = b.latch(Some(false));
        let next = b.and(relevant_in, !s);
        b.set_latch_next(s, next);
        b.set_latch_next(junk, junk_in);
        b.add_bad(s);
        let aig = b.build();
        let (out, recon) = rewrite(&aig, &[LatchFate::Keep, LatchFate::Keep], true);
        out.validate().expect("rewrite output is valid");
        assert_eq!(out.num_inputs(), 1);
        assert_eq!(out.num_latches(), 1);
        assert_eq!(
            recon.input_source(1),
            SignalSource::Free,
            "the junk input is outside the cone"
        );
        assert_eq!(recon.latch_source(1), SignalSource::Free);
        assert_eq!(
            recon.latch_source(0),
            SignalSource::Kept {
                index: 0,
                negated: false
            }
        );
    }

    #[test]
    fn stuck_fates_fold_into_constants() {
        // bad = s AND stuck; with stuck-at-false applied, bad folds to the
        // constant false and the whole circuit loses its state.
        let mut b = AigBuilder::new();
        let s = b.latch(Some(false));
        let stuck = b.latch(Some(false));
        b.set_latch_next(s, !s);
        b.set_latch_next(stuck, stuck);
        let bad = b.and(s, stuck);
        b.add_bad(bad);
        let aig = b.build();
        let (out, recon) = rewrite(&aig, &[LatchFate::Keep, LatchFate::Stuck(false)], true);
        assert_eq!(out.bad()[0], AigLit::FALSE);
        assert_eq!(recon.latch_source(1), SignalSource::Constant(false));
        // Demand is computed before folding, so the toggle latch survives this
        // round; a second round sees the constant property and drops it.
        assert_eq!(out.num_latches(), 1);
        let (out2, _) = rewrite(&out, &[LatchFate::Keep], true);
        assert_eq!(out2.num_latches(), 0);
    }

    #[test]
    fn merged_latches_redirect_demand_to_the_representative() {
        let mut b = AigBuilder::new();
        let a = b.latch(Some(false));
        let c = b.latch(Some(false));
        b.set_latch_next(a, !a);
        b.set_latch_next(c, !c);
        let bad = b.and(a, c);
        b.add_bad(bad);
        let aig = b.build();
        let fates = [
            LatchFate::Keep,
            LatchFate::Merge {
                representative: 0,
                negated: false,
            },
        ];
        let (out, recon) = rewrite(&aig, &fates, true);
        assert_eq!(out.num_latches(), 1);
        // bad = a AND a folds to a single literal.
        assert_eq!(out.num_ands(), 0);
        assert_eq!(
            recon.latch_source(1),
            SignalSource::Kept {
                index: 0,
                negated: false
            }
        );
        // Semantics: the toggle reaches bad at step 1 in both circuits.
        let mut sim = Simulator::new(&out);
        assert!(!sim.step(&[]).property_violated());
        assert!(sim.step(&[]).property_violated());
    }

    #[test]
    fn negated_merges_substitute_the_complement() {
        // a toggles from 0, c toggles from 1: c ≡ ¬a. bad = a AND c is then
        // a AND ¬a ≡ false, so the rewrite folds the property away entirely.
        let mut b = AigBuilder::new();
        let a = b.latch(Some(false));
        let c = b.latch(Some(true));
        b.set_latch_next(a, !a);
        b.set_latch_next(c, !c);
        let bad = b.and(a, c);
        b.add_bad(bad);
        let aig = b.build();
        let fates = [
            LatchFate::Keep,
            LatchFate::Merge {
                representative: 0,
                negated: true,
            },
        ];
        let (out, recon) = rewrite(&aig, &fates, true);
        out.validate().expect("rewrite output is valid");
        assert_eq!(out.bad()[0], AigLit::FALSE, "a AND ¬a folds to false");
        assert_eq!(
            recon.latch_source(1),
            SignalSource::Kept {
                index: 0,
                negated: true
            }
        );
    }

    #[test]
    fn without_coi_everything_survives() {
        let mut b = AigBuilder::new();
        let x = b.input();
        let s = b.latch(Some(false));
        let junk = b.latch(Some(true));
        b.set_latch_next(s, x);
        b.set_latch_next(junk, junk);
        b.add_bad(s);
        b.add_output(junk);
        b.add_constraint(!s);
        let aig = b.build();
        let (out, _) = rewrite(&aig, &[LatchFate::Keep, LatchFate::Keep], false);
        assert_eq!(out.num_inputs(), 1);
        assert_eq!(out.num_latches(), 2);
        assert_eq!(out.num_outputs(), 1);
        assert_eq!(out.num_bad(), 1);
        assert_eq!(out.num_constraints(), 1);
    }

    #[test]
    fn tautological_constraints_disappear() {
        let mut b = AigBuilder::new();
        let s = b.latch(Some(false));
        b.set_latch_next(s, !s);
        b.add_bad(s);
        b.add_constraint(AigLit::TRUE);
        let aig = b.build();
        let (out, _) = rewrite(&aig, &[LatchFate::Keep], true);
        assert_eq!(out.num_constraints(), 0);
    }

    #[test]
    fn property_kept_as_output_for_aiger_1_0_circuits() {
        let mut b = AigBuilder::new();
        let s = b.latch(Some(false));
        b.set_latch_next(s, !s);
        b.add_output(s);
        let aig = b.build();
        let (out, _) = rewrite(&aig, &[LatchFate::Keep], true);
        assert_eq!(out.num_bad(), 0);
        assert_eq!(out.num_outputs(), 1);
        assert!(out.property_literal().is_some());
    }
}
