//! AIG preprocessing for the PLIC3 model checkers.
//!
//! Real HWMCC-style circuits are dominated by redundant logic that IC3 then
//! pays for on every relative-induction query. This crate implements the
//! simplification pass every serious checker front-loads before encoding:
//!
//! * **structural hashing + constant folding** — the circuit is rebuilt
//!   through [`plic3_aig::AigBuilder`], merging syntactically identical AND
//!   gates and folding constants through gates,
//! * **constant sweeping** — latches proven stuck at a constant by ternary
//!   fixed-point simulation ([`ternary::stuck_latches`]) are replaced by that
//!   constant, which lets more folding happen downstream,
//! * **latch-equivalence merging** — latches proven pairwise equal *or
//!   complementary* in every reachable state (signed partition refinement
//!   with strashed next-state signatures) collapse onto one representative,
//!   with the phase recorded in the witness map,
//! * **cone-of-influence reduction** — inputs, latches and gates that do not
//!   transitively feed the checked property or an invariant constraint are
//!   dropped.
//!
//! The passes run as rounds of one combined rewrite until the circuit stops
//! changing. Crucially, every round records an invertible [`Reconstruction`],
//! so a counterexample found on the simplified circuit replays on the
//! **original** circuit ([`Preprocessed::replay_on_original`]) and an
//! inductive invariant of the simplified circuit certifies the original
//! property. `docs/PREPROCESSING.md` gives the per-pass soundness argument.
//!
//! # Example
//!
//! ```
//! use plic3_aig::AigBuilder;
//! use plic3_prep::preprocess;
//!
//! // Two identical toggles plus a stuck guard; preprocessing collapses the
//! // state to a single latch.
//! let mut b = AigBuilder::new();
//! let t1 = b.latch(Some(false));
//! let t2 = b.latch(Some(false));
//! let guard = b.latch(Some(true));
//! b.set_latch_next(t1, !t1);
//! b.set_latch_next(t2, !t2);
//! b.set_latch_next(guard, guard);
//! let both = b.and(t1, t2);
//! let bad = b.and(both, guard);
//! b.add_bad(bad);
//! let prep = preprocess(&b.build());
//! assert_eq!(prep.aig.num_latches(), 1);
//! assert_eq!(prep.stats.latches_before, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod equiv;
mod recon;
mod rewrite;
pub mod ternary;

pub use recon::{Reconstruction, SignalSource};

use plic3_aig::{Aig, Simulator};
use plic3_sat::{FaultKind, FaultPlan, FaultSite, ResourceBudget, StopFlag, INJECTED_PANIC};
use plic3_ts::{Trace, TransitionSystem};
use rewrite::LatchFate;
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of the preprocessing pipeline.
///
/// Structural hashing and constant folding are intrinsic to the rewrite
/// engine and always on; the analyses and the cone-of-influence pruning can
/// be toggled individually (mainly for ablations and debugging).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Preprocessor {
    /// Replace stuck-at latches (found by ternary simulation) with constants.
    pub constant_sweep: bool,
    /// Merge latches proven equivalent by partition refinement.
    pub merge_equivalent: bool,
    /// Drop logic outside the cone of influence of the property and the
    /// constraints (also drops secondary outputs/bad literals, which the
    /// checkers never read).
    pub coi: bool,
    /// Maximum number of rewrite rounds (each round re-runs the analyses on
    /// the previous round's output; the loop stops early at a fixpoint).
    pub max_rounds: usize,
}

impl Default for Preprocessor {
    fn default() -> Self {
        Preprocessor {
            constant_sweep: true,
            merge_equivalent: true,
            coi: true,
            max_rounds: 4,
        }
    }
}

/// Size and effect statistics of one preprocessing run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrepStats {
    /// Rewrite rounds executed.
    pub rounds: usize,
    /// Inputs before / after.
    pub inputs_before: usize,
    /// Inputs surviving preprocessing.
    pub inputs_after: usize,
    /// Latches before preprocessing.
    pub latches_before: usize,
    /// Latches surviving preprocessing.
    pub latches_after: usize,
    /// AND gates before preprocessing.
    pub ands_before: usize,
    /// AND gates surviving preprocessing.
    pub ands_after: usize,
    /// Latches replaced by constants (summed over rounds).
    pub stuck_latches: usize,
    /// Latches merged into an equivalent representative (summed over rounds).
    pub merged_latches: usize,
    /// Wall-clock time spent preprocessing.
    pub prep_time: Duration,
    /// `true` when the run was interrupted (stop flag raised or memory budget
    /// exhausted) before reaching a fixpoint; the returned circuit is the
    /// partial — but still sound — result of the completed rounds.
    pub cancelled: bool,
}

impl fmt::Display for PrepStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prep {} rounds, latches {}→{}, ands {}→{}, inputs {}→{}, {} stuck, {} merged, {:?}",
            self.rounds,
            self.latches_before,
            self.latches_after,
            self.ands_before,
            self.ands_after,
            self.inputs_before,
            self.inputs_after,
            self.stuck_latches,
            self.merged_latches,
            self.prep_time
        )
    }
}

/// The result of preprocessing: the simplified circuit, the witness map back
/// to the original, and run statistics.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// The simplified circuit. Encode this (not the original) into the
    /// transition system handed to the engines.
    pub aig: Aig,
    /// The witness map from executions of [`Preprocessed::aig`] back to
    /// executions of the original circuit.
    pub reconstruction: Reconstruction,
    /// Statistics of the run.
    pub stats: PrepStats,
    original: Aig,
}

impl Preprocessed {
    /// The original (un-preprocessed) circuit.
    pub fn original(&self) -> &Aig {
        &self.original
    }

    /// Maps a counterexample [`Trace`] found on the *simplified* circuit to an
    /// execution of the *original* circuit: the initial latch valuation and
    /// the per-step input vectors, both in the original circuit's ordering.
    /// Returns `None` for the empty trace.
    ///
    /// `ts` must be the transition system encoded from [`Preprocessed::aig`].
    ///
    /// # Panics
    ///
    /// Panics if `ts` was encoded from a circuit with different input/latch
    /// counts than [`Preprocessed::aig`].
    pub fn map_witness(
        &self,
        ts: &TransitionSystem,
        trace: &Trace,
    ) -> Option<(Vec<bool>, Vec<Vec<bool>>)> {
        assert_eq!(
            ts.aig_num_latches(),
            self.aig.num_latches(),
            "transition system does not belong to the preprocessed circuit"
        );
        assert_eq!(ts.aig_num_inputs(), self.aig.num_inputs());
        if trace.is_empty() {
            return None;
        }
        let simplified_init = trace.aig_initial_state(ts, &self.aig);
        let mut frames = trace.aig_input_vectors(ts);
        // The bad literal is observed when stepping *from* the final state
        // (mirrors `Trace::replay_on_aig`).
        if frames.len() < trace.states().len() {
            frames.push(vec![false; self.aig.num_inputs()]);
        }
        let initial = self
            .reconstruction
            .map_initial_state(&simplified_init, &self.original);
        let inputs = frames
            .iter()
            .map(|frame| self.reconstruction.map_input_frame(frame))
            .collect();
        Some((initial, inputs))
    }

    /// Replays a counterexample trace found on the simplified circuit on the
    /// **original** circuit and returns `true` if it reaches a bad state there
    /// (with all invariant constraints holding on the way).
    ///
    /// This is the end-to-end witness check used by the experiment harness
    /// before reporting `Unsafe` for a preprocessed run.
    pub fn replay_on_original(&self, ts: &TransitionSystem, trace: &Trace) -> bool {
        let Some((initial, inputs)) = self.map_witness(ts, trace) else {
            return false;
        };
        Simulator::from_state(&self.original, initial).run_reaches_bad(&inputs)
    }
}

impl Preprocessor {
    /// Runs the pipeline on `original`.
    ///
    /// # Panics
    ///
    /// Panics if `original` fails [`Aig::validate`].
    pub fn run(&self, original: &Aig) -> Preprocessed {
        self.run_under(
            original,
            &StopFlag::new(),
            &ResourceBudget::unlimited(),
            &FaultPlan::inert(),
        )
    }

    /// Runs the pipeline under external supervision: `stop` is checked
    /// between rewrite rounds, ternary-sweep iterations and
    /// equivalence-refinement passes; the circuits built along the way are
    /// charged against `budget`; `faults` injects chaos-test failures at
    /// round edges.
    ///
    /// On cancellation (or budget exhaustion) the pipeline returns the
    /// partial result of the rounds completed so far — each round is
    /// individually sound, so a half-done preprocessing is still a correct
    /// (just less simplified) circuit — with [`PrepStats::cancelled`] set. A
    /// run interrupted before the first round finishes returns the identity
    /// rewrite of the original circuit.
    ///
    /// # Panics
    ///
    /// Panics if `original` fails [`Aig::validate`], or when an injected
    /// fault of kind [`FaultKind::Panic`] fires (chaos testing only).
    pub fn run_under(
        &self,
        original: &Aig,
        stop: &StopFlag,
        budget: &ResourceBudget,
        faults: &FaultPlan,
    ) -> Preprocessed {
        let started = Instant::now();
        original
            .validate()
            .expect("cannot preprocess an invalid AIG");
        let mut stats = PrepStats {
            inputs_before: original.num_inputs(),
            latches_before: original.num_latches(),
            ands_before: original.num_ands(),
            ..PrepStats::default()
        };
        let mut current = original.clone();
        let mut charged = current.estimated_bytes();
        budget.charge(charged);
        let mut reconstruction =
            Reconstruction::identity(original.num_inputs(), original.num_latches());
        for _ in 0..self.max_rounds.max(1) {
            match faults.poll(FaultSite::PrepRound) {
                None => {}
                Some(FaultKind::Panic) => panic!("{INJECTED_PANIC} at PrepRound"),
                Some(FaultKind::MemOut) => budget.exhaust(),
                Some(FaultKind::Cancel) => stop.stop(),
            }
            if stop.is_stopped() || budget.is_exhausted() {
                stats.cancelled = true;
                break;
            }
            let fates = self.latch_fates(&current, &mut stats, stop);
            if stop.is_stopped() {
                // The analyses were interrupted and fell back to "change
                // nothing"; don't spend a rewrite on that.
                stats.cancelled = true;
                break;
            }
            let (next, step) = rewrite::rewrite(&current, &fates, self.coi);
            let changed = next != current;
            reconstruction = reconstruction.compose(&step);
            current = next;
            // Re-charge for the round's output; the rewrite builder's peak is
            // transient and bounded by the input size, so the steady-state
            // circuit is what the budget tracks.
            budget.uncharge(charged);
            charged = current.estimated_bytes();
            budget.charge(charged);
            stats.rounds += 1;
            if !changed {
                break;
            }
        }
        stats.inputs_after = current.num_inputs();
        stats.latches_after = current.num_latches();
        stats.ands_after = current.num_ands();
        stats.prep_time = started.elapsed();
        debug_assert!(current.validate().is_ok());
        Preprocessed {
            aig: current,
            reconstruction,
            stats,
            original: original.clone(),
        }
    }

    /// Decides the fate of every latch of `aig` for one round: stuck-at
    /// constants win, then equivalence merges, then plain keeps.
    fn latch_fates(&self, aig: &Aig, stats: &mut PrepStats, stop: &StopFlag) -> Vec<LatchFate> {
        let stuck = if self.constant_sweep {
            ternary::stuck_latches_with_stop(aig, stop)
        } else {
            vec![None; aig.num_latches()]
        };
        let reps: Vec<(usize, bool)> = if self.merge_equivalent {
            equiv::equivalent_latches(aig, &stuck, stop)
        } else {
            (0..aig.num_latches()).map(|i| (i, false)).collect()
        };
        (0..aig.num_latches())
            .map(|i| match stuck[i] {
                Some(c) => {
                    stats.stuck_latches += 1;
                    LatchFate::Stuck(c)
                }
                None if reps[i].0 != i => {
                    stats.merged_latches += 1;
                    LatchFate::Merge {
                        representative: reps[i].0,
                        negated: reps[i].1,
                    }
                }
                None => LatchFate::Keep,
            })
            .collect()
    }
}

/// Runs the default preprocessing pipeline on `aig`.
///
/// # Panics
///
/// Panics if `aig` fails [`Aig::validate`].
pub fn preprocess(aig: &Aig) -> Preprocessed {
    Preprocessor::default().run(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;
    use plic3_logic::{Cube, Lit};

    /// An unsafe circuit with every kind of redundancy: a counting core, a
    /// duplicate copy of it, a stuck guard, and junk outside the cone.
    fn redundant_counter() -> Aig {
        let mut b = AigBuilder::new();
        let enable = b.input();
        let junk_in = b.input();
        let mut copies = Vec::new();
        for _ in 0..2 {
            let bits = b.latches(2, Some(false));
            let inc = b.vec_increment(&bits);
            for (s, n) in bits.iter().zip(&inc) {
                let nxt = b.ite(enable, *n, *s);
                b.set_latch_next(*s, nxt);
            }
            copies.push(bits);
        }
        let guard = b.latch(Some(true));
        b.set_latch_next(guard, guard);
        let junk = b.latch(Some(false));
        b.set_latch_next(junk, junk_in);
        let at3_a = b.vec_equals_const(&copies[0], 3);
        let at3_b = b.vec_equals_const(&copies[1], 3);
        let either = b.or(at3_a, at3_b);
        let bad = b.and(either, guard);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn pipeline_collapses_all_redundancy() {
        let aig = redundant_counter();
        let prep = preprocess(&aig);
        prep.aig.validate().expect("preprocessed AIG is valid");
        assert_eq!(prep.aig.num_latches(), 2, "one 2-bit counter remains");
        assert_eq!(prep.aig.num_inputs(), 1, "the junk input is dropped");
        assert!(prep.stats.stuck_latches >= 1);
        assert!(prep.stats.merged_latches >= 2);
        assert_eq!(prep.stats.latches_before, 6);
        assert_eq!(prep.stats.latches_after, 2);
        assert!(prep.stats.rounds >= 2);
        assert_eq!(prep.original(), &aig);
        let rendered = prep.stats.to_string();
        assert!(rendered.contains("latches 6→2"), "got: {rendered}");
    }

    #[test]
    fn witness_maps_back_to_the_original_circuit() {
        let aig = redundant_counter();
        let prep = preprocess(&aig);
        let ts = TransitionSystem::from_aig(&prep.aig);
        assert_eq!(ts.num_latches(), 2);
        // Drive the simplified counter 00 → 01 → 10 → 11 with enable high.
        let trace = Trace::from_bits(
            &ts,
            &[
                &[false, false],
                &[true, false],
                &[false, true],
                &[true, true],
            ],
            &[&[true], &[true], &[true]],
        );
        assert!(
            trace.replay_on_aig(&ts, &prep.aig),
            "trace is valid on the simplified circuit"
        );
        let (initial, inputs) = prep.map_witness(&ts, &trace).expect("non-empty trace");
        assert_eq!(initial.len(), aig.num_latches());
        assert_eq!(inputs[0].len(), aig.num_inputs());
        assert!(prep.replay_on_original(&ts, &trace));
        // The empty trace maps to nothing.
        assert!(!prep.replay_on_original(&ts, &Trace::default()));
    }

    #[test]
    fn complemented_shadow_register_merges_and_round_trips() {
        // A 2-bit free-running counter plus a shadow register `c` that always
        // holds ¬b0 (complemented reset, complemented next-state function).
        // bad = b1 ∧ b0 ∧ ¬c ≡ counter == 3. The signed merge collapses `c`
        // into ¬b0; the witness found on the 2-latch circuit must replay on
        // the original 3-latch one, with `c` reconstructed through the
        // negated source.
        let mut b = AigBuilder::new();
        let b0 = b.latch(Some(false));
        let b1 = b.latch(Some(false));
        let c = b.latch(Some(true));
        let b1_next = b.xor(b1, b0);
        b.set_latch_next(b0, !b0);
        b.set_latch_next(b1, b1_next);
        b.set_latch_next(c, b0);
        let hi = b.and(b1, b0);
        let bad = b.and(hi, !c);
        b.add_bad(bad);
        let aig = b.build();
        let prep = preprocess(&aig);
        assert_eq!(prep.aig.num_latches(), 2, "the shadow register is merged");
        assert!(prep.stats.merged_latches >= 1);
        let negated_sources = (0..aig.num_latches())
            .filter(|&i| {
                matches!(
                    prep.reconstruction.latch_source(i),
                    SignalSource::Kept { negated: true, .. }
                )
            })
            .count();
        assert_eq!(negated_sources, 1, "exactly the shadow is complemented");
        // Drive the simplified counter 00 → 01 → 10 → 11 (free-running).
        let ts = TransitionSystem::from_aig(&prep.aig);
        let trace = Trace::from_bits(
            &ts,
            &[
                &[false, false],
                &[true, false],
                &[false, true],
                &[true, true],
            ],
            &[&[], &[], &[]],
        );
        assert!(trace.replay_on_aig(&ts, &prep.aig));
        let (initial, _) = prep.map_witness(&ts, &trace).expect("non-empty trace");
        assert_eq!(initial, vec![false, false, true], "c reconstructs to ¬b0");
        assert!(
            prep.replay_on_original(&ts, &trace),
            "round trip: the witness replays on the original circuit"
        );
    }

    #[test]
    fn disabled_passes_are_really_disabled() {
        let aig = redundant_counter();
        let off = Preprocessor {
            constant_sweep: false,
            merge_equivalent: false,
            coi: false,
            max_rounds: 4,
        };
        let prep = off.run(&aig);
        assert_eq!(prep.stats.stuck_latches, 0);
        assert_eq!(prep.stats.merged_latches, 0);
        assert_eq!(prep.aig.num_latches(), aig.num_latches());
        assert_eq!(prep.aig.num_inputs(), aig.num_inputs());
    }

    #[test]
    fn trivially_constant_properties_survive_the_pipeline() {
        // Property stuck at false → trivially safe circuit.
        let mut b = AigBuilder::new();
        let guard = b.latch(Some(false));
        b.set_latch_next(guard, guard);
        let toggle = b.latch(Some(false));
        b.set_latch_next(toggle, !toggle);
        let bad = b.and(guard, toggle);
        b.add_bad(bad);
        let prep = preprocess(&b.build());
        assert_eq!(prep.aig.num_latches(), 0);
        assert_eq!(prep.aig.bad()[0], plic3_aig::AigLit::FALSE);
    }

    #[test]
    fn circuits_without_a_property_do_not_panic() {
        let mut b = AigBuilder::new();
        let l = b.latch(Some(false));
        b.set_latch_next(l, l);
        let prep = preprocess(&b.build());
        assert_eq!(prep.aig.num_latches(), 0);
        assert!(prep.aig.property_literal().is_none());
    }

    #[test]
    fn single_state_trace_on_an_initially_bad_circuit_maps_back() {
        // Original: bad = guard (stuck at 1) AND latch (init 1). The
        // preprocessed circuit is bad at reset; a 0-step trace must replay.
        let mut b = AigBuilder::new();
        let guard = b.latch(Some(true));
        b.set_latch_next(guard, guard);
        let l = b.latch(Some(true));
        b.set_latch_next(l, !l);
        let bad = b.and(guard, l);
        b.add_bad(bad);
        let aig = b.build();
        let prep = preprocess(&aig);
        let ts = TransitionSystem::from_aig(&prep.aig);
        let state: Cube = ts.latch_vars().map(Lit::pos).collect();
        let trace = Trace::single_state(state);
        assert!(prep.replay_on_original(&ts, &trace));
    }
}
