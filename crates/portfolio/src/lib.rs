//! An **in-process portfolio engine**: several model-checking strategies race
//! on the *same* instance, the first conclusive verdict wins and cancels the
//! rest, and the IC3 workers exchange pushed lemmas along the way.
//!
//! The default portfolio ([`default_workers`]) races six workers:
//!
//! * **BMC** — unbeatable on shallow counterexamples, useless for proofs,
//! * **k-induction** — instant on k-inductive properties, incomplete
//!   otherwise,
//! * **four IC3 variants** — CTG generalization with the paper's CTP lemma
//!   prediction off and on, plain MIC with prediction, and a seeded
//!   pseudo-random drop order (see
//!   [`plic3::LiteralOrdering::Seeded`]).
//!
//! Cancellation goes through one shared [`StopFlag`]: the winner raises it,
//! losing workers observe it inside their SAT queries and return promptly. An
//! external owner (e.g. the experiment harness watchdog) can raise the same
//! flag to cancel the whole race.
//!
//! **Lemma sharing is sound by construction**: IC3 workers publish pushed
//! lemmas into bounded per-receiver inboxes, and a receiver re-proves every
//! foreign lemma against its *own* frames (initiation + consecution) before
//! adopting it — see [`plic3::Ic3::set_lemma_source`]. A buggy or adversarial
//! sender can cost a receiver one SAT query per candidate, but can never make
//! it unsound; the poisoned-lemma tests pin this down.
//!
//! **Determinism contract**: the *winner* (and therefore the wall-clock) is a
//! race and varies run to run, but every worker is individually sound, so the
//! *verdict* is determined by the instance alone. Tests must pin verdicts,
//! never winners. Proofs are re-checked independently:
//! [`verify_safety_proof`] validates both certificate- and k-induction-backed
//! `Safe` answers, and `Unsafe` traces replay on the original circuit.
//!
//! # Example
//!
//! ```
//! use plic3_aig::AigBuilder;
//! use plic3_portfolio::{Portfolio, PortfolioConfig, PortfolioResult};
//!
//! // An unsafe 3-bit counter: some worker (usually BMC) finds the bug.
//! let mut b = AigBuilder::new();
//! let state = b.latches(3, Some(false));
//! let inc = b.vec_increment(&state);
//! for (s, n) in state.iter().zip(&inc) {
//!     b.set_latch_next(*s, *n);
//! }
//! let bad = b.vec_equals_const(&state, 6);
//! b.add_bad(bad);
//!
//! let mut portfolio = Portfolio::from_aig(&b.build(), PortfolioConfig::default());
//! let outcome = portfolio.check();
//! assert!(matches!(outcome.result, PortfolioResult::Unsafe(_)));
//! let trace = outcome.result.trace().expect("counterexample");
//! assert!(trace.len() >= 6, "needs six steps to reach 6");
//! assert!(outcome.winner_label().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exchange;
mod worker;

pub use exchange::ExchangeStats;
pub use worker::{
    default_workers, FallbackBounds, SafetyProof, Strategy, WorkerOutcome, WorkerReport,
    WorkerSpec, WorkerStatus,
};

use plic3::{Certificate, Limits, UnknownReason};
use plic3_aig::Aig;
use plic3_bmc::KInduction;
use plic3_sat::{FaultPlan, ResourceBudget, StopFlag};
use plic3_ts::{Trace, TransitionSystem};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Configuration of a [`Portfolio`] run.
#[derive(Clone, Debug)]
pub struct PortfolioConfig {
    /// Maximum number of worker threads running at once; `0` means one thread
    /// per worker, capped at the machine's available parallelism (but at
    /// least 2) — oversubscribing a small machine only makes every worker
    /// slower. With fewer threads than workers, the remaining strategies
    /// start as earlier ones finish inconclusively (a thread budget of 1
    /// degrades to a sequential fallback chain), with the incomplete
    /// strategies bounded by [`PortfolioConfig::fallback_bounds`].
    pub threads: usize,
    /// Exchange pushed lemmas between the IC3 workers (on by default).
    pub share_lemmas: bool,
    /// Bound of each worker's foreign-lemma inbox; deliveries to a full inbox
    /// are dropped, never blocked on.
    pub inbox_capacity: usize,
    /// Resource budgets handed to every worker. The wall-clock budget is
    /// enforced by the portfolio itself: when `limits.max_time` is set, an
    /// internal timer raises the shared stop flag at the deadline, so even
    /// the incomplete workers (BMC, k-induction — which have no in-engine
    /// clock) wind down on time without an external watchdog.
    pub limits: Limits,
    /// Shared cancellation flag: raised by the winner to cancel the losers,
    /// and by external owners (e.g. a watchdog) to cancel the whole race.
    pub stop: StopFlag,
    /// Seed of the diversified (seeded-drop-order) IC3 variant.
    pub seed: u64,
    /// Depth bounds for the incomplete strategies, applied whenever the
    /// thread budget is smaller than the worker count (so a never-terminating
    /// BMC run cannot starve the complete IC3 workers queued behind it).
    pub fallback_bounds: FallbackBounds,
    /// Memory budget of the whole race; [`Portfolio::check`] splits it into
    /// one equal, independent sub-budget per worker slot, so one strategy's
    /// blow-up cannot eat the others' headroom. A worker whose sub-budget
    /// trips unwinds to [`UnknownReason::MemoryOut`]; the race continues on
    /// the remaining workers.
    pub budget: ResourceBudget,
    /// Deterministic fault-injection schedule handed to every worker (inert
    /// unless the `fault-injection` feature is enabled *and* the plan is
    /// seeded). The plan's fire-once bookkeeping is shared, so a fault
    /// consumed by a worker's first run cannot re-fire in its supervised
    /// retry.
    pub faults: FaultPlan,
    /// Vet every worker's `Safe` claim with [`vet_safety_outcome`] *before*
    /// it may claim the race: the winning proof is independently re-checked
    /// ([`verify_safety_proof`]), and a proof that fails is demoted to a
    /// worker crash — so a poisoned certificate costs the race one worker's
    /// coverage, but can never become its verdict. Off by default (the
    /// harness re-checks winners externally instead).
    pub certify: bool,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            threads: 0,
            share_lemmas: true,
            inbox_capacity: 4096,
            limits: Limits::default(),
            stop: StopFlag::new(),
            seed: 0x5eed_1e44a,
            fallback_bounds: FallbackBounds::default(),
            budget: ResourceBudget::unlimited(),
            faults: FaultPlan::inert(),
            certify: false,
        }
    }
}

/// The verdict of a portfolio race.
#[derive(Clone, Debug, PartialEq)]
pub enum PortfolioResult {
    /// The property holds, backed by the winning worker's proof.
    Safe(SafetyProof),
    /// The property is violated; the trace is the winning counterexample.
    Unsafe(Trace),
    /// No worker reached a verdict (cancelled or out of budget).
    Unknown(UnknownReason),
}

impl PortfolioResult {
    /// Returns `true` for [`PortfolioResult::Safe`].
    pub fn is_safe(&self) -> bool {
        matches!(self, PortfolioResult::Safe(_))
    }

    /// Returns `true` for [`PortfolioResult::Unsafe`].
    pub fn is_unsafe(&self) -> bool {
        matches!(self, PortfolioResult::Unsafe(_))
    }

    /// Returns `true` for [`PortfolioResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, PortfolioResult::Unknown(_))
    }

    /// The counterexample trace, if the result is unsafe.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            PortfolioResult::Unsafe(trace) => Some(trace),
            _ => None,
        }
    }

    /// The invariant certificate, if the result is safe *and* the winning
    /// proof is certificate-backed (IC3 winners; k-induction winners carry a
    /// [`SafetyProof::KInductive`] proof instead).
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            PortfolioResult::Safe(SafetyProof::Invariant(cert)) => Some(cert),
            _ => None,
        }
    }
}

/// Everything a portfolio race produced: the verdict, the winner, per-worker
/// reports, and the lemma-exchange traffic.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The race verdict (the winner's, or `Unknown` when nobody won).
    pub result: PortfolioResult,
    /// Index (into [`PortfolioOutcome::workers`]) of the winning worker.
    pub winner: Option<usize>,
    /// One report per configured worker, in configuration order.
    pub workers: Vec<WorkerReport>,
    /// Lemma-exchange traffic counters.
    pub exchange: ExchangeStats,
    /// Wall-clock time of the whole race.
    pub runtime: Duration,
}

impl PortfolioOutcome {
    /// The winning worker's label.
    pub fn winner_label(&self) -> Option<&str> {
        self.winner.map(|w| self.workers[w].label.as_str())
    }

    /// Total foreign lemmas adopted across all IC3 workers (each one
    /// re-proved locally before adoption).
    pub fn lemmas_imported(&self) -> u64 {
        self.worker_stat(|s| s.lemmas_imported)
    }

    /// Total pushed lemmas exported across all IC3 workers.
    pub fn lemmas_exported(&self) -> u64 {
        self.worker_stat(|s| s.lemmas_exported)
    }

    /// Total foreign lemmas rejected by the local re-checks.
    pub fn lemmas_rejected(&self) -> u64 {
        self.worker_stat(|s| s.lemmas_import_rejected)
    }

    /// Number of worker slots that panicked at least once (including slots
    /// whose supervised retry then finished cleanly).
    pub fn worker_crashes(&self) -> usize {
        self.workers.iter().filter(|w| w.crash.is_some()).count()
    }

    /// Number of worker slots the supervisor restarted after a first panic.
    pub fn worker_restarts(&self) -> usize {
        self.workers.iter().filter(|w| w.restarted).count()
    }

    fn worker_stat(&self, pick: impl Fn(&plic3::Statistics) -> u64) -> u64 {
        self.workers
            .iter()
            .filter_map(|w| w.stats.as_ref())
            .map(pick)
            .sum()
    }
}

/// Independently re-checks the proof behind a portfolio `Safe` verdict.
///
/// Certificate proofs go through [`plic3::verify_certificate`]; k-induction
/// proofs are re-established by a **fresh** [`KInduction`] engine run to the
/// claimed depth (sound because the claim `Safe { k }` is fully re-derived,
/// nothing from the original run is reused).
///
/// # Example
///
/// ```
/// use plic3_aig::AigBuilder;
/// use plic3_portfolio::{verify_safety_proof, Portfolio, PortfolioConfig, PortfolioResult};
/// use plic3_ts::TransitionSystem;
///
/// // A 4-cell one-hot token ring is safe; whoever wins, the proof re-checks.
/// let mut b = AigBuilder::new();
/// let cells: Vec<_> = (0..4).map(|i| b.latch(Some(i == 0))).collect();
/// for i in 0..4 {
///     b.set_latch_next(cells[i], cells[(i + 3) % 4]);
/// }
/// let mut clashes = Vec::new();
/// for i in 0..4 {
///     let clash = b.and(cells[i], cells[(i + 1) % 4]);
///     clashes.push(clash);
/// }
/// let bad = b.or_many(&clashes);
/// b.add_bad(bad);
/// let aig = b.build();
///
/// let mut portfolio = Portfolio::from_aig(&aig, PortfolioConfig::default());
/// let outcome = portfolio.check();
/// let PortfolioResult::Safe(proof) = &outcome.result else {
///     panic!("the ring is safe");
/// };
/// let ts = TransitionSystem::from_aig(&aig);
/// verify_safety_proof(&ts, proof).expect("independently re-checked");
/// ```
pub fn verify_safety_proof(ts: &TransitionSystem, proof: &SafetyProof) -> Result<(), String> {
    match proof {
        SafetyProof::Invariant(cert) => plic3::verify_certificate(ts, cert),
        SafetyProof::KInductive { k } => {
            let mut kind = KInduction::new(ts);
            if kind.check(*k).is_safe() {
                Ok(())
            } else {
                Err(format!("the property is not {k}-inductive"))
            }
        }
    }
}

/// Vets a worker outcome before it may claim a portfolio race.
///
/// `Safe` outcomes are re-checked with [`verify_safety_proof`]; a proof that
/// fails the re-check is demoted to [`WorkerOutcome::Crashed`] with a
/// `"proof rejected: …"` payload, so a poisoned certificate reads exactly
/// like a worker crash — it costs the race one worker's coverage, but it can
/// never flip the verdict. All other outcomes pass through unchanged.
///
/// This is the vetting gate [`PortfolioConfig::certify`] installs at
/// winner-claim time; it is public so test harnesses can feed it adversarial
/// proofs directly.
///
/// # Example
///
/// ```
/// use plic3_portfolio::{vet_safety_outcome, SafetyProof, WorkerOutcome};
/// use plic3_aig::AigBuilder;
/// use plic3_ts::TransitionSystem;
///
/// // A self-looping bad latch initialised true is NOT safe; a forged
/// // "0-inductive" claim must not survive vetting.
/// let mut b = AigBuilder::new();
/// let s = b.latch(Some(true));
/// b.set_latch_next(s, s);
/// b.add_bad(s);
/// let ts = TransitionSystem::from_aig(&b.build());
///
/// let forged = WorkerOutcome::Safe(SafetyProof::KInductive { k: 1 });
/// let vetted = vet_safety_outcome(&ts, forged);
/// assert!(matches!(vetted, WorkerOutcome::Crashed { .. }));
/// ```
pub fn vet_safety_outcome(ts: &TransitionSystem, outcome: WorkerOutcome) -> WorkerOutcome {
    match outcome {
        WorkerOutcome::Safe(proof) => match verify_safety_proof(ts, &proof) {
            Ok(()) => WorkerOutcome::Safe(proof),
            Err(why) => WorkerOutcome::Crashed {
                payload: format!("proof rejected: {why}"),
            },
        },
        other => other,
    }
}

/// The in-process portfolio engine. See the [crate docs](crate) for the
/// design and the determinism contract.
pub struct Portfolio {
    ts: TransitionSystem,
    config: PortfolioConfig,
    workers: Vec<WorkerSpec>,
}

impl Portfolio {
    /// Creates a portfolio over `ts` with the [`default_workers`] set.
    pub fn new(ts: TransitionSystem, config: PortfolioConfig) -> Self {
        let workers = default_workers(config.seed);
        Portfolio {
            ts,
            config,
            workers,
        }
    }

    /// Encodes `aig` and creates a portfolio for it.
    pub fn from_aig(aig: &Aig, config: PortfolioConfig) -> Self {
        Portfolio::new(TransitionSystem::from_aig(aig), config)
    }

    /// Replaces the worker set (labels should stay unique).
    pub fn with_workers(mut self, workers: Vec<WorkerSpec>) -> Self {
        assert!(!workers.is_empty(), "a portfolio needs at least one worker");
        self.workers = workers;
        self
    }

    /// The configured workers, in the order their reports come back.
    pub fn workers(&self) -> &[WorkerSpec] {
        &self.workers
    }

    /// The transition system being checked.
    pub fn ts(&self) -> &TransitionSystem {
        &self.ts
    }

    /// Races the workers and returns the first conclusive verdict.
    ///
    /// The shared stop flag is raised when a winner emerges, so losing
    /// workers return promptly; the same flag doubles as the external
    /// cancellation point. Workers that never got a thread before the race
    /// ended report [`WorkerStatus::NotRun`].
    pub fn check(&mut self) -> PortfolioOutcome {
        let started = Instant::now();
        let stop = self.config.stop.clone();
        let n = self.workers.len();
        let threads = match self.config.threads {
            0 => {
                let cores = thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1);
                n.min(cores.max(2))
            }
            t => t.min(n),
        }
        .max(1);
        // With fewer threads than workers the race degrades to a (partially)
        // sequential chain; bound the incomplete engines so the chain always
        // reaches a complete one.
        let bounds = (threads < n).then_some(self.config.fallback_bounds);

        // Lemma exchange spans the IC3 workers only (and only when there are
        // at least two of them to talk to each other).
        let sharers: Vec<usize> = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.shares_lemmas())
            .map(|(i, _)| i)
            .collect();
        let hub = (self.config.share_lemmas && sharers.len() >= 2)
            .then(|| exchange::Hub::new(sharers.len(), self.config.inbox_capacity));
        let slot_of = |worker: usize| sharers.iter().position(|&i| i == worker);

        let reports: Vec<Mutex<WorkerReport>> = self
            .workers
            .iter()
            .map(|w| {
                Mutex::new(WorkerReport {
                    label: w.label.clone(),
                    status: WorkerStatus::NotRun,
                    runtime: Duration::ZERO,
                    stats: None,
                    crash: None,
                    restarted: false,
                })
            })
            .collect();
        let winner: Mutex<Option<(usize, WorkerOutcome)>> = Mutex::new(None);
        let next = AtomicUsize::new(0);
        // One independent memory sub-budget per worker slot; a supervised
        // retry reuses its slot's (partially spent) budget.
        let budgets = self.config.budget.split(n);

        thread::scope(|scope| {
            // Wall-clock enforcement: without this, a BMC or k-induction
            // worker that can never conclude would outlive every timed-out
            // IC3 worker and block the scope join forever. The timer polls in
            // small steps so it also exits promptly once a winner (or an
            // external owner) raises the flag.
            if let Some(budget) = self.config.limits.max_time {
                let stop = stop.clone();
                scope.spawn(move || {
                    let deadline = Instant::now() + budget;
                    while !stop.is_stopped() {
                        let now = Instant::now();
                        if now >= deadline {
                            stop.stop();
                            return;
                        }
                        thread::sleep((deadline - now).min(Duration::from_millis(10)));
                    }
                });
            }
            let certify = self.config.certify;
            for _ in 0..threads {
                let stop = stop.clone();
                let hub = hub.clone();
                let slot_of = &slot_of;
                let ts = &self.ts;
                let workers = &self.workers;
                let limits = &self.config.limits;
                let reports = &reports;
                let winner = &winner;
                let next = &next;
                let budgets = &budgets;
                let faults = &self.config.faults;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        return;
                    }
                    // The race may already be over (or externally cancelled)
                    // before this strategy ever got a thread: leave it NotRun
                    // instead of spinning up an engine that instantly aborts.
                    if stop.is_stopped() {
                        return;
                    }
                    let exchange = hub
                        .as_ref()
                        .and_then(|hub| slot_of(index).map(|slot| (hub.clone(), slot)));
                    let worker_started = Instant::now();
                    // Fault containment: the worker body runs under
                    // `catch_unwind`, so a panic in one strategy is an
                    // isolated crash of that slot, never of the race. The
                    // supervisor restarts the slot once under the
                    // conservative fallback spec (classic SAT search, no
                    // lemma exchange); a second panic retires the slot as
                    // `Crashed`. Crashes produce no outcome, so they can
                    // cost coverage but never flip the verdict.
                    let attempt = |spec: &worker::WorkerSpec,
                                   exchange: Option<(
                        std::sync::Arc<exchange::Hub>,
                        usize,
                    )>| {
                        catch_unwind(AssertUnwindSafe(|| {
                            worker::run_worker(
                                ts,
                                spec,
                                limits,
                                bounds,
                                stop.clone(),
                                budgets[index].clone(),
                                faults.clone(),
                                exchange,
                            )
                        }))
                    };
                    let (outcome, stats) = match attempt(&workers[index], exchange) {
                        Ok(done) => done,
                        Err(payload) => {
                            let first_crash = panic_message(payload);
                            {
                                let mut report = lock(&reports[index]);
                                report.crash = Some(first_crash.clone());
                            }
                            // Don't bother reviving a slot whose race is
                            // already over (or externally cancelled).
                            if stop.is_stopped() {
                                (
                                    WorkerOutcome::Crashed {
                                        payload: first_crash,
                                    },
                                    None,
                                )
                            } else {
                                lock(&reports[index]).restarted = true;
                                let fallback = worker::fallback_spec(&workers[index]);
                                match attempt(&fallback, None) {
                                    Ok(done) => done,
                                    Err(payload) => {
                                        let second_crash = panic_message(payload);
                                        lock(&reports[index]).crash = Some(second_crash.clone());
                                        (
                                            WorkerOutcome::Crashed {
                                                payload: second_crash,
                                            },
                                            None,
                                        )
                                    }
                                }
                            }
                        }
                    };
                    // Certificate vetting: with `certify` on, a `Safe` claim
                    // must survive an independent proof re-check before it
                    // may touch the winner slot; a rejected proof is recorded
                    // as a crash of this slot and never decides the race.
                    let outcome = if certify {
                        let vetted = vet_safety_outcome(ts, outcome);
                        if let WorkerOutcome::Crashed { payload } = &vetted {
                            lock(&reports[index]).crash = Some(payload.clone());
                        }
                        vetted
                    } else {
                        outcome
                    };
                    {
                        let mut report = lock(&reports[index]);
                        report.status = outcome.status();
                        report.runtime = worker_started.elapsed();
                        report.stats = stats;
                    }
                    if outcome.is_conclusive() {
                        let mut slot = lock(winner);
                        if slot.is_none() {
                            *slot = Some((index, outcome));
                            // Cancel everyone else.
                            stop.stop();
                        }
                    }
                });
            }
        });

        let workers: Vec<WorkerReport> = reports
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
            .collect();
        let (winner_index, result) = match winner.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some((index, WorkerOutcome::Safe(proof))) => {
                (Some(index), PortfolioResult::Safe(proof))
            }
            Some((index, WorkerOutcome::Unsafe(trace))) => {
                (Some(index), PortfolioResult::Unsafe(trace))
            }
            // A winner is only recorded for conclusive outcomes.
            Some(_) => unreachable!("inconclusive outcomes never claim the race"),
            None => {
                let mut reason = unknown_reason(&workers);
                // Workers cancelled by the internal wall-clock timer report
                // a bare cancellation; attribute it to the budget.
                if reason == UnknownReason::Cancelled {
                    if let Some(budget) = self.config.limits.max_time {
                        if started.elapsed() >= budget {
                            reason = UnknownReason::Timeout;
                        }
                    }
                }
                (None, PortfolioResult::Unknown(reason))
            }
        };
        PortfolioOutcome {
            result,
            winner: winner_index,
            workers,
            exchange: hub.as_ref().map(|h| h.stats()).unwrap_or_default(),
            runtime: started.elapsed(),
        }
    }
}

/// The reason to report when nobody won: the most informative one any worker
/// hit (budget exhaustion — conflicts or memory — beats a bare cancellation).
/// Crashed workers carry no reason and are skipped; when *every* worker
/// crashed the race reports a bare cancellation and the per-worker reports
/// tell the real story.
fn unknown_reason(workers: &[WorkerReport]) -> UnknownReason {
    let mut best = UnknownReason::Cancelled;
    for report in workers {
        if let WorkerStatus::Unknown(reason) = report.status {
            best = match (best, reason) {
                (UnknownReason::Cancelled, other) => other,
                (current, UnknownReason::Cancelled) => current,
                (UnknownReason::Timeout, _) | (_, UnknownReason::Timeout) => UnknownReason::Timeout,
                (current, _) => current,
            };
        }
    }
    best
}

/// Locks a mutex, tolerating poison: a poisoned report or winner lock means
/// some thread panicked *while holding it*, but the data underneath (plain
/// status/counter fields) is never left half-written in a way the race could
/// misread, so the supervisor keeps going instead of amplifying one crash
/// into a portfolio-wide abort.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Renders a caught panic payload as text (the standard payloads are `&str`
/// and `String`; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_aig::AigBuilder;

    fn token_ring(n: usize) -> Aig {
        let mut b = AigBuilder::new();
        let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
        for i in 0..n {
            b.set_latch_next(cells[i], cells[(i + n - 1) % n]);
        }
        let mut bads = Vec::new();
        for i in 0..n {
            let pair = b.and(cells[i], cells[(i + 1) % n]);
            bads.push(pair);
        }
        let bad = b.or_many(&bads);
        b.add_bad(bad);
        b.build()
    }

    /// Safe, but *not* k-inductive for any k: the reachable states are the
    /// counter values 0..=5 (wrapping to 0), while the unreachable values
    /// 8..=14 form a cycle with an input-controlled exit into the bad state
    /// 15 — so arbitrarily long all-good paths into the bad state exist and
    /// the k-induction step case never closes. BMC can never refute it
    /// either; only IC3 concludes.
    fn trap_cycle() -> Aig {
        let mut b = AigBuilder::new();
        let x = b.input();
        let zero = b.constant_false();
        let one = b.constant_true();
        let state = b.latches(4, Some(false));
        let inc = b.vec_increment(&state);
        let is5 = b.vec_equals_const(&state, 5);
        let is14 = b.vec_equals_const(&state, 14);
        let is15 = b.vec_equals_const(&state, 15);
        for i in 0..4 {
            let bit8 = if i == 3 { one } else { zero };
            let exit = b.ite(x, one, bit8); // 14 → 15 when x, else back to 8
            let after5 = b.ite(is5, zero, inc[i]); // 5 → 0
            let after14 = b.ite(is14, exit, after5);
            let next = b.ite(is15, one, after14); // 15 is absorbing
            b.set_latch_next(state[i], next);
        }
        b.add_bad(is15);
        b.build()
    }

    fn free_counter(bits: usize, bad_at: u64) -> Aig {
        let mut b = AigBuilder::new();
        let state = b.latches(bits, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, bad_at);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn safe_instance_wins_with_a_verifiable_proof() {
        let aig = token_ring(5);
        let mut portfolio = Portfolio::from_aig(&aig, PortfolioConfig::default());
        let outcome = portfolio.check();
        let PortfolioResult::Safe(proof) = &outcome.result else {
            panic!("ring is safe, got {:?}", outcome.result);
        };
        verify_safety_proof(portfolio.ts(), proof).expect("proof re-checks");
        let winner = outcome.winner.expect("someone won");
        assert_eq!(outcome.workers[winner].status, WorkerStatus::Safe);
        assert!(outcome.winner_label().is_some());
    }

    #[test]
    fn unsafe_instance_yields_a_replayable_trace() {
        let aig = free_counter(3, 6);
        let mut portfolio = Portfolio::from_aig(&aig, PortfolioConfig::default());
        let outcome = portfolio.check();
        let trace = outcome.result.trace().expect("counter reaches 6");
        let ts = TransitionSystem::from_aig(&aig);
        assert!(trace.replay_on_aig(&ts, &aig), "winning trace replays");
    }

    #[test]
    fn thread_budget_of_one_degrades_to_a_fallback_chain() {
        let aig = free_counter(2, 3);
        let config = PortfolioConfig {
            threads: 1,
            ..PortfolioConfig::default()
        };
        let mut portfolio = Portfolio::from_aig(&aig, config);
        let outcome = portfolio.check();
        assert!(outcome.result.is_unsafe());
        // With one thread the first worker (BMC) finds the bug and every
        // later strategy is never started.
        assert_eq!(outcome.winner, Some(0));
        for report in &outcome.workers[1..] {
            assert_eq!(report.status, WorkerStatus::NotRun, "{}", report.label);
        }
    }

    #[test]
    fn sequential_chain_still_proves_safe_instances() {
        // The trap-cycle circuit is neither k-inductive nor BMC-refutable, so
        // with a single thread the bounded incomplete engines must step aside
        // and let an IC3 worker finish the job.
        let aig = trap_cycle();
        let config = PortfolioConfig {
            threads: 1,
            fallback_bounds: FallbackBounds {
                bmc_depth: 8,
                max_k: 4,
            },
            ..PortfolioConfig::default()
        };
        let mut portfolio = Portfolio::from_aig(&aig, config);
        let outcome = portfolio.check();
        let PortfolioResult::Safe(proof) = &outcome.result else {
            panic!("ring is safe, got {:?}", outcome.result);
        };
        verify_safety_proof(portfolio.ts(), proof).expect("proof re-checks");
        // BMC and k-induction ran, hit their bounds, and reported FrameLimit.
        assert_eq!(
            outcome.workers[0].status,
            WorkerStatus::Unknown(UnknownReason::FrameLimit)
        );
        assert_eq!(
            outcome.workers[1].status,
            WorkerStatus::Unknown(UnknownReason::FrameLimit)
        );
        assert_eq!(outcome.workers[2].status, WorkerStatus::Safe);
    }

    #[test]
    fn pre_raised_stop_flag_cancels_the_whole_race() {
        let aig = token_ring(6);
        let stop = StopFlag::new();
        stop.stop();
        let config = PortfolioConfig {
            stop,
            ..PortfolioConfig::default()
        };
        let mut portfolio = Portfolio::from_aig(&aig, config);
        let outcome = portfolio.check();
        assert_eq!(
            outcome.result,
            PortfolioResult::Unknown(UnknownReason::Cancelled)
        );
        assert!(outcome.winner.is_none());
        for report in &outcome.workers {
            assert_eq!(report.status, WorkerStatus::NotRun);
        }
    }

    #[test]
    fn wall_clock_budget_bounds_workers_without_an_engine_clock() {
        // BMC and k-induction have no in-engine wall clock and, unbounded on
        // a safe instance, would never return; the portfolio's own timer must
        // cancel them at the budget even with no external watchdog.
        let aig = trap_cycle();
        let config = PortfolioConfig {
            limits: Limits {
                max_time: Some(Duration::from_millis(50)),
                ..Limits::default()
            },
            ..PortfolioConfig::default()
        };
        let workers = vec![
            WorkerSpec::new(
                "bmc",
                Strategy::Bmc {
                    search: plic3_sat::SearchConfig::default(),
                },
            ),
            WorkerSpec::new(
                "k-induction",
                Strategy::KInduction {
                    search: plic3_sat::SearchConfig::default(),
                },
            ),
        ];
        let mut portfolio = Portfolio::from_aig(&aig, config).with_workers(workers);
        let started = Instant::now();
        let outcome = portfolio.check();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the budget failed to bound the race"
        );
        assert_eq!(
            outcome.result,
            PortfolioResult::Unknown(UnknownReason::Timeout)
        );
    }

    #[test]
    fn certify_mode_still_reports_safe_for_genuine_proofs() {
        let aig = token_ring(5);
        let config = PortfolioConfig {
            certify: true,
            ..PortfolioConfig::default()
        };
        let mut portfolio = Portfolio::from_aig(&aig, config);
        let outcome = portfolio.check();
        let PortfolioResult::Safe(proof) = &outcome.result else {
            panic!("ring is safe, got {:?}", outcome.result);
        };
        verify_safety_proof(portfolio.ts(), proof).expect("the vetted proof re-checks");
        assert!(outcome.winner.is_some());
    }

    #[test]
    fn poisoned_certificates_are_demoted_to_crashes() {
        use plic3_logic::Clause;
        // A genuine certificate with one lemma flipped: the exact payload a
        // compromised worker would race with. The winner-claim vetting gate
        // must turn it into a crash, never a Safe verdict.
        let aig = token_ring(5);
        let ts = TransitionSystem::from_aig(&aig);
        let mut engine = plic3::Ic3::new(ts.clone(), plic3::Config::ric3_like());
        let plic3::CheckResult::Safe(mut cert) = engine.check() else {
            panic!("the ring is safe");
        };
        cert.lemmas[0] = Clause::from_lits(cert.lemmas[0].iter().map(|l| !l));
        let poisoned = WorkerOutcome::Safe(SafetyProof::Invariant(cert));
        let vetted = vet_safety_outcome(&ts, poisoned);
        let WorkerOutcome::Crashed { payload } = vetted else {
            panic!("a poisoned certificate must not survive vetting: {vetted:?}");
        };
        assert!(payload.starts_with("proof rejected:"), "{payload}");
    }

    #[test]
    fn vetting_passes_genuine_and_inconclusive_outcomes_through() {
        let aig = token_ring(4);
        let ts = TransitionSystem::from_aig(&aig);
        let mut engine = plic3::Ic3::new(ts.clone(), plic3::Config::ric3_like());
        let plic3::CheckResult::Safe(cert) = engine.check() else {
            panic!("the ring is safe");
        };
        let genuine = WorkerOutcome::Safe(SafetyProof::Invariant(cert));
        assert!(matches!(
            vet_safety_outcome(&ts, genuine),
            WorkerOutcome::Safe(_)
        ));
        let unknown = WorkerOutcome::Unknown(UnknownReason::Cancelled);
        assert_eq!(vet_safety_outcome(&ts, unknown.clone()), unknown);
    }

    #[test]
    fn custom_worker_sets_are_respected() {
        let aig = token_ring(4);
        let workers = vec![WorkerSpec::new(
            "only-ic3",
            Strategy::Ic3(plic3::Config::ric3_like()),
        )];
        let mut portfolio =
            Portfolio::from_aig(&aig, PortfolioConfig::default()).with_workers(workers);
        let outcome = portfolio.check();
        assert!(outcome.result.is_safe());
        assert_eq!(outcome.winner_label(), Some("only-ic3"));
        assert_eq!(outcome.exchange, ExchangeStats::default());
        assert!(outcome.result.certificate().is_some());
    }
}
