//! The strategies a portfolio races and the code that runs one of them.

use crate::exchange::Hub;
use plic3::{CheckResult, Config, Ic3, LiteralOrdering, Statistics, UnknownReason};
use plic3_bmc::{BmcDepthStatus, KInduction, KInductionResult};
use plic3_sat::{FaultPlan, ResourceBudget, RestartPolicy, SearchConfig, StopFlag};
use plic3_ts::{Trace, TransitionSystem};
use std::sync::Arc;
use std::time::Duration;

/// One strategy a portfolio worker can run.
#[derive(Clone, Debug)]
pub enum Strategy {
    /// Incremental bounded model checking with unbounded depth: finds
    /// counterexamples (often much faster than IC3) but can never prove
    /// safety — on safe instances it runs until cancelled. When the portfolio
    /// degrades to a (partially) sequential chain, the depth is clamped by
    /// [`FallbackBounds`] so this worker cannot starve the complete engines
    /// behind it.
    Bmc {
        /// Search behaviour of the backing SAT solver.
        search: SearchConfig,
    },
    /// k-induction with unbounded induction depth: proves k-inductive
    /// properties almost immediately and finds counterexamples through its
    /// base case; incomplete for everything else, and bounded by
    /// [`FallbackBounds`] in (partially) sequential chains like
    /// [`Strategy::Bmc`].
    KInduction {
        /// Search behaviour of both the base-case and step-case solvers.
        search: SearchConfig,
    },
    /// A full IC3 engine under the given configuration. IC3 workers are the
    /// only ones that take part in lemma sharing.
    Ic3(Config),
}

/// Depth bounds applied to the *incomplete* strategies (BMC, k-induction)
/// whenever the thread budget is smaller than the worker count.
///
/// With every worker running in parallel, an incomplete engine that can never
/// conclude is harmless — the winner cancels it. In a sequential fallback
/// chain it would run forever and starve the complete IC3 workers queued
/// behind it, so it gets a bound and reports
/// [`UnknownReason::FrameLimit`] when the bound is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FallbackBounds {
    /// Maximum BMC depth explored before giving up.
    pub bmc_depth: usize,
    /// Maximum k-induction depth tried before giving up.
    pub max_k: usize,
}

impl Default for FallbackBounds {
    fn default() -> Self {
        FallbackBounds {
            bmc_depth: 120,
            max_k: 60,
        }
    }
}

/// A labelled strategy inside a portfolio.
#[derive(Clone, Debug)]
pub struct WorkerSpec {
    /// Short, stable identifier (reported as the winner label).
    pub label: String,
    /// What this worker runs.
    pub strategy: Strategy,
}

impl WorkerSpec {
    /// Creates a spec with the given label.
    pub fn new(label: impl Into<String>, strategy: Strategy) -> Self {
        WorkerSpec {
            label: label.into(),
            strategy,
        }
    }

    /// Returns `true` for IC3 workers (the lemma-sharing participants).
    pub fn shares_lemmas(&self) -> bool {
        matches!(self.strategy, Strategy::Ic3(_))
    }
}

/// The proof backing a portfolio `Safe` verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum SafetyProof {
    /// An inductive-invariant certificate from an IC3 worker; check it with
    /// [`plic3::verify_certificate`].
    Invariant(plic3::Certificate),
    /// The property was proven `k`-inductive; re-check it by running a fresh
    /// [`KInduction`] engine to depth `k` (see
    /// [`crate::verify_safety_proof`]).
    KInductive {
        /// The induction depth at which the step case closed.
        k: usize,
    },
}

/// What one worker produced.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerOutcome {
    /// The property holds.
    Safe(SafetyProof),
    /// A counterexample was found.
    Unsafe(Trace),
    /// The worker gave up (cancelled by the winner, by the external stop flag,
    /// or by a resource limit).
    Unknown(UnknownReason),
    /// The worker was never started (thread budget exhausted before its turn,
    /// or the race was already over).
    NotRun,
    /// The worker panicked (and, if the supervisor revived it once, panicked
    /// again). The payload is the stringified panic message. A crashed worker
    /// contributes no verdict — the race continues without it, so a crash can
    /// never flip the portfolio result.
    Crashed {
        /// The stringified panic payload of the (last) crash.
        payload: String,
    },
}

impl WorkerOutcome {
    /// Returns `true` for `Safe` and `Unsafe` (the verdicts that end a race).
    pub fn is_conclusive(&self) -> bool {
        matches!(self, WorkerOutcome::Safe(_) | WorkerOutcome::Unsafe(_))
    }
}

/// Per-worker report of one portfolio run.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// The worker's label.
    pub label: String,
    /// How the worker ended (traces/proofs live in the portfolio result, not
    /// here).
    pub status: WorkerStatus,
    /// Wall-clock time this worker ran for.
    pub runtime: Duration,
    /// Engine statistics (IC3 workers only), including the lemma-exchange
    /// counters.
    pub stats: Option<Statistics>,
    /// Stringified panic payload of the last crash in this slot, if the
    /// worker panicked at least once (even when the supervisor's retry then
    /// finished cleanly and [`WorkerReport::status`] is not `Crashed`).
    pub crash: Option<String>,
    /// `true` when the supervisor restarted this slot once with the
    /// conservative fallback configuration after a first panic.
    pub restarted: bool,
}

/// A [`WorkerOutcome`] stripped of its payload, for reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Proved the property.
    Safe,
    /// Found a counterexample.
    Unsafe,
    /// Gave up for the stated reason.
    Unknown(UnknownReason),
    /// Never started.
    NotRun,
    /// Panicked (see [`WorkerReport::crash`] for the payload).
    Crashed,
}

impl WorkerOutcome {
    pub(crate) fn status(&self) -> WorkerStatus {
        match self {
            WorkerOutcome::Safe(_) => WorkerStatus::Safe,
            WorkerOutcome::Unsafe(_) => WorkerStatus::Unsafe,
            WorkerOutcome::Unknown(reason) => WorkerStatus::Unknown(*reason),
            WorkerOutcome::NotRun => WorkerStatus::NotRun,
            WorkerOutcome::Crashed { .. } => WorkerStatus::Crashed,
        }
    }
}

/// The conservative configuration the supervisor restarts a crashed worker
/// under: the same strategy demoted to the pre-modernization
/// [`SearchConfig::classic`] search (no inprocessing, no chronological
/// backtracking, plain Luby restarts) — the code paths least likely to share
/// whatever tripped the first run. The supervisor additionally detaches the
/// retry from the lemma exchange.
pub(crate) fn fallback_spec(spec: &WorkerSpec) -> WorkerSpec {
    let classic = SearchConfig::classic();
    let strategy = match &spec.strategy {
        Strategy::Bmc { .. } => Strategy::Bmc { search: classic },
        Strategy::KInduction { .. } => Strategy::KInduction { search: classic },
        Strategy::Ic3(config) => Strategy::Ic3(config.clone().with_search(classic)),
    };
    WorkerSpec {
        label: spec.label.clone(),
        strategy,
    }
}

/// Runs one worker to completion (or cancellation). Returns the outcome and,
/// for IC3 workers, the engine statistics.
///
/// The argument list mirrors the full per-slot context the supervisor owns
/// (stop flag, sub-budget, fault plan, exchange hookup); bundling it into a
/// struct would only move the same eight names one level down.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_worker(
    ts: &TransitionSystem,
    spec: &WorkerSpec,
    limits: &plic3::Limits,
    bounds: Option<FallbackBounds>,
    stop: StopFlag,
    budget: ResourceBudget,
    faults: FaultPlan,
    exchange: Option<(Arc<Hub>, usize)>,
) -> (WorkerOutcome, Option<Statistics>) {
    match &spec.strategy {
        Strategy::Bmc { search } => (
            run_bmc(ts, limits, bounds, stop, budget, faults, *search),
            None,
        ),
        Strategy::KInduction { search } => (
            run_kind(ts, limits, bounds, stop, budget, faults, *search),
            None,
        ),
        Strategy::Ic3(config) => run_ic3(ts, config, limits, stop, budget, faults, exchange),
    }
}

fn run_bmc(
    ts: &TransitionSystem,
    limits: &plic3::Limits,
    bounds: Option<FallbackBounds>,
    stop: StopFlag,
    budget: ResourceBudget,
    faults: FaultPlan,
    search: SearchConfig,
) -> WorkerOutcome {
    let mut bmc = plic3_bmc::Bmc::new(ts);
    bmc.set_search_config(search);
    bmc.set_stop_flag(stop.clone());
    bmc.set_budget(budget.clone());
    bmc.set_fault_plan(faults);
    bmc.set_conflict_budget(limits.max_conflicts);
    let max_depth = bounds.map(|b| b.bmc_depth).unwrap_or(usize::MAX);
    let mut depth = 0usize;
    loop {
        if stop.is_stopped() || budget.is_exhausted() {
            return WorkerOutcome::Unknown(interruption_reason(&stop, &budget));
        }
        if depth > max_depth {
            return WorkerOutcome::Unknown(UnknownReason::FrameLimit);
        }
        match bmc.check_depth_status(depth) {
            BmcDepthStatus::Unsafe(trace) => return WorkerOutcome::Unsafe(trace),
            BmcDepthStatus::Clean => depth += 1,
            BmcDepthStatus::Unknown => {
                return WorkerOutcome::Unknown(interruption_reason(&stop, &budget));
            }
        }
        // On machines with fewer cores than workers the racers time-share;
        // yielding at query granularity keeps a cheap competitor (usually
        // k-induction) from waiting out a whole scheduler quantum behind
        // this CPU-bound loop.
        std::thread::yield_now();
    }
}

fn run_kind(
    ts: &TransitionSystem,
    limits: &plic3::Limits,
    bounds: Option<FallbackBounds>,
    stop: StopFlag,
    budget: ResourceBudget,
    faults: FaultPlan,
    search: SearchConfig,
) -> WorkerOutcome {
    let mut kind = KInduction::new(ts);
    kind.set_search_config(search);
    kind.set_stop_flag(stop.clone());
    kind.set_budget(budget.clone());
    kind.set_fault_plan(faults);
    kind.set_conflict_budget(limits.max_conflicts);
    let max_k = bounds.map(|b| b.max_k).unwrap_or(usize::MAX);
    match kind.check(max_k) {
        KInductionResult::Safe { k } => WorkerOutcome::Safe(SafetyProof::KInductive { k }),
        KInductionResult::Unsafe { trace, .. } => WorkerOutcome::Unsafe(trace),
        KInductionResult::Unknown { bound } => {
            // Distinguish "ran out of bound" from a genuine interruption.
            if bound >= max_k && !stop.is_stopped() && !budget.is_exhausted() {
                WorkerOutcome::Unknown(UnknownReason::FrameLimit)
            } else {
                WorkerOutcome::Unknown(interruption_reason(&stop, &budget))
            }
        }
    }
}

fn run_ic3(
    ts: &TransitionSystem,
    config: &Config,
    limits: &plic3::Limits,
    stop: StopFlag,
    budget: ResourceBudget,
    faults: FaultPlan,
    exchange: Option<(Arc<Hub>, usize)>,
) -> (WorkerOutcome, Option<Statistics>) {
    let mut config = config
        .clone()
        .with_stop_flag(stop)
        .with_budget(budget)
        .with_fault_plan(faults);
    config.limits = *limits;
    let mut engine = Ic3::new(ts.clone(), config);
    if let Some((hub, slot)) = exchange {
        let publisher = hub.clone();
        engine.set_lemma_sink(move |cube, level| publisher.publish(slot, cube, level));
        let inbox = hub.inbox(slot);
        engine.set_lemma_source(move |buf| inbox.drain_into(buf));
    }
    let outcome = match engine.check() {
        CheckResult::Safe(cert) => WorkerOutcome::Safe(SafetyProof::Invariant(cert)),
        CheckResult::Unsafe(trace) => WorkerOutcome::Unsafe(trace),
        CheckResult::Unknown(reason) => WorkerOutcome::Unknown(reason),
    };
    (outcome, Some(*engine.statistics()))
}

/// Why an engine came back interrupted: the memory budget when it tripped
/// (the budget never raises the stop flag, so it is checked first),
/// cancellation when the stop flag is up, otherwise the only other in-query
/// interruption source, the conflict budget.
fn interruption_reason(stop: &StopFlag, budget: &ResourceBudget) -> UnknownReason {
    if budget.is_exhausted() {
        UnknownReason::MemoryOut
    } else if stop.is_stopped() {
        UnknownReason::Cancelled
    } else {
        UnknownReason::ConflictLimit
    }
}

/// The default worker set: BMC, k-induction, and four diversified IC3
/// variants — CTG generalization with prediction off and on, plain-MIC with
/// prediction, and a seeded drop order (keyed on `seed`) with prediction.
///
/// The workers are additionally diversified on SAT *search* behaviour: the
/// bulk runs the modern EMA-restart engine, `ic3-mic-pl` falls back to Luby
/// restarts (better on some proof-heavy instances) with CNF inprocessing
/// disabled (hedging against formulas where elimination overhead loses to
/// raw search), and `ic3-seeded-pl` runs without chronological backtracking
/// and with a faster rephasing cadence, so the portfolio covers
/// restart/phase/inprocessing strategies as well as generalization
/// strategies.
pub fn default_workers(seed: u64) -> Vec<WorkerSpec> {
    let modern = SearchConfig::default();
    let luby = SearchConfig {
        restart: RestartPolicy::Luby,
        // This worker also runs with CNF inprocessing off: elimination is on
        // by default everywhere else, so one diversified worker hedges
        // against instances where BVE/subsumption overhead loses to raw
        // search (and against inprocessing regressions escaping to the whole
        // portfolio at once).
        elim: false,
        ..SearchConfig::default()
    };
    let eager_rephase = SearchConfig {
        chrono: 0,
        rephase_interval: 2048,
        ..SearchConfig::default()
    };
    vec![
        WorkerSpec::new("bmc", Strategy::Bmc { search: modern }),
        WorkerSpec::new("k-induction", Strategy::KInduction { search: modern }),
        WorkerSpec::new("ic3-ctg", Strategy::Ic3(Config::ric3_like())),
        WorkerSpec::new(
            "ic3-ctg-pl",
            Strategy::Ic3(Config::ric3_like().with_lemma_prediction(true)),
        ),
        WorkerSpec::new(
            "ic3-mic-pl",
            Strategy::Ic3(
                Config::ic3ref_like()
                    .with_lemma_prediction(true)
                    .with_search(luby),
            ),
        ),
        WorkerSpec::new(
            "ic3-seeded-pl",
            Strategy::Ic3(
                Config::ric3_like()
                    .with_lemma_prediction(true)
                    .with_ordering(LiteralOrdering::Seeded(seed))
                    .with_search(eager_rephase),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_worker_set_shape() {
        let workers = default_workers(7);
        assert_eq!(workers.len(), 6);
        let ic3 = workers.iter().filter(|w| w.shares_lemmas()).count();
        assert!(ic3 >= 3, "the issue demands at least three IC3 variants");
        let labels: std::collections::HashSet<&str> =
            workers.iter().map(|w| w.label.as_str()).collect();
        assert_eq!(labels.len(), workers.len(), "labels are unique");
        let elim_off = workers
            .iter()
            .filter(|w| {
                let search = match &w.strategy {
                    Strategy::Bmc { search } | Strategy::KInduction { search } => *search,
                    Strategy::Ic3(config) => config.search,
                };
                !search.elim
            })
            .count();
        assert!(
            elim_off >= 1,
            "at least one worker must run with inprocessing off"
        );
        assert!(
            elim_off < workers.len(),
            "inprocessing must stay on for the bulk of the portfolio"
        );
    }

    #[test]
    fn outcome_statuses() {
        assert!(WorkerOutcome::Safe(SafetyProof::KInductive { k: 1 }).is_conclusive());
        assert!(!WorkerOutcome::NotRun.is_conclusive());
        assert_eq!(
            WorkerOutcome::Unknown(UnknownReason::Cancelled).status(),
            WorkerStatus::Unknown(UnknownReason::Cancelled)
        );
        let crashed = WorkerOutcome::Crashed {
            payload: "boom".into(),
        };
        assert!(!crashed.is_conclusive(), "a crash never decides the race");
        assert_eq!(crashed.status(), WorkerStatus::Crashed);
    }

    #[test]
    fn fallback_specs_demote_to_the_classic_search() {
        for spec in default_workers(3) {
            let fallback = fallback_spec(&spec);
            assert_eq!(fallback.label, spec.label);
            let search = match &fallback.strategy {
                Strategy::Bmc { search } | Strategy::KInduction { search } => *search,
                Strategy::Ic3(config) => config.search,
            };
            assert_eq!(search, SearchConfig::classic());
            // The strategy kind itself is preserved.
            assert_eq!(
                std::mem::discriminant(&fallback.strategy),
                std::mem::discriminant(&spec.strategy)
            );
        }
    }
}
