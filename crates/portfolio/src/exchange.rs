//! The bounded lemma-exchange hub connecting the IC3 workers of a portfolio.
//!
//! Every sharing worker owns an [`Inbox`] — a mutex-protected, bounded
//! double-ended queue of `(cube, level)` candidates. A worker that pushes a
//! lemma publishes it to every *other* inbox; when an inbox is full the
//! delivery is dropped (and counted), never blocked on — a slow consumer can
//! cost the portfolio shared lemmas, but never progress.
//!
//! The hub is a plumbing layer only: candidates travel as plain data and the
//! receiving engine re-proves every one of them before adoption (see
//! [`plic3::Ic3::set_lemma_source`]), so nothing here is trusted for
//! soundness.

use plic3_logic::Cube;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Aggregate lemma-traffic counters of one portfolio run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeStats {
    /// Lemma deliveries placed into some worker's inbox.
    pub published: u64,
    /// Deliveries dropped because the receiving inbox was full.
    pub dropped: u64,
}

/// One sharing worker's bounded inbox.
pub(crate) struct Inbox {
    queue: Mutex<VecDeque<(Cube, usize)>>,
    capacity: usize,
}

impl Inbox {
    fn new(capacity: usize) -> Self {
        Inbox {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Appends a candidate unless the inbox is full. Returns `false` when the
    /// delivery was dropped.
    fn offer(&self, cube: &Cube, level: usize) -> bool {
        let mut queue = self.queue.lock().expect("inbox lock");
        if queue.len() >= self.capacity {
            return false;
        }
        queue.push_back((cube.clone(), level));
        true
    }

    /// Moves every pending candidate into `buf` (oldest first).
    pub(crate) fn drain_into(&self, buf: &mut Vec<(Cube, usize)>) {
        let mut queue = self.queue.lock().expect("inbox lock");
        buf.extend(queue.drain(..));
    }
}

/// The exchange hub: one inbox per sharing worker plus the traffic counters.
pub(crate) struct Hub {
    inboxes: Vec<Arc<Inbox>>,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl Hub {
    pub(crate) fn new(members: usize, capacity: usize) -> Arc<Self> {
        Arc::new(Hub {
            inboxes: (0..members)
                .map(|_| Arc::new(Inbox::new(capacity)))
                .collect(),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// The inbox of the sharing member with the given slot.
    pub(crate) fn inbox(&self, slot: usize) -> Arc<Inbox> {
        self.inboxes[slot].clone()
    }

    /// Fans a lemma out to every member except the sender.
    pub(crate) fn publish(&self, sender: usize, cube: &Cube, level: usize) {
        for (slot, inbox) in self.inboxes.iter().enumerate() {
            if slot == sender {
                continue;
            }
            if inbox.offer(cube, level) {
                self.published.fetch_add(1, Ordering::Relaxed);
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn stats(&self) -> ExchangeStats {
        ExchangeStats {
            published: self.published.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_logic::{Lit, Var};

    fn cube(v: u32) -> Cube {
        Cube::from_lits([Lit::pos(Var::new(v))])
    }

    #[test]
    fn publish_reaches_everyone_but_the_sender() {
        let hub = Hub::new(3, 8);
        hub.publish(0, &cube(1), 2);
        let mut buf = Vec::new();
        hub.inbox(0).drain_into(&mut buf);
        assert!(buf.is_empty(), "sender must not hear its own lemma");
        hub.inbox(1).drain_into(&mut buf);
        hub.inbox(2).drain_into(&mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(hub.stats().published, 2);
        assert_eq!(hub.stats().dropped, 0);
    }

    #[test]
    fn full_inboxes_drop_instead_of_blocking() {
        let hub = Hub::new(2, 2);
        for i in 0..5 {
            hub.publish(0, &cube(i), 1);
        }
        assert_eq!(hub.stats().published, 2, "capacity bounds the queue");
        assert_eq!(hub.stats().dropped, 3);
        let mut buf = Vec::new();
        hub.inbox(1).drain_into(&mut buf);
        assert_eq!(buf.len(), 2);
        // Draining frees the capacity again.
        hub.publish(0, &cube(9), 1);
        assert_eq!(hub.stats().published, 3);
    }
}
