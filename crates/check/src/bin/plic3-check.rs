//! Check an AIGER circuit and independently verify the evidence.
//!
//! `plic3-check` runs the IC3 engine on one AIGER file and then refuses to
//! take the engine's word for it:
//!
//! * a `Safe` verdict's invariant certificate is checked on the **original**
//!   circuit (through the preprocessing reconstruction when preprocessing is
//!   on) by `plic3_check::check_certificate_on_original`;
//! * an `Unsafe` verdict's counterexample trace is replayed gate by gate on
//!   the original circuit.
//!
//! Exit codes: `0` verdict reached and evidence verified, `1` evidence failed
//! verification, `2` usage error, `3` no verdict within the budget.

use plic3::{CheckResult, Config, Ic3};
use plic3_aig::parse_aiger;
use plic3_check::{check_certificate_on_original, CheckOptions};
use plic3_prep::{preprocess, Reconstruction};
use plic3_ts::TransitionSystem;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: plic3-check [options] <circuit.aag|circuit.aig>

Runs IC3 on the circuit and independently verifies the evidence behind the
verdict: invariant certificates are checked on the original circuit, and
counterexample traces are replayed on it.

options:
  --no-preprocess   run the engine on the raw circuit (default: preprocess)
  --timeout <secs>  engine time budget in seconds (default: 60)
  --drat            additionally DRAT-check the certificate checker's own
                    UNSAT queries (needs the `proof-log` build of plic3-sat;
                    silently checks nothing otherwise)
  --help            show this help

exit codes: 0 verified, 1 verification failed, 2 usage error, 3 no verdict";

struct Options {
    path: String,
    preprocess: bool,
    timeout: Duration,
    drat: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut preprocess = true;
    let mut timeout = Duration::from_secs(60);
    let mut drat = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--no-preprocess" => preprocess = false,
            "--drat" => drat = true,
            "--timeout" => {
                let value = iter.next().ok_or("--timeout needs a value")?;
                let secs: u64 = value
                    .parse()
                    .map_err(|_| format!("invalid --timeout value: {value}"))?;
                timeout = Duration::from_secs(secs);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown option: {other}")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("expected exactly one circuit file".to_string());
                }
            }
        }
    }
    let path = path.ok_or("expected a circuit file")?;
    Ok(Options {
        path,
        preprocess,
        timeout,
        drat,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("plic3-check: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let bytes = match std::fs::read(&options.path) {
        Ok(bytes) => bytes,
        Err(err) => {
            eprintln!("plic3-check: cannot read {}: {err}", options.path);
            return ExitCode::from(2);
        }
    };
    let original = match parse_aiger(&bytes) {
        Ok(aig) => aig,
        Err(err) => {
            eprintln!("plic3-check: cannot parse {}: {err}", options.path);
            return ExitCode::from(2);
        }
    };

    let prep = options.preprocess.then(|| preprocess(&original));
    let ts = match &prep {
        Some(p) => {
            println!("{}", p.stats);
            TransitionSystem::from_aig(&p.aig)
        }
        None => TransitionSystem::from_aig(&original),
    };
    let config = Config::ric3_like().with_max_time(options.timeout);
    let mut engine = Ic3::new(ts, config);
    let outcome = engine.check();

    match &outcome {
        CheckResult::Safe(cert) => {
            println!(
                "verdict: safe ({} lemmas, level {})",
                cert.lemmas.len(),
                cert.level
            );
            let identity = Reconstruction::identity(original.num_inputs(), original.num_latches());
            let recon = prep.as_ref().map_or(&identity, |p| &p.reconstruction);
            let check_options = CheckOptions {
                stop: None,
                drat: options.drat,
            };
            match check_certificate_on_original(&original, recon, engine.ts(), cert, &check_options)
            {
                Ok(report) => {
                    println!(
                        "certificate verified on the original circuit: {} lemmas, {} \
                         preprocessing facts, {} SAT queries, {} DRAT-checked",
                        report.lemmas, report.facts, report.queries, report.drat_checked
                    );
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("plic3-check: {err}");
                    ExitCode::from(1)
                }
            }
        }
        CheckResult::Unsafe(trace) => {
            println!("verdict: unsafe ({} steps)", trace.len());
            let replays = match &prep {
                Some(p) => p.replay_on_original(engine.ts(), trace),
                None => plic3::verify_trace(engine.ts(), &original, trace),
            };
            if replays {
                println!("counterexample replayed on the original circuit");
                ExitCode::SUCCESS
            } else {
                eprintln!("plic3-check: counterexample does NOT replay on the original circuit");
                ExitCode::from(1)
            }
        }
        CheckResult::Unknown(reason) => {
            println!("verdict: unknown ({reason:?})");
            ExitCode::from(3)
        }
    }
}
