//! Independent proof checkers for the model checker's answers.
//!
//! This crate closes the trust loop around the engines: instead of believing
//! a `Safe`/`Unsafe` verdict, the harness (and the `plic3-check` binary) can
//! demand evidence and have it checked by code that shares nothing with the
//! solver or the IC3 engine that produced it.
//!
//! * [`check_unsat_proof`] — a backward DRAT (RUP) checker for the clause
//!   proofs the SAT core emits when its `proof-log` tracer is enabled
//!   ([`plic3_sat::Solver::enable_proof_tracing`]). It verifies that every
//!   derived clause the final conflict depends on is a reverse-unit-propagation
//!   consequence of the clauses before it.
//! * [`check_certificate_on_original`] — an inductive-invariant checker that
//!   takes the certificate an engine produced on the *simplified* circuit and
//!   discharges initiation, consecution, and the property on the **original,
//!   pre-preprocessing** circuit by composing through the preprocessing
//!   [`plic3_prep::Reconstruction`]. [`check_certificate`] is the
//!   no-preprocessing convenience wrapper.
//!
//! See `docs/CERTIFICATES.md` for the proof formats and the soundness
//! argument per tracer hook site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drat;
mod invariant;

pub use drat::{check_unsat_proof, DratStats};
pub use invariant::{
    check_certificate, check_certificate_on_original, CertCheckError, CertCheckReport, CheckOptions,
};
