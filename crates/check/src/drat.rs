//! A backward DRAT (RUP) checker for UNSAT proofs traced by `plic3-sat`.
//!
//! The checker consumes a [`Proof`] — the sequence of `Input`/`Add`/`Delete`
//! lines a tracing solver recorded — together with the assumptions of the
//! `solve` call whose `Unsat` answer is being certified, and verifies:
//!
//! 1. **The proof derives a conflict**: unit propagation over the final
//!    clause database (all lines added and not deleted) plus the assumption
//!    literals runs into a conflict.
//! 2. **Every derived clause is sound**: walking the proof backwards, each
//!    `Add` line that the conflict (transitively) depends on is checked to
//!    have the RUP property — asserting the negation of its literals and
//!    propagating over the clauses *preceding* it yields a conflict, so the
//!    clause is implied by them. `Input` lines are axioms and are not
//!    checked; they are the formula the proof is about.
//!
//! The backward pass mirrors drat-trim: deletions re-attach their clause,
//! additions detach theirs, so the attached set always equals the database at
//! the line currently being checked, and only lines marked as antecedents of
//! some conflict are verified.
//!
//! Clauses are matched by content (sorted, deduplicated literal sets), never
//! by identity, which is also how the solver emits them.

use plic3_logic::Lit;
use plic3_sat::{Proof, ProofStep};
use std::collections::HashMap;

/// Outcome summary of a successful [`check_unsat_proof`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DratStats {
    /// Total proof lines processed.
    pub steps: usize,
    /// `Input` (axiom) lines among them.
    pub inputs: usize,
    /// `Add` lines actually RUP-checked (the antecedent cone of the final
    /// conflict; unmarked additions need no check).
    pub checked_adds: usize,
}

const UNDEF: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

/// One clause record of the checker's database.
struct Rec {
    /// Working literal order; the first two are the watched literals.
    lits: Vec<Lit>,
    /// Sorted, deduplicated content, used to match `Delete` lines.
    key: Vec<Lit>,
    /// `true` for axioms (`Input` lines), which are never RUP-checked.
    input: bool,
    /// Transitively needed for the final conflict (set by antecedent marking).
    marked: bool,
}

/// How a propagation run hit a conflict, carrying what to mark.
enum Conflict {
    /// A clause went entirely false.
    Clause(u32),
    /// Enqueuing `lit` (with `reason`) contradicted the existing assignment.
    Enqueue { lit: Lit, reason: Option<u32> },
}

struct Checker {
    recs: Vec<Rec>,
    /// Per-variable assignment, `UNDEF`/`TRUE`/`FALSE` of the positive literal.
    values: Vec<u8>,
    /// Per-variable reason record id + 1 (0 = seed/decision).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    /// Watch lists keyed by the watched literal's code (visited when that
    /// literal becomes false).
    watches: Vec<Vec<u32>>,
    /// Attached unit records.
    units: Vec<u32>,
    /// Attached empty records (an immediate conflict).
    empties: Vec<u32>,
    /// Antecedent-marking scratch: per-variable generation stamp.
    seen: Vec<u32>,
    generation: u32,
}

impl Checker {
    fn new(nvars: usize) -> Self {
        Checker {
            recs: Vec::new(),
            values: vec![UNDEF; nvars],
            reason: vec![0; nvars],
            trail: Vec::new(),
            watches: vec![Vec::new(); 2 * nvars],
            units: Vec::new(),
            empties: Vec::new(),
            seen: vec![0; nvars],
            generation: 0,
        }
    }

    fn add_rec(&mut self, lits: &[Lit], input: bool) -> u32 {
        let key = normalize(lits);
        let id = self.recs.len() as u32;
        self.recs.push(Rec {
            lits: key.clone(),
            key,
            input,
            marked: false,
        });
        id
    }

    fn attach(&mut self, id: u32) {
        let rec = &self.recs[id as usize];
        match rec.lits.len() {
            0 => self.empties.push(id),
            1 => self.units.push(id),
            _ => {
                let (w0, w1) = (rec.lits[0], rec.lits[1]);
                self.watches[w0.code()].push(id);
                self.watches[w1.code()].push(id);
            }
        }
    }

    fn detach(&mut self, id: u32) {
        let rec = &self.recs[id as usize];
        match rec.lits.len() {
            0 => remove_id(&mut self.empties, id),
            1 => remove_id(&mut self.units, id),
            _ => {
                let (w0, w1) = (rec.lits[0], rec.lits[1]);
                remove_id(&mut self.watches[w0.code()], id);
                remove_id(&mut self.watches[w1.code()], id);
            }
        }
    }

    #[inline]
    fn value_lit(&self, lit: Lit) -> u8 {
        let v = self.values[lit.var().index()];
        if v == UNDEF || lit.is_pos() {
            v
        } else {
            v ^ 3 // swap TRUE <-> FALSE
        }
    }

    /// Assigns `lit` true. Returns the conflict if it is already false.
    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) -> Option<Conflict> {
        match self.value_lit(lit) {
            TRUE => None,
            FALSE => Some(Conflict::Enqueue { lit, reason }),
            _ => {
                let v = lit.var().index();
                self.values[v] = if lit.is_pos() { TRUE } else { FALSE };
                self.reason[v] = reason.map_or(0, |r| r + 1);
                self.trail.push(lit);
                None
            }
        }
    }

    fn propagate(&mut self) -> Option<Conflict> {
        let mut qhead = 0;
        while qhead < self.trail.len() {
            let p = self.trail[qhead];
            qhead += 1;
            let falsified = !p;
            let code = falsified.code();
            let mut i = 0;
            while i < self.watches[code].len() {
                let id = self.watches[code][i];
                let rec = &mut self.recs[id as usize];
                if rec.lits[0] == falsified {
                    rec.lits.swap(0, 1);
                }
                let first = rec.lits[0];
                if self.value_lit(first) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a non-false replacement watch.
                let mut moved = false;
                for k in 2..self.recs[id as usize].lits.len() {
                    let l = self.recs[id as usize].lits[k];
                    if self.value_lit(l) != FALSE {
                        self.recs[id as usize].lits.swap(1, k);
                        self.watches[code].swap_remove(i);
                        self.watches[l.code()].push(id);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if self.value_lit(first) == FALSE {
                    return Some(Conflict::Clause(id));
                }
                if let Some(confl) = self.enqueue(first, Some(id)) {
                    return Some(confl);
                }
                i += 1;
            }
        }
        None
    }

    /// Marks the conflict's antecedent cone: the conflicting record, every
    /// reason record reachable from it through the trail, and so on.
    fn mark_antecedents(&mut self, conflict: Conflict) {
        self.generation += 1;
        let generation = self.generation;
        let flag_rec = |recs: &mut Vec<Rec>, seen: &mut Vec<u32>, id: u32| {
            let rec = &mut recs[id as usize];
            rec.marked = true;
            for &l in &rec.lits {
                seen[l.var().index()] = generation;
            }
        };
        match conflict {
            Conflict::Clause(id) => flag_rec(&mut self.recs, &mut self.seen, id),
            Conflict::Enqueue { lit, reason } => {
                self.seen[lit.var().index()] = generation;
                if let Some(id) = reason {
                    flag_rec(&mut self.recs, &mut self.seen, id);
                }
            }
        }
        for i in (0..self.trail.len()).rev() {
            let v = self.trail[i].var().index();
            if self.seen[v] != generation {
                continue;
            }
            let r = self.reason[v];
            if r != 0 {
                flag_rec(&mut self.recs, &mut self.seen, r - 1);
            }
        }
    }

    /// Undoes every assignment of the current check.
    fn undo(&mut self) {
        for i in 0..self.trail.len() {
            let v = self.trail[i].var().index();
            self.values[v] = UNDEF;
            self.reason[v] = 0;
        }
        self.trail.clear();
    }

    /// The RUP check: does asserting the negation of every literal of
    /// `clause`, on top of the attached database, propagate to a conflict?
    /// On success the conflict's antecedents are marked. The assignment is
    /// fully undone either way.
    fn rup_conflicts(&mut self, clause: &[Lit]) -> bool {
        debug_assert!(self.trail.is_empty());
        let mut conflict = None;
        if let Some(&id) = self.empties.last() {
            conflict = Some(Conflict::Clause(id));
        }
        if conflict.is_none() {
            let units: Vec<u32> = self.units.clone();
            for id in units {
                let l = self.recs[id as usize].lits[0];
                conflict = self.enqueue(l, Some(id));
                if conflict.is_some() {
                    break;
                }
            }
        }
        if conflict.is_none() {
            for &l in clause {
                conflict = self.enqueue(!l, None);
                if conflict.is_some() {
                    break;
                }
            }
        }
        if conflict.is_none() {
            conflict = self.propagate();
        }
        let found = conflict.is_some();
        if let Some(confl) = conflict {
            self.mark_antecedents(confl);
        }
        self.undo();
        found
    }
}

fn remove_id(list: &mut Vec<u32>, id: u32) {
    let pos = list
        .iter()
        .position(|&x| x == id)
        .expect("detached record must be attached");
    list.swap_remove(pos);
}

fn normalize(lits: &[Lit]) -> Vec<Lit> {
    let mut key = lits.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

enum Action {
    Added(u32),
    Deleted(u32),
}

/// Checks that `proof` certifies the unsatisfiability of its input clauses
/// under `assumptions` (the assumptions of the `solve` call that answered
/// `Unsat`; pass the empty slice for a top-level refutation, or the
/// solver's `unsat_core()` — any superset of the core works).
///
/// Returns the check summary, or a description of the first defect: a
/// deletion of a clause never added, a missing final conflict, or an `Add`
/// line without the RUP property.
pub fn check_unsat_proof(proof: &Proof, assumptions: &[Lit]) -> Result<DratStats, String> {
    let steps = proof.steps();
    let mut nvars = 0;
    for step in steps {
        for &l in step.lits() {
            nvars = nvars.max(l.var().index() + 1);
        }
    }
    for &l in assumptions {
        nvars = nvars.max(l.var().index() + 1);
    }
    let mut checker = Checker::new(nvars);
    let mut actions: Vec<Action> = Vec::with_capacity(steps.len());
    let mut by_key: HashMap<Vec<Lit>, Vec<u32>> = HashMap::new();
    let mut inputs = 0;
    for (pos, step) in steps.iter().enumerate() {
        match step {
            ProofStep::Input(lits) | ProofStep::Add(lits) => {
                let input = matches!(step, ProofStep::Input(_));
                inputs += usize::from(input);
                let id = checker.add_rec(lits, input);
                by_key
                    .entry(checker.recs[id as usize].key.clone())
                    .or_default()
                    .push(id);
                checker.attach(id);
                actions.push(Action::Added(id));
            }
            ProofStep::Delete(lits) => {
                let key = normalize(lits);
                let id = by_key
                    .get_mut(&key)
                    .and_then(|stack| stack.pop())
                    .ok_or_else(|| {
                        format!("step {pos}: delete of a clause not in the database: {key:?}")
                    })?;
                checker.detach(id);
                actions.push(Action::Deleted(id));
            }
        }
    }
    // 1. The final database plus the assumptions must propagate to a
    //    conflict. Seeding the assumptions is the same as RUP-checking the
    //    clause of their negations (which the solver also logs as its last
    //    derived clause on an assumption-UNSAT answer).
    let negated_assumptions: Vec<Lit> = assumptions.iter().map(|&l| !l).collect();
    if !checker.rup_conflicts(&negated_assumptions) {
        return Err("the proof does not derive a conflict under the given assumptions".to_string());
    }
    // 2. Backward sweep: re-attach deletions, detach additions, RUP-check
    //    every marked (needed) derived clause against what precedes it.
    let mut checked_adds = 0;
    for action in actions.iter().rev() {
        match *action {
            Action::Deleted(id) => checker.attach(id),
            Action::Added(id) => {
                checker.detach(id);
                let rec = &checker.recs[id as usize];
                if rec.marked && !rec.input {
                    let lits = rec.key.clone();
                    if !checker.rup_conflicts(&lits) {
                        return Err(format!("derived clause is not RUP: {lits:?}"));
                    }
                    checked_adds += 1;
                }
            }
        }
    }
    Ok(DratStats {
        steps: steps.len(),
        inputs,
        checked_adds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3_logic::{Lit, Var};
    use plic3_sat::ProofStep;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var::new(v), pos)
    }

    fn proof(steps: Vec<ProofStep>) -> plic3_sat::Proof {
        plic3_sat::Proof::from_steps(steps)
    }

    #[test]
    fn empty_proof_without_conflict_is_rejected() {
        let p = plic3_sat::Proof::default();
        let err = check_unsat_proof(&p, &[]).unwrap_err();
        assert!(err.contains("does not derive a conflict"), "{err}");
    }

    #[test]
    fn resolution_chain_checks() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b): derive b, then the empty clause.
        let a = lit(0, true);
        let b = lit(1, true);
        let p = proof(vec![
            ProofStep::Input(vec![a, b]),
            ProofStep::Input(vec![!a, b]),
            ProofStep::Input(vec![!b]),
            ProofStep::Add(vec![b]),
            ProofStep::Add(vec![]),
        ]);
        let stats = check_unsat_proof(&p, &[]).expect("valid refutation");
        assert_eq!(stats.steps, 5);
        assert_eq!(stats.inputs, 3);
        assert!(stats.checked_adds >= 1);
    }

    #[test]
    fn non_rup_addition_is_rejected() {
        // `b` does not follow from (a ∨ b) by unit propagation; using it to
        // "derive" the empty clause must be caught by the backward pass.
        let a = lit(0, true);
        let b = lit(1, true);
        let p = proof(vec![
            ProofStep::Input(vec![a, b]),
            ProofStep::Input(vec![!b]),
            ProofStep::Add(vec![b]),
            ProofStep::Add(vec![]),
        ]);
        let err = check_unsat_proof(&p, &[]).unwrap_err();
        assert!(err.contains("not RUP"), "{err}");
    }

    #[test]
    fn deleting_a_needed_clause_breaks_the_proof() {
        let a = lit(0, true);
        let b = lit(1, true);
        let p = proof(vec![
            ProofStep::Input(vec![a, b]),
            ProofStep::Input(vec![!a, b]),
            ProofStep::Input(vec![!b]),
            ProofStep::Delete(vec![!a, b]),
            ProofStep::Add(vec![b]),
            ProofStep::Add(vec![]),
        ]);
        let err = check_unsat_proof(&p, &[]).unwrap_err();
        assert!(err.contains("not RUP"), "{err}");
    }

    #[test]
    fn deleting_an_absent_clause_is_rejected() {
        let a = lit(0, true);
        let p = proof(vec![ProofStep::Delete(vec![a])]);
        let err = check_unsat_proof(&p, &[]).unwrap_err();
        assert!(err.contains("not in the database"), "{err}");
    }

    #[test]
    fn assumption_conflicts_are_found() {
        // (¬a ∨ b) is satisfiable, but not under assumptions a ∧ ¬b.
        let a = lit(0, true);
        let b = lit(1, true);
        let p = proof(vec![
            ProofStep::Input(vec![!a, b]),
            ProofStep::Add(vec![!a, b]), // solver logs ¬core; here core = {a, ¬b}
        ]);
        let stats = check_unsat_proof(&p, &[a, !b]).expect("conflict under assumptions");
        assert!(stats.steps >= 1);
        assert!(
            check_unsat_proof(&p, &[a]).is_err(),
            "satisfiable under a alone"
        );
    }

    #[test]
    fn deletions_restore_clauses_for_earlier_checks() {
        // The derived unit `b` needs (¬a ∨ b); deleting that clause *after*
        // the addition is fine — the backward pass re-attaches it.
        let a = lit(0, true);
        let b = lit(1, true);
        let p = proof(vec![
            ProofStep::Input(vec![a, b]),
            ProofStep::Input(vec![!a, b]),
            ProofStep::Input(vec![!b]),
            ProofStep::Add(vec![b]),
            ProofStep::Delete(vec![!a, b]),
            ProofStep::Add(vec![]),
        ]);
        check_unsat_proof(&p, &[]).expect("deletion after use is harmless");
    }

    #[test]
    fn tautological_additions_check_trivially() {
        let a = lit(0, true);
        let p = proof(vec![
            ProofStep::Input(vec![a]),
            ProofStep::Input(vec![!a]),
            ProofStep::Add(vec![a, !a]),
            ProofStep::Add(vec![]),
        ]);
        check_unsat_proof(&p, &[]).expect("tautologies are trivially sound");
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let a = lit(3, true);
        let b = lit(1, false);
        assert_eq!(normalize(&[a, b, a]), vec![b, a]);
    }
}
