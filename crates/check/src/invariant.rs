//! Checking inductive-invariant certificates on the **original** circuit.
//!
//! An IC3 or k-induction `Safe` verdict comes with a [`Certificate`]: a set of
//! lemma clauses whose conjunction with the property is an inductive invariant
//! of the transition system the engine actually ran on. When preprocessing is
//! in the loop, that system is the *simplified* circuit — so a checker that
//! replays the certificate on the simplified circuit would trust every
//! preprocessing pass. This module does better: it translates the certificate
//! back through the preprocessing [`Reconstruction`] and discharges all three
//! invariant conditions (initiation, consecution, property) on a transition
//! system built from the **original, untouched** circuit.
//!
//! # Translation
//!
//! Each preprocessing pass records, for every original latch, a
//! [`SignalSource`]: kept (possibly negated) as simplified latch `n`, proved
//! constant, or dropped as irrelevant. The checker inverts that map:
//!
//! * every simplified latch gets a **representative** original latch (the
//!   first kept original latch mapping to it that survives the original
//!   circuit's own cone-of-influence reduction); lemma literals are rewritten
//!   onto the representatives with the recorded polarities;
//! * every *other* kept original latch yields an **equivalence fact** tying it
//!   to its class representative, and every constant-folded latch yields a
//!   **unit fact** — these are exactly the reachability facts preprocessing
//!   claimed, and the checker does not take them on faith: the facts are
//!   checked for initiation and consecution right alongside the lemmas, so a
//!   preprocessing soundness bug fails the certificate check loudly.
//!
//! The translated lemmas and the facts together (conjoined with the property)
//! form the candidate invariant `INV` on the original system, and the standard
//! conditions are discharged with fresh SAT queries: `I ⇒ INV`, `INV ∧ T ⇒
//! INV'`, and `INV ∧ T ⇒ P'` (plus `I ⇒ P` directly).
//!
//! With [`CheckOptions::drat`] set (and the solver's `proof-log` feature
//! compiled in), every UNSAT answer the checker relies on is itself DRAT
//! checked by [`crate::check_unsat_proof`], closing the loop: the certificate
//! check then rests only on the tiny RUP kernel and the CNF encoding.

use plic3::Certificate;
use plic3_aig::Aig;
use plic3_logic::Lit;
use plic3_prep::{Reconstruction, SignalSource};
use plic3_sat::{SatResult, Solver, StopFlag};
use plic3_ts::{TransitionSystem, Unroller};

use crate::drat::check_unsat_proof;

/// Why a certificate check did not succeed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertCheckError {
    /// The certificate is wrong: a condition is violated (with a description
    /// of the first violation found), or the certificate cannot even be
    /// expressed on the original circuit.
    Invalid(String),
    /// The check was interrupted (stop flag raised) before reaching a
    /// verdict. This is **not** evidence against the certificate.
    Interrupted,
}

impl std::fmt::Display for CertCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertCheckError::Invalid(why) => write!(f, "invalid certificate: {why}"),
            CertCheckError::Interrupted => write!(f, "certificate check interrupted"),
        }
    }
}

impl std::error::Error for CertCheckError {}

/// What a successful certificate check actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertCheckReport {
    /// Number of lemma clauses translated and checked.
    pub lemmas: usize,
    /// Number of preprocessing facts (equivalences, constants) checked.
    pub facts: usize,
    /// Total SAT queries discharged (all UNSAT on success).
    pub queries: usize,
    /// How many of those UNSAT answers were additionally DRAT checked.
    /// Zero unless [`CheckOptions::drat`] was set *and* the solver was built
    /// with the `proof-log` feature.
    pub drat_checked: usize,
}

/// Options for a certificate check.
#[derive(Clone, Debug, Default)]
pub struct CheckOptions {
    /// Cooperative cancellation: when raised, the check returns
    /// [`CertCheckError::Interrupted`] instead of a verdict.
    pub stop: Option<StopFlag>,
    /// Also DRAT-check every UNSAT answer the checker relies on. Requires the
    /// `proof-log` feature of `plic3-sat` to have any effect; silently checks
    /// nothing (and reports `drat_checked: 0`) otherwise.
    pub drat: bool,
}

/// Runs one "must be UNSAT" query, mapping `Sat` to [`CertCheckError::Invalid`]
/// and `Unknown` (a raised stop flag — the checker sets no budgets) to
/// [`CertCheckError::Interrupted`], DRAT-checking the answer when asked to.
fn expect_unsat(
    solver: &mut Solver,
    assumptions: &[Lit],
    what: &str,
    options: &CheckOptions,
    report: &mut CertCheckReport,
) -> Result<(), CertCheckError> {
    report.queries += 1;
    match solver.solve(assumptions) {
        SatResult::Sat => Err(CertCheckError::Invalid(what.to_string())),
        SatResult::Unknown => Err(CertCheckError::Interrupted),
        SatResult::Unsat => {
            if options.drat {
                if let Some(proof) = solver.proof() {
                    check_unsat_proof(proof, assumptions).map_err(|e| {
                        CertCheckError::Invalid(format!("DRAT check failed for \"{what}\": {e}"))
                    })?;
                    report.drat_checked += 1;
                }
            }
            Ok(())
        }
    }
}

fn configure(solver: &mut Solver, options: &CheckOptions) {
    if let Some(stop) = &options.stop {
        solver.set_stop_flag(stop.clone());
    }
    if options.drat {
        solver.enable_proof_tracing();
    }
}

/// Checks `cert` — produced on the *simplified* transition system
/// `simplified_ts` — against the **original** circuit, composing through the
/// preprocessing reconstruction `recon`.
///
/// On success, the certificate proves the original circuit safe: the
/// translated lemmas plus the preprocessing facts plus the property form an
/// inductive invariant of `TransitionSystem::from_aig(original)`. The check
/// shares no state with the engine or the preprocessor; it trusts only the
/// CNF encoding of the original circuit (and, with [`CheckOptions::drat`],
/// not even the checker's own SAT solver).
///
/// # Errors
///
/// [`CertCheckError::Invalid`] if any condition fails — including initiation
/// or consecution of a *preprocessing fact*, which would indicate an unsound
/// preprocessing pass rather than a bad engine. [`CertCheckError::Interrupted`]
/// if the stop flag was raised mid-check.
pub fn check_certificate_on_original(
    original: &Aig,
    recon: &Reconstruction,
    simplified_ts: &TransitionSystem,
    cert: &Certificate,
    options: &CheckOptions,
) -> Result<CertCheckReport, CertCheckError> {
    if recon.num_original_inputs() != original.num_inputs()
        || recon.num_original_latches() != original.num_latches()
    {
        return Err(CertCheckError::Invalid(format!(
            "reconstruction shape ({} inputs, {} latches) does not match the original \
             circuit ({} inputs, {} latches)",
            recon.num_original_inputs(),
            recon.num_original_latches(),
            original.num_inputs(),
            original.num_latches()
        )));
    }

    let ts_orig = TransitionSystem::from_aig(original);

    // Original AIG latch index -> original transition-system latch index
    // (None if the original system's cone-of-influence reduction dropped it).
    let mut ts_latch_of_aig: Vec<Option<usize>> = vec![None; original.num_latches()];
    for i in 0..ts_orig.num_latches() {
        ts_latch_of_aig[ts_orig.aig_latch_index(i)] = Some(i);
    }

    // Simplified AIG latch index -> representative original latch: the first
    // kept original latch that maps to it and survives in `ts_orig`. Stored as
    // (original ts latch index, polarity of the kept mapping).
    let mut rep: Vec<Option<(usize, bool)>> = vec![None; simplified_ts.aig_num_latches()];
    for (o, &slot) in ts_latch_of_aig.iter().enumerate() {
        if let SignalSource::Kept { index, negated } = recon.latch_source(o) {
            if rep[index].is_none() {
                if let Some(ts_latch) = slot {
                    rep[index] = Some((ts_latch, negated));
                }
            }
        }
    }

    // Translate the lemmas onto the representatives. A lemma literal asserts
    // "simplified latch = b"; with original = simplified XOR negated, that is
    // "representative = b XOR negated".
    let mut items: Vec<Vec<Lit>> = Vec::with_capacity(cert.lemmas.len());
    for (i, clause) in cert.lemmas.iter().enumerate() {
        let mut translated = Vec::with_capacity(clause.len());
        for lit in clause.iter() {
            let Some(simpl_latch) = simplified_ts.latch_index_of(lit.var()) else {
                return Err(CertCheckError::Invalid(format!(
                    "lemma {i} ({clause}) mentions a non-state variable"
                )));
            };
            let aig_latch = simplified_ts.aig_latch_index(simpl_latch);
            let Some((ts_latch, negated)) = rep[aig_latch] else {
                return Err(CertCheckError::Invalid(format!(
                    "lemma {i} ({clause}) mentions simplified latch {simpl_latch}, which has \
                     no kept original latch in the original circuit's cone of influence"
                )));
            };
            translated.push(Lit::new(
                ts_orig.latch_var(ts_latch),
                lit.asserted_value() != negated,
            ));
        }
        items.push(translated);
    }

    // The facts preprocessing claimed about reachable states of the original
    // circuit: class equivalences between kept latches, and constants.
    let mut facts: Vec<Vec<Lit>> = Vec::new();
    for (o, &slot) in ts_latch_of_aig.iter().enumerate() {
        let Some(ts_latch) = slot else {
            continue;
        };
        let o_var = ts_orig.latch_var(ts_latch);
        match recon.latch_source(o) {
            SignalSource::Kept { index, negated } => {
                let Some((rep_latch, rep_negated)) = rep[index] else {
                    continue;
                };
                if rep_latch == ts_latch {
                    continue; // the representative defines its class
                }
                // o = simplified XOR negated, rep = simplified XOR rep_negated,
                // hence o = rep XOR flip with flip = negated XOR rep_negated.
                let flip = negated != rep_negated;
                let rep_equal = Lit::new(ts_orig.latch_var(rep_latch), !flip);
                facts.push(vec![Lit::new(o_var, false), rep_equal]);
                facts.push(vec![Lit::new(o_var, true), !rep_equal]);
            }
            SignalSource::Constant(value) => {
                facts.push(vec![Lit::new(o_var, value)]);
            }
            SignalSource::Free => {}
        }
    }

    let mut report = CertCheckReport {
        lemmas: items.len(),
        facts: facts.len(),
        queries: 0,
        drat_checked: 0,
    };

    // --- Initiation (and I => P), on a single-frame solver. ---
    let mut init_solver = Solver::new();
    configure(&mut init_solver, options);
    init_solver.ensure_vars(ts_orig.num_vars());
    for clause in ts_orig.trans() {
        init_solver.add_clause_ref(clause);
    }
    for clause in ts_orig.init_cnf() {
        init_solver.add_clause_ref(clause);
    }
    for (kind, clauses) in [("lemma", &items), ("preprocessing fact", &facts)] {
        for (i, c) in clauses.iter().enumerate() {
            let negated: Vec<Lit> = c.iter().map(|&l| !l).collect();
            expect_unsat(
                &mut init_solver,
                &negated,
                &format!("{kind} {i} does not hold in the initial states"),
                options,
                &mut report,
            )?;
        }
    }
    expect_unsat(
        &mut init_solver,
        &ts_orig.bad_assumptions(),
        "an initial state of the original circuit violates the property",
        options,
        &mut report,
    )?;

    // --- Consecution (and INV ∧ T => P'), on a two-frame unrolling. ---
    let unroller = Unroller::new(&ts_orig);
    let mut step_solver = Solver::new();
    configure(&mut step_solver, options);
    step_solver.ensure_vars(unroller.num_vars_through(1));
    for clause in unroller.trans_clauses(0) {
        step_solver.add_clause_ref(&clause);
    }
    for clause in unroller.trans_clauses(1) {
        step_solver.add_clause_ref(&clause);
    }
    for c in items.iter().chain(facts.iter()) {
        step_solver.add_clause(c.iter().map(|&l| unroller.lit_at(0, l)));
    }
    let not_bad_now = !unroller.lit_at(0, ts_orig.bad_lit());
    for (kind, clauses) in [("lemma", &items), ("preprocessing fact", &facts)] {
        for (i, c) in clauses.iter().enumerate() {
            let mut assumptions = vec![not_bad_now];
            assumptions.extend(c.iter().map(|&l| unroller.lit_at(1, !l)));
            expect_unsat(
                &mut step_solver,
                &assumptions,
                &format!("{kind} {i} is not preserved by the original transition relation"),
                options,
                &mut report,
            )?;
        }
    }
    let mut assumptions = vec![not_bad_now, unroller.lit_at(1, ts_orig.bad_lit())];
    for &c in ts_orig.constraint_lits() {
        assumptions.push(unroller.lit_at(1, c));
    }
    expect_unsat(
        &mut step_solver,
        &assumptions,
        "the invariant does not imply the property after one step on the original circuit",
        options,
        &mut report,
    )?;

    Ok(report)
}

/// Checks a certificate produced **without** preprocessing: the engine ran
/// directly on `TransitionSystem::from_aig(aig)`. A thin wrapper over
/// [`check_certificate_on_original`] with the identity reconstruction.
pub fn check_certificate(
    aig: &Aig,
    cert: &Certificate,
    options: &CheckOptions,
) -> Result<CertCheckReport, CertCheckError> {
    let ts = TransitionSystem::from_aig(aig);
    let recon = Reconstruction::identity(aig.num_inputs(), aig.num_latches());
    check_certificate_on_original(aig, &recon, &ts, cert, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plic3::{Config, Ic3};
    use plic3_aig::AigBuilder;
    use plic3_logic::Clause;

    fn safe_counter() -> Aig {
        // A 3-bit counter saturating at 5; bad at 7 (unreachable).
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let at5 = b.vec_equals_const(&state, 5);
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            let held = b.ite(at5, *s, *n);
            b.set_latch_next(*s, held);
        }
        let bad = b.vec_equals_const(&state, 7);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn accepts_a_genuine_certificate_without_preprocessing() {
        let aig = safe_counter();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
        let result = engine.check();
        let cert = result.certificate().expect("safe").clone();
        let report =
            check_certificate(&aig, &cert, &CheckOptions::default()).expect("certificate valid");
        assert_eq!(report.lemmas, cert.lemmas.len());
        assert_eq!(report.facts, 0, "identity reconstruction has no facts");
        assert!(
            report.queries > report.lemmas,
            "initiation + consecution + property"
        );
    }

    #[test]
    fn rejects_a_tampered_certificate() {
        let aig = safe_counter();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
        let result = engine.check();
        let mut cert = result.certificate().expect("safe").clone();
        // Negate every literal of the first lemma: almost surely not inductive
        // (and if it were, it would fail initiation instead).
        let tampered: Clause = Clause::from_lits(cert.lemmas[0].iter().map(|l| !l));
        cert.lemmas[0] = tampered;
        let err = check_certificate(&aig, &cert, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CertCheckError::Invalid(_)), "{err}");
    }

    #[test]
    fn rejects_an_empty_certificate_for_a_non_inductive_property() {
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, 7);
        b.add_bad(bad);
        let aig = b.build();
        let err =
            check_certificate(&aig, &Certificate::default(), &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CertCheckError::Invalid(ref why) if why.contains("after one step")));
    }

    #[test]
    fn a_raised_stop_flag_interrupts_instead_of_failing() {
        let aig = safe_counter();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
        let result = engine.check();
        let cert = result.certificate().expect("safe").clone();
        let stop = StopFlag::new();
        stop.stop();
        let err = check_certificate(
            &aig,
            &cert,
            &CheckOptions {
                stop: Some(stop),
                drat: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, CertCheckError::Interrupted);
    }

    #[test]
    fn rejects_a_lemma_over_non_state_variables() {
        let aig = safe_counter();
        let ts = TransitionSystem::from_aig(&aig);
        let bogus = Certificate {
            lemmas: vec![Clause::unit(Lit::pos(ts.primed_var(0)))],
            level: 1,
        };
        let err = check_certificate(&aig, &bogus, &CheckOptions::default()).unwrap_err();
        assert!(matches!(err, CertCheckError::Invalid(ref why) if why.contains("non-state")));
    }

    #[test]
    fn drat_option_is_graceful_without_the_feature() {
        let aig = safe_counter();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like());
        let result = engine.check();
        let cert = result.certificate().expect("safe").clone();
        let report = check_certificate(
            &aig,
            &cert,
            &CheckOptions {
                stop: None,
                drat: true,
            },
        )
        .expect("certificate valid");
        if plic3_sat::proof_logging_compiled() {
            assert_eq!(report.drat_checked, report.queries);
        } else {
            assert_eq!(report.drat_checked, 0);
        }
    }
}
