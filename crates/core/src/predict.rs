//! CTP-based lemma prediction — the contribution of the paper (Algorithm 2).

use crate::engine::{Ic3, SolveRelative};
use plic3_logic::{Cube, Lit};

impl Ic3 {
    /// Attempts to predict a lemma for the cube `b` being blocked at `level`,
    /// using counterexamples to propagation recorded in the `failure_push`
    /// table (Algorithm 2, lines 10–27).
    ///
    /// For every *parent lemma* `¬c2` of `¬b` at `level - 1` (a lemma whose
    /// cube `c2` is a subset of `b`) that previously failed to be pushed to
    /// `level`, the recorded CTP successor `t` refutes `c2` there. The
    /// candidate cubes `c3 = c2 ∪ {l}` with `l ∈ diff(b, t)` exclude `t`
    /// (Theorem 3.3), still contain `b` (Theorem 3.4) and are only one literal
    /// larger than `c2`; a single relative-induction query validates each one.
    /// When the diff set is empty, the parent lemma itself is re-tried.
    ///
    /// Returns the predicted cube on success; on failure the caller falls back
    /// to ordinary MIC generalization.
    pub(crate) fn predict_lemma(&mut self, b: &Cube, level: usize) -> Option<Cube> {
        if level == 0 {
            return None;
        }
        let parents = self.frames.parents_of(b, level - 1);
        let mut found_failed_parent = false;
        for parent in parents {
            let key = (parent.clone(), level - 1);
            // Line 12: without a recorded push failure there is no CTP to
            // exploit for this parent.
            let Some(t) = self.failure_push.get(&key).cloned() else {
                continue;
            };
            if !found_failed_parent {
                found_failed_parent = true;
                self.stats.found_failed_parents += 1;
            }
            let ds = b.diff(&t);
            if ds.is_empty() {
                // Lines 16–20: b and t intersect, so blocking b may already
                // remove the CTP — try to push the parent lemma itself.
                self.stats.predictions += 1;
                match self.solve_relative(&parent, level - 1, true) {
                    SolveRelative::Inductive { core } => {
                        let result = if self.config.shrink_predicted {
                            core
                        } else {
                            parent.clone()
                        };
                        self.failure_push.remove(&key);
                        return Some(result);
                    }
                    SolveRelative::Cti { successor, .. } => {
                        // Line 20: remember the new CTP for later attempts.
                        self.failure_push.insert(key, successor);
                    }
                    SolveRelative::Aborted => return None,
                }
            } else {
                // Lines 22–27: grow the parent by one literal of the diff set.
                let mut remaining: Vec<Lit> = ds.iter().collect();
                while let Some(d) = remaining.pop() {
                    let candidate = parent.with_lit(d);
                    debug_assert!(
                        self.ts.cube_excludes_init(&candidate),
                        "candidate inherits initiation from the parent lemma"
                    );
                    self.stats.predictions += 1;
                    match self.solve_relative(&candidate, level - 1, true) {
                        SolveRelative::Inductive { core } => {
                            let result = if self.config.shrink_predicted {
                                core
                            } else {
                                candidate
                            };
                            return Some(result);
                        }
                        SolveRelative::Cti { successor, .. } => {
                            // Line 27: the counterexample is very likely another
                            // CTP for pushing the parent; prune the diff set to
                            // the literals that also exclude it.
                            let refreshed = b.diff(&successor);
                            remaining.retain(|l| refreshed.contains(*l));
                        }
                        SolveRelative::Aborted => return None,
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::{Config, Ic3};
    use plic3_aig::{Aig, AigBuilder};
    use plic3_logic::{Cube, Lit};

    /// A circuit whose invariant needs several related lemmas per frame, so
    /// that propagation failures (CTPs) actually occur and prediction has
    /// material to work with: a saturating counter plus a shadow register.
    fn saturating_counter(bits: usize) -> Aig {
        let mut b = AigBuilder::new();
        let state = b.latches(bits, Some(false));
        let shadow = b.latches(bits, Some(false));
        let max = (1u64 << bits) - 2;
        let at_max = b.vec_equals_const(&state, max);
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            let held = b.ite(at_max, *s, *n);
            b.set_latch_next(*s, held);
        }
        for (sh, s) in shadow.iter().zip(&state) {
            b.set_latch_next(*sh, *s);
        }
        // Bad: the counter or its shadow ever reaches the all-ones value.
        let state_all_ones = b.vec_equals_const(&state, (1 << bits) - 1);
        let shadow_all_ones = b.vec_equals_const(&shadow, (1 << bits) - 1);
        let bad = b.or(state_all_ones, shadow_all_ones);
        b.add_bad(bad);
        b.build()
    }

    #[test]
    fn prediction_preserves_the_verdict_and_produces_successes() {
        let aig = saturating_counter(4);
        let mut base = Ic3::from_aig(&aig, Config::ric3_like());
        let base_result = base.check();
        let mut predicted = Ic3::from_aig(&aig, Config::ric3_like().with_lemma_prediction(true));
        let pl_result = predicted.check();
        assert_eq!(base_result.is_safe(), pl_result.is_safe());
        if let Some(cert) = pl_result.certificate() {
            crate::verify_certificate(predicted.ts(), cert).expect("certificate verifies");
        }
        let stats = predicted.statistics();
        // The instance is crafted so push failures occur; prediction must at
        // least have been attempted.
        assert!(stats.push_failures_recorded > 0, "no CTPs were recorded");
        assert!(
            stats.found_failed_parents > 0,
            "prediction never found a failed parent lemma"
        );
        assert!(stats.predictions >= stats.successful_predictions);
    }

    #[test]
    fn predicted_lemmas_never_break_soundness_on_unsafe_instances() {
        // Unsafe variant: the saturation point is the all-ones value itself, so
        // the counter does reach it.
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            b.set_latch_next(*s, *n);
        }
        let bad = b.vec_equals_const(&state, 7);
        b.add_bad(bad);
        let aig = b.build();
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like().with_lemma_prediction(true));
        let result = engine.check();
        let trace = result.trace().expect("counter reaches 7");
        assert!(crate::verify_trace(engine.ts(), &aig, trace));
    }

    #[test]
    fn predict_lemma_uses_recorded_ctp() {
        // Unit-style test driving predict_lemma directly: fabricate a parent
        // lemma with a recorded push failure and check the candidate
        // construction (Equation 6) is applied.
        let aig = saturating_counter(3);
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like().with_lemma_prediction(true));
        // Run the engine so frames and failure_push get populated.
        let _ = engine.check();
        let stats_before = *engine.statistics();
        // Whatever happened, calling predict_lemma on a cube with no parents
        // must fail gracefully and not touch the success counter.
        let no_parent_cube = Cube::from_lits([Lit::pos(engine.ts().latch_var(0))]);
        let top = engine.level();
        let predicted = engine.predict_lemma(&no_parent_cube, top);
        if let Some(cube) = &predicted {
            assert!(engine.ts().cube_excludes_init(cube));
        }
        assert_eq!(
            engine.statistics().successful_predictions,
            stats_before.successful_predictions
        );
    }

    #[test]
    fn shrink_predicted_option_keeps_results_sound() {
        let aig = saturating_counter(4);
        let mut config = Config::ric3_like().with_lemma_prediction(true);
        config.shrink_predicted = true;
        let mut engine = Ic3::from_aig(&aig, config);
        let result = engine.check();
        if let Some(cert) = result.certificate() {
            crate::verify_certificate(engine.ts(), cert).expect("certificate verifies");
        } else {
            let trace = result.trace().expect("either safe or unsafe");
            assert!(crate::verify_trace(engine.ts(), &aig, trace));
        }
    }
}
