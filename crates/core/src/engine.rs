//! The IC3 engine: frame solvers, the blocking phase, and propagation.

use crate::frames::Frames;
use crate::{Certificate, CheckResult, Config, Statistics, UnknownReason};
use plic3_aig::Aig;
use plic3_logic::{Cube, Lit, Var};
use plic3_sat::{FaultKind, FaultSite, SatResult, Solver, SolverConfig, INJECTED_PANIC};
use plic3_ts::{Trace, TransitionSystem};
use std::collections::HashMap;
use std::time::Instant;

/// Outcome of a relative-induction query (`sat(F_i ∧ ¬c ∧ T ∧ c')`).
pub(crate) enum SolveRelative {
    /// The clause `¬c` is inductive relative to the frame. `core` is a subset of
    /// the cube's literals that suffices for the proof and still excludes the
    /// initial states (equal to the input cube when core shrinking is off).
    Inductive {
        /// Sufficient sub-cube.
        core: Cube,
    },
    /// A counterexample to induction exists.
    Cti {
        /// The predecessor state (full cube over the current-state variables).
        predecessor: Cube,
        /// The primary-input valuation of the transition.
        inputs: Cube,
        /// The successor state (over current-state variables, read from the
        /// primed variables of the model) — the state `t` of the paper.
        successor: Cube,
    },
    /// The query was interrupted (stop flag raised or solver budget hit)
    /// before a verdict; the caller must bail out without drawing conclusions.
    Aborted,
}

enum BlockOutcome {
    Blocked,
    Counterexample,
    LimitReached(UnknownReason),
}

/// The IC3/PDR safety model checker with optional CTP-based lemma prediction.
///
/// Construct it from a [`TransitionSystem`] (or directly from an [`Aig`] with
/// [`Ic3::from_aig`]), call [`Ic3::check`], and inspect the verdict and the
/// [`Statistics`] afterwards.
///
/// # Example
///
/// ```
/// use plic3::{Config, Ic3};
/// use plic3_aig::AigBuilder;
///
/// // A 2-bit counter that wraps before reaching the bad value 3 is impossible,
/// // so the circuit below (bad at 3, counter free-running) is unsafe; the same
/// // counter with the increment disabled is safe.
/// let mut b = AigBuilder::new();
/// let bits = b.latches(2, Some(false));
/// for s in &bits {
///     b.set_latch_next(*s, *s); // counter holds its value: stays at 0
/// }
/// let bad = b.vec_equals_const(&bits, 3);
/// b.add_bad(bad);
/// let mut ic3 = Ic3::from_aig(&b.build(), Config::ric3_like());
/// assert!(ic3.check().is_safe());
/// ```
pub struct Ic3 {
    pub(crate) ts: TransitionSystem,
    pub(crate) config: Config,
    pub(crate) frames: Frames,
    solvers: Vec<Solver>,
    lift_solver: Solver,
    pub(crate) stats: Statistics,
    /// The `failure_push` table of Algorithm 2: maps a lemma cube and the level
    /// it failed to be pushed from to the CTP successor state `t`.
    pub(crate) failure_push: HashMap<(Cube, usize), Cube>,
    start: Instant,
    cex_chain: Vec<(Cube, Cube)>,
    /// Pushed-lemma export hook (portfolio lemma sharing); see
    /// [`Ic3::set_lemma_sink`].
    lemma_sink: Option<LemmaSink>,
    /// Foreign-lemma source hook, drained at the import points; see
    /// [`Ic3::set_lemma_source`].
    lemma_source: Option<LemmaSource>,
    /// Scratch buffer the source fills (kept to avoid re-allocating).
    import_buffer: Vec<(Cube, usize)>,
    /// Set while foreign lemmas are being adopted, so they are not immediately
    /// re-exported (which would echo every lemma around a portfolio forever).
    importing: bool,
    /// Cubes adopted from the lemma source, remembered so a later promotion
    /// of an adopted lemma is not re-exported either (same echo concern as
    /// `importing`, one propagation phase later).
    foreign_cubes: std::collections::HashSet<Cube>,
}

/// Export hook for pushed lemmas: called with the blocked cube and the level
/// its lemma holds at. See [`Ic3::set_lemma_sink`].
pub type LemmaSink = Box<dyn FnMut(&Cube, usize) + Send>;

/// Import hook for foreign lemmas: fills the buffer with `(cube, level)`
/// candidates to adopt. See [`Ic3::set_lemma_source`].
pub type LemmaSource = Box<dyn FnMut(&mut Vec<(Cube, usize)>) + Send>;

impl Ic3 {
    /// Creates an engine for `ts` with the given configuration.
    pub fn new(ts: TransitionSystem, config: Config) -> Self {
        let frames = Frames::with_budget(config.budget.clone());
        let mut engine = Ic3 {
            ts,
            config,
            frames,
            solvers: Vec::new(),
            lift_solver: Solver::new(),
            stats: Statistics::new(),
            failure_push: HashMap::new(),
            start: Instant::now(),
            cex_chain: Vec::new(),
            lemma_sink: None,
            lemma_source: None,
            import_buffer: Vec::new(),
            importing: false,
            foreign_cubes: std::collections::HashSet::new(),
        };
        engine.lift_solver = engine.make_lift_solver();
        engine.solvers.push(engine.make_frame_solver(0));
        engine.solvers.push(engine.make_frame_solver(1));
        engine
    }

    /// Encodes `aig` into a transition system and creates an engine for it.
    pub fn from_aig(aig: &Aig, config: Config) -> Self {
        Ic3::new(TransitionSystem::from_aig(aig), config)
    }

    /// The transition system being checked.
    pub fn ts(&self) -> &TransitionSystem {
        &self.ts
    }

    /// The configuration of this engine.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Statistics of the last (or ongoing) [`Ic3::check`] call.
    pub fn statistics(&self) -> &Statistics {
        &self.stats
    }

    /// Number of lemmas currently stored across all frames.
    pub fn num_lemmas(&self) -> usize {
        self.frames.total_lemmas()
    }

    /// The current top frame level.
    pub fn level(&self) -> usize {
        self.frames.top_level()
    }

    // ------------------------------------------------------------------
    // Lemma sharing (portfolio support)
    // ------------------------------------------------------------------

    /// Installs an export hook that receives every *pushed* lemma: a lemma is
    /// exported when it lands at level ≥ 2 (it survived at least one push past
    /// `F_1`) or when the propagation phase promotes it another frame.
    ///
    /// The hook gets the blocked cube and the level the lemma holds at in
    /// *this* engine. Receivers must not trust either: soundness of an
    /// exchange rests entirely on the importer's re-check (see
    /// [`Ic3::set_lemma_source`]). Lemmas adopted from a source are not
    /// re-exported.
    pub fn set_lemma_sink(&mut self, sink: impl FnMut(&Cube, usize) + Send + 'static) {
        self.lemma_sink = Some(Box::new(sink));
    }

    /// Installs an import hook supplying foreign `(cube, level)` lemma
    /// candidates, drained at the start of every blocking iteration and before
    /// each propagation phase.
    ///
    /// Every candidate is re-validated locally before adoption — the sender is
    /// **never** trusted:
    ///
    /// 1. the cube must be over this engine's state variables,
    /// 2. it must exclude the initial states (initiation), and
    /// 3. the consecution query `F_{level-1} ∧ ¬c ∧ T ∧ c'` must be
    ///    unsatisfiable (the same query a locally produced lemma passes).
    ///
    /// Candidates failing any check are counted in
    /// [`Statistics::lemmas_import_rejected`] and dropped; adopted ones are
    /// counted in [`Statistics::lemmas_imported`]. A malicious or buggy sender
    /// therefore costs at most one SAT query per candidate and can never make
    /// the engine unsound.
    ///
    /// # Example
    ///
    /// A manual one-shot exchange between two engines on the same circuit —
    /// everything engine `a` pushed is offered to engine `b`:
    ///
    /// ```
    /// use plic3::{Config, Ic3};
    /// use plic3_aig::AigBuilder;
    /// use std::sync::{Arc, Mutex};
    ///
    /// let mut b = AigBuilder::new();
    /// let cells: Vec<_> = (0..5).map(|i| b.latch(Some(i == 0))).collect();
    /// for i in 0..5 {
    ///     b.set_latch_next(cells[i], cells[(i + 4) % 5]);
    /// }
    /// let mut clashes = Vec::new();
    /// for i in 0..5 {
    ///     let clash = b.and(cells[i], cells[(i + 1) % 5]);
    ///     clashes.push(clash);
    /// }
    /// let bad = b.or_many(&clashes);
    /// b.add_bad(bad);
    /// let aig = b.build();
    ///
    /// let shared = Arc::new(Mutex::new(Vec::new()));
    /// let mut a = Ic3::from_aig(&aig, Config::ric3_like());
    /// let sink = shared.clone();
    /// a.set_lemma_sink(move |cube, level| sink.lock().unwrap().push((cube.clone(), level)));
    /// assert!(a.check().is_safe());
    ///
    /// let mut b_engine = Ic3::from_aig(&aig, Config::ic3ref_like());
    /// let source = shared.clone();
    /// b_engine.set_lemma_source(move |buf| buf.append(&mut source.lock().unwrap()));
    /// assert!(b_engine.check().is_safe());
    /// let stats = b_engine.statistics();
    /// // Every offered lemma was adopted (after the re-check), rejected, or
    /// // skipped as already subsumed — never blindly trusted.
    /// assert!(
    ///     stats.lemmas_imported + stats.lemmas_import_rejected
    ///         <= a.statistics().lemmas_exported
    /// );
    /// ```
    pub fn set_lemma_source(
        &mut self,
        source: impl FnMut(&mut Vec<(Cube, usize)>) + Send + 'static,
    ) {
        self.lemma_source = Some(Box::new(source));
    }

    /// Drains the lemma source and adopts every candidate that passes the
    /// local initiation and consecution re-checks (see
    /// [`Ic3::set_lemma_source`] for the exact contract).
    fn import_foreign_lemmas(&mut self) {
        if self.lemma_source.is_none() {
            return;
        }
        debug_assert!(self.import_buffer.is_empty());
        let mut buffer = std::mem::take(&mut self.import_buffer);
        if let Some(source) = &mut self.lemma_source {
            source(&mut buffer);
        }
        self.importing = true;
        for (cube, level) in buffer.drain(..) {
            // Chaos-test hook: a fault here simulates a poisoned candidate
            // crashing (or stalling) the importer mid-drain.
            self.poll_fault(FaultSite::LemmaImport);
            let level = level.min(self.frames.top_level());
            if level == 0 || cube.is_empty() {
                self.stats.lemmas_import_rejected += 1;
                continue;
            }
            let ts = &self.ts;
            if cube.iter().any(|l| !ts.is_latch_var(l.var())) || !ts.cube_excludes_init(&cube) {
                self.stats.lemmas_import_rejected += 1;
                continue;
            }
            if self.frames.subsumed(&cube, level) {
                // Already known (possibly adopted earlier); no query spent.
                continue;
            }
            match self.solve_relative(&cube, level - 1, true) {
                SolveRelative::Inductive { core } => {
                    if self.lemma_sink.is_some() {
                        self.foreign_cubes.insert(core.clone());
                    }
                    self.add_lemma(core, level);
                    self.stats.lemmas_imported += 1;
                }
                SolveRelative::Cti { .. } => self.stats.lemmas_import_rejected += 1,
                // Interrupted: drop the rest, the main loop notices the stop.
                SolveRelative::Aborted => break,
            }
        }
        self.importing = false;
        self.import_buffer = buffer;
    }

    // ------------------------------------------------------------------
    // Solver management
    // ------------------------------------------------------------------

    /// The solver configuration shared by every solver this engine creates:
    /// defaults except for the search behaviour, which comes from
    /// [`Config::search`].
    fn solver_config(&self) -> SolverConfig {
        SolverConfig {
            search: self.config.search,
            ..SolverConfig::default()
        }
    }

    /// Freezes every transition-system variable so CNF inprocessing never
    /// eliminates a variable this engine assumes, reads from models, or adds
    /// lemmas over. IC3 touches the whole state/input space on every query,
    /// so up-front freezing (rather than the solver's lazy restore-and-freeze
    /// trigger) avoids restore churn; activation literals are created later
    /// and are frozen automatically the first time they are assumed.
    fn freeze_ts_vars(&self, solver: &mut Solver) {
        for v in 0..self.ts.num_vars() {
            solver.set_frozen(Var::new(v as u32), true);
        }
    }

    fn make_lift_solver(&self) -> Solver {
        let mut solver = Solver::with_config(self.solver_config());
        solver.set_stop_flag(self.config.stop.clone());
        solver.set_budget(self.config.budget.clone());
        solver.set_fault_plan(self.config.faults.clone());
        solver.ensure_vars(self.ts.num_vars());
        self.freeze_ts_vars(&mut solver);
        for clause in self.ts.trans() {
            solver.add_clause_ref(clause);
        }
        solver
    }

    fn make_frame_solver(&self, level: usize) -> Solver {
        let mut solver = Solver::with_config(self.solver_config());
        solver.set_stop_flag(self.config.stop.clone());
        solver.set_budget(self.config.budget.clone());
        solver.set_fault_plan(self.config.faults.clone());
        solver.ensure_vars(self.ts.num_vars());
        self.freeze_ts_vars(&mut solver);
        for clause in self.ts.trans() {
            solver.add_clause_ref(clause);
        }
        if level == 0 {
            for clause in self.ts.init_cnf() {
                solver.add_clause_ref(clause);
            }
        } else {
            for cube in self.frames.cubes_at_or_above(level) {
                solver.add_clause_ref(&cube.negate());
            }
        }
        solver
    }

    /// Rebuilds a frame solver when too many released activation variables are
    /// still pending inside it. Activation literals are normally recycled by
    /// the solver itself (`release_var` + its internal simplification), so the
    /// pending count stays far below `solver_rebuild_threshold` and this is a
    /// safety valve rather than the steady-state cleanup path it used to be.
    fn rebuild_solver_if_needed(&mut self, level: usize) {
        if self.solvers[level].num_released_pending() >= self.config.solver_rebuild_threshold {
            self.solvers[level] = self.make_frame_solver(level);
        }
    }

    fn extend_frames(&mut self) {
        let new_top = self.frames.push_frame();
        self.solvers.push(self.make_frame_solver(new_top));
    }

    pub(crate) fn add_lemma(&mut self, cube: Cube, level: usize) {
        debug_assert!(
            self.ts.cube_excludes_init(&cube),
            "lemma cube must exclude the initial states"
        );
        if self.frames.add(cube.clone(), level) {
            self.stats.lemmas_added += 1;
            let clause = cube.negate();
            for l in 1..=level {
                self.solvers[l].add_clause_ref(&clause);
            }
            // A lemma landing at level ≥ 2 survived at least one push past
            // F_1; those are the ones worth offering to portfolio peers.
            if level >= 2 && !self.importing {
                if let Some(sink) = &mut self.lemma_sink {
                    sink(&cube, level);
                    self.stats.lemmas_exported += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // SAT queries
    // ------------------------------------------------------------------

    /// The relative-induction query `sat(F_level ∧ ¬cube ∧ T ∧ cube')`.
    ///
    /// When `include_negated_cube` is false the `¬cube` conjunct is omitted
    /// (used for propagation, where the lemma is already part of the frame).
    pub(crate) fn solve_relative(
        &mut self,
        cube: &Cube,
        level: usize,
        include_negated_cube: bool,
    ) -> SolveRelative {
        self.stats.relative_queries += 1;
        self.rebuild_solver_if_needed(level);
        let ts = &self.ts;
        let primed: Vec<Lit> = cube.iter().map(|l| ts.prime_lit(l)).collect();
        let frame_solver = &mut self.solvers[level];
        let mut assumptions = Vec::with_capacity(primed.len() + 1);
        let mut activation = None;
        if include_negated_cube {
            let act = Lit::pos(frame_solver.new_var());
            let mut clause: Vec<Lit> = vec![!act];
            clause.extend(cube.iter().map(|l| !l));
            frame_solver.add_clause(clause);
            assumptions.push(act);
            activation = Some(act);
        }
        assumptions.extend(primed.iter().copied());
        let result = frame_solver.solve(&assumptions);
        let outcome = match result {
            SatResult::Unsat => {
                let core = if self.config.core_shrink {
                    let solver = &*frame_solver;
                    let mut shrunk: Cube = cube
                        .iter()
                        .filter(|&l| solver.core_contains(ts.prime_lit(l)))
                        .collect();
                    if ts.cube_intersects_init(&shrunk) {
                        // Repair: add back a literal that conflicts with the
                        // initial cube (one exists because `cube` excludes init).
                        let repair = cube
                            .diff(ts.init_cube())
                            .iter()
                            .next()
                            .expect("cube excludes init, so the diff set is non-empty");
                        shrunk = shrunk.with_lit(repair);
                    }
                    shrunk
                } else {
                    cube.clone()
                };
                SolveRelative::Inductive { core }
            }
            SatResult::Sat => {
                // One borrow of the packed model buffer serves all three cube
                // extractions (and the predecessor lift that follows), instead
                // of re-querying the solver literal by literal.
                let model = frame_solver.model();
                SolveRelative::Cti {
                    predecessor: ts.state_cube_from(|v| model.value(v)),
                    inputs: ts.input_cube_from(|v| model.value(v)),
                    successor: ts.next_state_cube_from(|v| model.value(v)),
                }
            }
            // No model exists to read CTI cubes from; surface the interruption.
            SatResult::Unknown => SolveRelative::Aborted,
        };
        if let Some(act) = activation {
            // Retire the activation literal: the solver asserts ¬act, removes
            // the activation clause during its next simplification, and hands
            // the variable back through a later `new_var`.
            frame_solver.release_var(!act);
        }
        outcome
    }

    /// Looks for a state in `F_level` satisfying the bad literal (and all
    /// invariant constraints). Returns the full state cube and the input
    /// valuation under which the violation is observed.
    fn solve_frame_bad(&mut self, level: usize) -> Option<(Cube, Cube)> {
        self.rebuild_solver_if_needed(level);
        let assumptions = self.ts.bad_assumptions();
        let solver = &mut self.solvers[level];
        match solver.solve(&assumptions) {
            SatResult::Sat => {
                let model = solver.model();
                let state = self.ts.state_cube_from(|v| model.value(v));
                let inputs = self.ts.input_cube_from(|v| model.value(v));
                Some((state, inputs))
            }
            _ => None,
        }
    }

    /// Shrinks a predecessor obligation by an unsat-core lifting query: the
    /// returned cube contains the original state and every state in it reaches
    /// `successor` in one step under `inputs`.
    fn lift_predecessor(&mut self, state: &Cube, inputs: &Cube, successor: &Cube) -> Cube {
        self.stats.lift_queries += 1;
        if self.lift_solver.num_released_pending() >= self.config.solver_rebuild_threshold {
            self.lift_solver = self.make_lift_solver();
        }
        let act = Lit::pos(self.lift_solver.new_var());
        let mut clause: Vec<Lit> = vec![!act];
        clause.extend(successor.iter().map(|l| !self.ts.prime_lit(l)));
        self.lift_solver.add_clause(clause);
        let mut assumptions = vec![act];
        assumptions.extend(state.iter());
        assumptions.extend(inputs.iter());
        let result = self.lift_solver.solve(&assumptions);
        let lifted = if result == SatResult::Unsat {
            let solver = &self.lift_solver;
            let lifted: Cube = state.iter().filter(|&l| solver.core_contains(l)).collect();
            if lifted.is_empty() {
                state.clone()
            } else {
                lifted
            }
        } else {
            // Should not happen for a deterministic transition function; fall
            // back to the unlifted state.
            state.clone()
        };
        self.lift_solver.release_var(!act);
        lifted
    }

    fn current_conflicts(&self) -> u64 {
        self.solvers
            .iter()
            .map(|f| f.stats().conflicts)
            .sum::<u64>()
            + self.lift_solver.stats().conflicts
    }

    fn check_limits(&self) -> Option<UnknownReason> {
        if self.config.stop.is_stopped() {
            return Some(UnknownReason::Cancelled);
        }
        if self.config.budget.is_exhausted() {
            return Some(UnknownReason::MemoryOut);
        }
        if let Some(max) = self.config.limits.max_time {
            if self.start.elapsed() >= max {
                return Some(UnknownReason::Timeout);
            }
        }
        if let Some(max) = self.config.limits.max_conflicts {
            if self.current_conflicts() >= max {
                return Some(UnknownReason::ConflictLimit);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Blocking phase
    // ------------------------------------------------------------------

    fn block(&mut self, cube: Cube, level: usize) -> BlockOutcome {
        if level == 0 {
            return BlockOutcome::Counterexample;
        }
        self.stats.obligations += 1;
        loop {
            if let Some(reason) = self.check_limits() {
                return BlockOutcome::LimitReached(reason);
            }
            match self.solve_relative(&cube, level - 1, true) {
                SolveRelative::Inductive { core } => {
                    let started = Instant::now();
                    let mic = self.generalize(core, level);
                    self.stats.generalize_time += started.elapsed();
                    let final_level = self.push_lemma_forward(&mic, level);
                    self.add_lemma(mic, final_level);
                    return BlockOutcome::Blocked;
                }
                SolveRelative::Cti {
                    predecessor,
                    inputs,
                    ..
                } => {
                    let pred = if self.config.lift_predecessors {
                        self.lift_predecessor(&predecessor, &inputs, &cube)
                    } else {
                        predecessor
                    };
                    if self.ts.cube_intersects_init(&pred) {
                        // The obligation cube reaches back into the initial
                        // states: a genuine counterexample starts here.
                        self.cex_chain.push((pred, inputs));
                        return BlockOutcome::Counterexample;
                    }
                    match self.block(pred.clone(), level - 1) {
                        BlockOutcome::Blocked => continue,
                        BlockOutcome::Counterexample => {
                            self.cex_chain.push((pred, inputs));
                            return BlockOutcome::Counterexample;
                        }
                        limit @ BlockOutcome::LimitReached(_) => return limit,
                    }
                }
                SolveRelative::Aborted => {
                    return BlockOutcome::LimitReached(self.interruption_reason());
                }
            }
        }
    }

    /// The reason to report when a SAT query came back interrupted: whichever
    /// limit fired, or a cancellation when the stop flag was raised directly.
    fn interruption_reason(&self) -> UnknownReason {
        self.check_limits().unwrap_or(UnknownReason::Cancelled)
    }

    /// Executes the scheduled injected fault for `site`, if one is due.
    /// Compiles to nothing unless the `fault-injection` feature is on.
    #[inline]
    fn poll_fault(&self, site: FaultSite) {
        match self.config.faults.poll(site) {
            None => {}
            Some(FaultKind::Panic) => panic!("{INJECTED_PANIC} at {site:?}"),
            Some(FaultKind::MemOut) => self.config.budget.exhaust(),
            Some(FaultKind::Cancel) => self.config.stop.stop(),
        }
    }

    /// Pushes the generalized lemma forward as far as it stays relatively
    /// inductive (Algorithm 1 lines 19–22). When a push fails, the CTP
    /// successor state is recorded in the `failure_push` table (Algorithm 2
    /// line 38). Returns the final level the lemma holds at.
    pub(crate) fn push_lemma_forward(&mut self, cube: &Cube, start_level: usize) -> usize {
        let mut level = start_level;
        while level < self.frames.top_level() {
            match self.solve_relative(cube, level, false) {
                SolveRelative::Inductive { .. } => level += 1,
                SolveRelative::Cti { successor, .. } => {
                    self.failure_push.insert((cube.clone(), level), successor);
                    self.stats.push_failures_recorded += 1;
                    break;
                }
                // Stop pushing; the enclosing phase notices the interruption.
                SolveRelative::Aborted => break,
            }
        }
        level
    }

    // ------------------------------------------------------------------
    // Propagation phase
    // ------------------------------------------------------------------

    fn propagate(&mut self) -> Result<Option<Certificate>, UnknownReason> {
        // Algorithm 2 line 44: the failure_push table is rebuilt from scratch on
        // every propagation phase.
        self.failure_push.clear();
        let top = self.frames.top_level();
        for level in 1..top {
            let cubes: Vec<Cube> = self.frames.delta(level).to_vec();
            for cube in cubes {
                if let Some(reason) = self.check_limits() {
                    return Err(reason);
                }
                match self.solve_relative(&cube, level, false) {
                    SolveRelative::Inductive { .. } => {
                        if self.frames.promote(&cube, level) {
                            self.solvers[level + 1].add_clause_ref(&cube.negate());
                            self.stats.lemmas_propagated += 1;
                            // Adopted foreign lemmas are not re-broadcast on
                            // promotion; peers already know them.
                            if !self.foreign_cubes.contains(&cube) {
                                if let Some(sink) = &mut self.lemma_sink {
                                    sink(&cube, level + 1);
                                    self.stats.lemmas_exported += 1;
                                }
                            }
                        }
                    }
                    SolveRelative::Cti { successor, .. } => {
                        // Record the counterexample to propagation (CTP).
                        self.failure_push.insert((cube.clone(), level), successor);
                        self.stats.push_failures_recorded += 1;
                    }
                    SolveRelative::Aborted => return Err(self.interruption_reason()),
                }
            }
            if self.frames.is_fixpoint_at(level) {
                let lemmas = self
                    .frames
                    .cubes_at_or_above(level + 1)
                    .map(Cube::negate)
                    .collect();
                return Ok(Some(Certificate { lemmas, level }));
            }
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs IC3 until a verdict is reached or a resource limit fires.
    ///
    /// The result is one of:
    ///
    /// * [`CheckResult::Safe`] with an inductive-invariant [`Certificate`]
    ///   (verify it with [`crate::verify_certificate`]),
    /// * [`CheckResult::Unsafe`] with a counterexample [`Trace`] (replay it with
    ///   [`Trace::replay_on_aig`] or [`crate::verify_trace`]),
    /// * [`CheckResult::Unknown`] when a limit from [`Config::limits`] fired.
    pub fn check(&mut self) -> CheckResult {
        self.start = Instant::now();
        let result = self.run();
        if let CheckResult::Safe(cert) = &result {
            self.stats.certificate_lemmas = cert.lemmas.len() as u64;
            if self.config.certify {
                // Self-check before reporting: an invalid certificate is an
                // engine bug, and panicking loudly (the harness contains it as
                // a crash) beats handing out an unproven Safe verdict.
                let certify_started = Instant::now();
                if let Err(why) = crate::verify_certificate(&self.ts, cert) {
                    panic!("IC3 produced an invalid certificate: {why}");
                }
                self.stats.certify_time = certify_started.elapsed();
            }
        }
        self.stats.runtime = self.start.elapsed();
        self.stats.max_level = self.frames.top_level();
        self.stats.sat_conflicts = self.current_conflicts();
        self.stats.memory_used = self.config.budget.used();
        self.stats.memory_limit = self.config.budget.limit();
        result
    }

    fn run(&mut self) -> CheckResult {
        // 0-step check: a bad state among the initial states.
        if let Some((state, inputs)) = self.solve_frame_bad(0) {
            return CheckResult::Unsafe(Trace::new(vec![state], vec![inputs]));
        }
        loop {
            let level = self.frames.top_level();
            // Blocking phase: make F_level exclude all bad states.
            self.import_foreign_lemmas();
            while let Some((bad_state, bad_inputs)) = self.solve_frame_bad(level) {
                if let Some(reason) = self.check_limits() {
                    return CheckResult::Unknown(reason);
                }
                self.cex_chain.clear();
                match self.block(bad_state.clone(), level) {
                    BlockOutcome::Blocked => {}
                    BlockOutcome::Counterexample => {
                        let mut states: Vec<Cube> =
                            self.cex_chain.iter().map(|(s, _)| s.clone()).collect();
                        let mut inputs: Vec<Cube> =
                            self.cex_chain.iter().map(|(_, i)| i.clone()).collect();
                        states.push(bad_state);
                        inputs.push(bad_inputs);
                        return CheckResult::Unsafe(Trace::new(states, inputs));
                    }
                    BlockOutcome::LimitReached(reason) => return CheckResult::Unknown(reason),
                }
                self.import_foreign_lemmas();
            }
            if let Some(reason) = self.check_limits() {
                return CheckResult::Unknown(reason);
            }
            if let Some(max_frames) = self.config.limits.max_frames {
                if self.frames.top_level() >= max_frames {
                    return CheckResult::Unknown(UnknownReason::FrameLimit);
                }
            }
            // Propagation phase over a fresh top frame.
            self.extend_frames();
            self.import_foreign_lemmas();
            match self.propagate() {
                Ok(Some(certificate)) => return CheckResult::Safe(certificate),
                Ok(None) => {}
                Err(reason) => return CheckResult::Unknown(reason),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_certificate, verify_trace};
    use plic3_aig::AigBuilder;

    /// An n-bit counter with an enable input; bad when the counter reaches
    /// `bad_at`. Safe iff `bad_at >= 2^n` cannot be represented (never) — i.e.
    /// this family is always unsafe unless the counter cannot count (enable
    /// forced low elsewhere). We use it for unsafe cases.
    fn counter_aig(bits: usize, bad_at: u64, free_running: bool) -> Aig {
        let mut b = AigBuilder::new();
        let enable = if free_running {
            b.constant_true()
        } else {
            b.input()
        };
        let state = b.latches(bits, Some(false));
        let inc = b.vec_increment(&state);
        for (s, n) in state.iter().zip(&inc) {
            let next = b.ite(enable, *n, *s);
            b.set_latch_next(*s, next);
        }
        let bad = b.vec_equals_const(&state, bad_at);
        b.add_bad(bad);
        b.build()
    }

    /// A safe circuit: a one-hot token ring. The bad state (two tokens at once)
    /// is unreachable from the one-hot initial state.
    fn token_ring_aig(n: usize) -> Aig {
        let mut b = AigBuilder::new();
        let cells: Vec<_> = (0..n).map(|i| b.latch(Some(i == 0))).collect();
        for i in 0..n {
            let prev = cells[(i + n - 1) % n];
            b.set_latch_next(cells[i], prev);
        }
        // Bad: two adjacent cells both hold the token.
        let mut bads = Vec::new();
        for i in 0..n {
            let pair = b.and(cells[i], cells[(i + 1) % n]);
            bads.push(pair);
        }
        let bad = b.or_many(&bads);
        b.add_bad(bad);
        b.build()
    }

    fn check_with(aig: &Aig, config: Config) -> (CheckResult, TransitionSystem) {
        let mut engine = Ic3::from_aig(aig, config);
        let result = engine.check();
        (result, engine.ts().clone())
    }

    #[test]
    fn safe_token_ring_produces_valid_certificate() {
        for config in [
            Config::ric3_like(),
            Config::ric3_like().with_lemma_prediction(true),
            Config::ic3ref_like(),
            Config::cav23_like(),
        ] {
            let aig = token_ring_aig(5);
            let (result, ts) = check_with(&aig, config);
            let cert = result.certificate().expect("token ring is safe");
            verify_certificate(&ts, cert).expect("certificate must verify");
        }
    }

    #[test]
    fn certify_mode_self_checks_safe_verdicts() {
        let aig = token_ring_aig(5);
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like().with_certify(true));
        let result = engine.check();
        let cert = result.certificate().expect("token ring is safe");
        // check() already ran verify_certificate internally (a failure would
        // have panicked); the statistics must record the work.
        assert_eq!(
            engine.statistics().certificate_lemmas,
            cert.lemmas.len() as u64
        );
        // Certify mode leaves unsafe runs untouched.
        let unsafe_aig = counter_aig(3, 5, true);
        let mut engine = Ic3::from_aig(&unsafe_aig, Config::ric3_like().with_certify(true));
        assert!(engine.check().is_unsafe());
        assert_eq!(engine.statistics().certificate_lemmas, 0);
    }

    #[test]
    fn unsafe_counter_produces_replayable_trace() {
        for config in [
            Config::ric3_like(),
            Config::ric3_like().with_lemma_prediction(true),
            Config::ic3ref_like().with_lemma_prediction(true),
        ] {
            let aig = counter_aig(3, 5, false);
            let (result, ts) = check_with(&aig, config);
            let trace = result.trace().expect("counter reaches 5");
            assert!(verify_trace(&ts, &aig, trace), "trace must replay");
            assert!(trace.len() >= 5, "needs at least 5 steps to reach 5");
        }
    }

    #[test]
    fn free_running_counter_is_unsafe_even_without_inputs() {
        let aig = counter_aig(3, 7, true);
        let (result, ts) = check_with(&aig, Config::ric3_like());
        let trace = result.trace().expect("reaches 7");
        assert!(verify_trace(&ts, &aig, trace));
    }

    #[test]
    fn initially_bad_circuit_gives_zero_step_trace() {
        let mut b = AigBuilder::new();
        let l = b.latch(Some(true));
        b.set_latch_next(l, l);
        b.add_bad(l);
        let aig = b.build();
        let (result, ts) = check_with(&aig, Config::ric3_like());
        let trace = result.trace().expect("bad at reset");
        assert_eq!(trace.len(), 0);
        assert!(verify_trace(&ts, &aig, trace));
    }

    #[test]
    fn trivially_safe_circuit_without_property() {
        let mut b = AigBuilder::new();
        let l = b.latch(Some(false));
        b.set_latch_next(l, l);
        let aig = b.build();
        let (result, ts) = check_with(&aig, Config::ric3_like());
        let cert = result.certificate().expect("no bad literal means safe");
        verify_certificate(&ts, cert).expect("certificate verifies");
    }

    #[test]
    fn unreachable_bad_value_is_safe_with_prediction() {
        // A 3-bit counter that resets to 0 when it reaches 5 can never be 6 or 7.
        let mut b = AigBuilder::new();
        let state = b.latches(3, Some(false));
        let inc = b.vec_increment(&state);
        let at5 = b.vec_equals_const(&state, 5);
        let zero = b.constant_false();
        for (s, n) in state.iter().zip(&inc) {
            let wrapped = b.ite(at5, zero, *n);
            b.set_latch_next(*s, wrapped);
        }
        let bad = b.vec_equals_const(&state, 7);
        b.add_bad(bad);
        let aig = b.build();
        for config in [
            Config::ric3_like(),
            Config::ric3_like().with_lemma_prediction(true),
            Config::pdr_like().with_lemma_prediction(true),
        ] {
            let (result, ts) = check_with(&aig, config);
            let cert = result.certificate().expect("7 unreachable");
            verify_certificate(&ts, cert).expect("certificate verifies");
        }
    }

    #[test]
    fn frame_limit_reports_unknown() {
        // A deep counterexample with a tiny frame budget.
        let aig = counter_aig(4, 12, true);
        let config = Config::ric3_like().with_max_frames(3);
        let (result, _) = check_with(&aig, config);
        assert_eq!(result, CheckResult::Unknown(UnknownReason::FrameLimit));
    }

    #[test]
    fn timeout_reports_unknown() {
        let aig = token_ring_aig(14);
        let config = Config::ric3_like().with_max_time(std::time::Duration::ZERO);
        let (result, _) = check_with(&aig, config);
        assert!(matches!(
            result,
            CheckResult::Unknown(UnknownReason::Timeout) | CheckResult::Unsafe(_)
        ));
        // With a zero budget the run must never (incorrectly) claim Safe
        // without a certificate check; Unsafe is impossible for this circuit,
        // so the only acceptable outcome is a timeout.
        assert_eq!(result, CheckResult::Unknown(UnknownReason::Timeout));
    }

    #[test]
    fn pre_raised_stop_flag_cancels_immediately() {
        let aig = token_ring_aig(8);
        let stop = crate::StopFlag::new();
        stop.stop();
        let config = Config::ric3_like().with_stop_flag(stop);
        let (result, _) = check_with(&aig, config);
        assert_eq!(result, CheckResult::Unknown(UnknownReason::Cancelled));
    }

    #[test]
    fn stop_flag_raised_from_another_thread_interrupts_the_run() {
        // A ring large enough that the proof takes visible time; the raiser
        // fires shortly after the run starts. Either the engine is interrupted
        // (the expected outcome) or it legitimately finished first — both are
        // sound; what must never happen is an unverifiable verdict.
        let aig = token_ring_aig(12);
        let stop = crate::StopFlag::new();
        let raiser = stop.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            raiser.stop();
        });
        let config = Config::ric3_like().with_stop_flag(stop);
        let mut engine = Ic3::from_aig(&aig, config);
        let result = engine.check();
        handle.join().expect("raiser thread");
        match result {
            CheckResult::Unknown(UnknownReason::Cancelled) => {}
            CheckResult::Safe(cert) => {
                verify_certificate(engine.ts(), &cert).expect("finished proofs still verify");
            }
            other => panic!("cancellation produced {other}"),
        }
    }

    #[test]
    fn statistics_track_prediction_counters() {
        let aig = token_ring_aig(6);
        let mut engine = Ic3::from_aig(&aig, Config::ric3_like().with_lemma_prediction(true));
        let result = engine.check();
        assert!(result.is_safe());
        let stats = engine.statistics();
        assert!(stats.generalizations > 0);
        assert!(stats.relative_queries > 0);
        // When prediction is enabled the counters stay consistent.
        assert!(stats.successful_predictions <= stats.predictions || stats.predictions == 0);
        assert!(stats.successful_predictions <= stats.generalizations);
        // And the baseline never predicts.
        let mut baseline = Ic3::from_aig(&aig, Config::ric3_like());
        let _ = baseline.check();
        assert_eq!(baseline.statistics().predictions, 0);
        assert_eq!(baseline.statistics().successful_predictions, 0);
    }

    #[test]
    fn results_agree_across_configurations() {
        // Differential testing across configurations on a mixed set of circuits.
        let circuits: Vec<(Aig, bool)> = vec![
            (token_ring_aig(4), true),
            (counter_aig(2, 3, false), false),
            (counter_aig(3, 6, true), false),
            (token_ring_aig(7), true),
        ];
        let configs = [
            Config::ric3_like(),
            Config::ric3_like().with_lemma_prediction(true),
            Config::ic3ref_like(),
            Config::ic3ref_like().with_lemma_prediction(true),
            Config::cav23_like(),
            Config::pdr_like(),
        ];
        for (aig, expect_safe) in &circuits {
            for config in &configs {
                let (result, ts) = check_with(aig, config.clone());
                assert_eq!(
                    result.is_safe(),
                    *expect_safe,
                    "config {config:?} disagrees on expected verdict"
                );
                if let Some(cert) = result.certificate() {
                    verify_certificate(&ts, cert).expect("certificate verifies");
                }
                if let Some(trace) = result.trace() {
                    assert!(verify_trace(&ts, aig, trace));
                }
            }
        }
    }
}
