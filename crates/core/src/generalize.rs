//! Inductive generalization: MIC, `ctgDown`, and literal orderings.

use crate::config::{GeneralizeMode, LiteralOrdering};
use crate::engine::{Ic3, SolveRelative};
use plic3_logic::{Cube, Lit, SplitMix64};
use std::collections::HashSet;

impl Ic3 {
    /// Generalizes a blocked cube into (the cube of) a lemma for `level`.
    ///
    /// This is the `generalize` of Algorithm 2: when lemma prediction is
    /// enabled, the CTP-based prediction is attempted first; if it produces a
    /// validated lemma, the costly literal-dropping loop is skipped entirely.
    /// Otherwise the configured MIC variant runs.
    ///
    /// The input cube must already be inductive relative to `level - 1` and
    /// exclude the initial states; the result preserves both properties.
    pub(crate) fn generalize(&mut self, cube: Cube, level: usize) -> Cube {
        self.stats.generalizations += 1;
        if self.config.lemma_prediction {
            if let Some(predicted) = self.predict_lemma(&cube, level) {
                self.stats.successful_predictions += 1;
                return predicted;
            }
        }
        self.mic(cube, level, 1)
    }

    /// The minimal-inductive-clause loop: tries to drop each literal, keeping
    /// the drop when the shrunk cube can be shown (relatively) inductive.
    pub(crate) fn mic(&mut self, mut cube: Cube, level: usize, depth: usize) -> Cube {
        let order = self.drop_order(&cube, level);
        for lit in order {
            if cube.len() <= 1 {
                break;
            }
            if !cube.contains(lit) {
                // Already removed by an earlier join or core shrink.
                continue;
            }
            let candidate = cube.without_lit(lit);
            self.stats.mic_drop_attempts += 1;
            if let Some(better) = self.try_down(candidate, level, depth) {
                self.stats.mic_drops += 1;
                cube = better;
            }
        }
        cube
    }

    /// The `down` / `ctgDown` procedure: strengthens `cube` until it is
    /// inductive relative to `level - 1`, by joining with counterexamples to
    /// induction and (in [`GeneralizeMode::CtgDown`]) by blocking
    /// counterexamples to generalization one frame below. Returns `None` when
    /// the candidate cannot be repaired (the dropped literal must be kept).
    fn try_down(&mut self, mut cube: Cube, level: usize, depth: usize) -> Option<Cube> {
        let (ctg_max_depth, ctg_max) = match self.config.generalize {
            GeneralizeMode::Mic => (0, 0),
            GeneralizeMode::CtgDown {
                max_depth,
                max_ctgs,
            } => (max_depth, max_ctgs),
        };
        let mut ctgs = 0usize;
        let mut joins = 0usize;
        loop {
            if !self.ts().cube_excludes_init(&cube) {
                return None;
            }
            match self.solve_relative(&cube, level - 1, true) {
                SolveRelative::Inductive { core } => return Some(core),
                SolveRelative::Cti {
                    predecessor: ctg, ..
                } => {
                    if ctgs < ctg_max
                        && depth <= ctg_max_depth
                        && level > 1
                        && self.ts().cube_excludes_init(&ctg)
                    {
                        // Try to block the CTG one frame below; if it works the
                        // dropped-literal candidate gets another chance.
                        if let SolveRelative::Inductive { core } =
                            self.solve_relative(&ctg, level - 1, true)
                        {
                            ctgs += 1;
                            self.stats.ctg_blocked += 1;
                            let mic = self.mic(core, level, depth + 1);
                            let final_level = self.push_lemma_forward(&mic, level);
                            self.add_lemma(mic, final_level);
                            continue;
                        }
                    }
                    // Join with the counterexample state (plain `down`).
                    ctgs = 0;
                    joins += 1;
                    let joined = cube.intersection(&ctg);
                    if joined.is_empty() || joined.len() == cube.len() || joins > cube.len() + 1 {
                        return None;
                    }
                    cube = joined;
                }
                // Keep the dropped literal; the enclosing blocking phase will
                // observe the interruption on its next query.
                SolveRelative::Aborted => return None,
            }
        }
    }

    /// The order in which MIC attempts to drop literals.
    fn drop_order(&self, cube: &Cube, level: usize) -> Vec<Lit> {
        let mut lits: Vec<Lit> = cube.iter().collect();
        match self.config.ordering {
            LiteralOrdering::Ascending => {}
            LiteralOrdering::Descending => lits.reverse(),
            LiteralOrdering::ParentGuided => {
                // CAV'23 heuristic: literals that do not occur in any parent
                // lemma of the previous frame are dropped first, so the
                // surviving literals look like a lemma that already propagates.
                let parents = self.frames.parents_of(cube, level.saturating_sub(1));
                let mut in_parent: HashSet<Lit> = HashSet::new();
                for p in &parents {
                    in_parent.extend(p.iter());
                }
                lits.sort_by_key(|l| u8::from(in_parent.contains(l)));
            }
            LiteralOrdering::Seeded(seed) => {
                // Key the permutation on the cube itself so repeated calls on
                // the same cube agree (the engine stays deterministic) while
                // different cubes — and different seeds — get different orders.
                let mut key = seed ^ 0x9e37_79b9_7f4a_7c15;
                for l in &lits {
                    key = key.rotate_left(7) ^ l.code() as u64;
                }
                let mut rng = SplitMix64::new(key);
                for i in (1..lits.len()).rev() {
                    let j = rng.gen_range(0..i + 1);
                    lits.swap(i, j);
                }
            }
        }
        lits
    }
}

#[cfg(test)]
mod tests {
    use crate::{Config, GeneralizeMode, Ic3, LiteralOrdering};
    use plic3_aig::AigBuilder;

    /// A shift register whose head is always 0: every lemma generalizes well,
    /// which gives the MIC loop plenty of work.
    fn shift_register(n: usize) -> plic3_aig::Aig {
        let mut b = AigBuilder::new();
        let cells = b.latches(n, Some(false));
        let zero = b.constant_false();
        for i in 0..n {
            let prev = if i == 0 { zero } else { cells[i - 1] };
            b.set_latch_next(cells[i], prev);
        }
        b.add_bad(cells[n - 1]);
        b.build()
    }

    #[test]
    fn all_generalization_modes_prove_the_shift_register() {
        for (mode, ordering) in [
            (GeneralizeMode::Mic, LiteralOrdering::Ascending),
            (GeneralizeMode::Mic, LiteralOrdering::Descending),
            (GeneralizeMode::Mic, LiteralOrdering::ParentGuided),
            (GeneralizeMode::Mic, LiteralOrdering::Seeded(0x5eed)),
            (GeneralizeMode::Mic, LiteralOrdering::Seeded(42)),
            (
                GeneralizeMode::CtgDown {
                    max_depth: 1,
                    max_ctgs: 3,
                },
                LiteralOrdering::Ascending,
            ),
        ] {
            let aig = shift_register(6);
            let config = Config::ric3_like()
                .with_generalize(mode)
                .with_ordering(ordering);
            let mut engine = Ic3::from_aig(&aig, config);
            let result = engine.check();
            let cert = result.certificate().expect("shift register is safe");
            crate::verify_certificate(engine.ts(), cert).expect("valid certificate");
        }
    }

    #[test]
    fn generalization_produces_short_lemmas() {
        // For the shift register the invariant lemmas are single-literal
        // clauses (each cell is always 0); MIC should find lemmas much shorter
        // than the full state cube. Core shrinking is disabled so the work is
        // actually done by the literal-dropping loop.
        let aig = shift_register(8);
        let mut config = Config::ric3_like();
        config.core_shrink = false;
        let mut engine = Ic3::from_aig(&aig, config);
        let result = engine.check();
        let cert = result.certificate().expect("safe");
        let avg_len: f64 = cert.lemmas.iter().map(|c| c.len() as f64).sum::<f64>()
            / cert.lemmas.len().max(1) as f64;
        assert!(
            avg_len < 4.0,
            "expected strongly generalized lemmas, average length {avg_len}"
        );
        assert!(engine.statistics().mic_drops > 0);
    }

    #[test]
    fn drop_statistics_are_recorded() {
        let aig = shift_register(5);
        let mut engine = Ic3::from_aig(&aig, Config::ic3ref_like());
        let _ = engine.check();
        let stats = engine.statistics();
        assert!(stats.mic_drop_attempts >= stats.mic_drops);
        assert!(stats.generalizations > 0);
    }
}
