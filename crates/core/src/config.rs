//! Configuration of the IC3 engine.

use plic3_sat::{FaultPlan, ResourceBudget, SearchConfig, StopFlag};
use std::time::Duration;

/// How blocked cubes are generalized into lemmas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GeneralizeMode {
    /// Plain MIC: drop literals one at a time, each drop validated by a single
    /// relative-induction query (Algorithm 1 of the paper, i.e. the original
    /// IC3 of Bradley).
    Mic,
    /// MIC with counterexamples-to-generalization (Hassan, Bradley, Somenzi,
    /// FMCAD'13): when a drop fails, try to block the CTG one frame below
    /// before giving up on the drop.
    CtgDown {
        /// Maximum recursion depth of nested CTG handling.
        max_depth: usize,
        /// Maximum number of CTGs blocked per `down` call.
        max_ctgs: usize,
    },
}

/// The order in which MIC attempts to drop literals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LiteralOrdering {
    /// Ascending variable order (the IC3ref default).
    Ascending,
    /// Descending variable order.
    Descending,
    /// The CAV'23 heuristic of Xia et al. ("Searching for i-Good Lemmas"): drop
    /// literals that do **not** occur in any subsumed lemma of the previous
    /// frame first, to increase the chance the result propagates.
    ParentGuided,
    /// A deterministic pseudo-random permutation keyed on the seed and the
    /// cube's literals. Used by the portfolio engine to diversify otherwise
    /// identical IC3 workers: the same cube always gets the same drop order
    /// within one configuration (the engine stays deterministic), but two
    /// workers with different seeds explore different generalizations.
    Seeded(u64),
}

/// Resource budgets for one [`crate::Ic3::check`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Limits {
    /// Wall-clock budget; `None` means unlimited.
    pub max_time: Option<Duration>,
    /// Maximum number of frames; `None` means unlimited.
    pub max_frames: Option<usize>,
    /// Total SAT-conflict budget across all queries; `None` means unlimited.
    pub max_conflicts: Option<u64>,
}

/// Configuration of the IC3 engine.
///
/// The presets correspond to the configurations evaluated in the paper:
/// [`Config::ric3_like`] and [`Config::ic3ref_like`] are the two baselines,
/// [`Config::with_lemma_prediction`] switches the paper's CTP-based lemma
/// prediction on (giving `RIC3-pl` / `IC3ref-pl`), [`Config::cav23_like`]
/// approximates `IC3ref-CAV23`, and [`Config::pdr_like`] stands in for
/// `ABC-PDR`.
///
/// # Example
///
/// ```
/// use plic3::Config;
/// let cfg = Config::ric3_like().with_lemma_prediction(true);
/// assert!(cfg.lemma_prediction);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct Config {
    /// Enable the paper's CTP-based lemma prediction (Algorithm 2).
    pub lemma_prediction: bool,
    /// Generalization strategy.
    pub generalize: GeneralizeMode,
    /// Literal ordering used by MIC.
    pub ordering: LiteralOrdering,
    /// Shrink proof obligations by an unsat-core lifting query before recursing.
    pub lift_predecessors: bool,
    /// Shrink blocked cubes using the assumption core of the successful
    /// relative-induction query before generalizing.
    pub core_shrink: bool,
    /// When a predicted lemma is validated, additionally shrink it by the
    /// assumption core of the validating query. The paper uses the predicted
    /// lemma as-is; this is an ablation knob.
    pub shrink_predicted: bool,
    /// Rebuild a frame solver after this many retired activation literals.
    pub solver_rebuild_threshold: usize,
    /// Search behaviour of the backing SAT solvers (restart policy, phase
    /// handling, chronological backtracking, inprocessing). Handed to every
    /// frame solver and the lifting solver, so portfolio workers can
    /// diversify on search parameters instead of only seed and drop order.
    pub search: SearchConfig,
    /// Resource budgets.
    pub limits: Limits,
    /// Shared cooperative-cancellation flag, polled between and *inside* SAT
    /// queries. Raising it (typically from a portfolio runner's watchdog
    /// thread) makes [`crate::Ic3::check`] return
    /// [`crate::CheckResult::Unknown`] promptly.
    pub stop: StopFlag,
    /// Shared memory budget, plumbed like [`Config::stop`]: the frame
    /// solvers charge it for clause storage and the engine charges it for the
    /// frame lemma store. Exhausting it makes [`crate::Ic3::check`] return
    /// [`crate::CheckResult::Unknown`] with
    /// [`crate::UnknownReason::MemoryOut`] instead of growing until the
    /// allocator aborts. Unlimited by default.
    pub budget: ResourceBudget,
    /// Deterministic fault-injection plan for chaos testing; inert unless the
    /// `fault-injection` cargo feature is enabled (see
    /// [`plic3_sat::FaultPlan`]).
    pub faults: FaultPlan,
    /// Self-check every `Safe` verdict before reporting it: the engine runs
    /// [`crate::verify_certificate`] on its own certificate and **panics** on
    /// failure — an invalid certificate is an engine bug, and a loud crash
    /// (contained by the harness) beats silently reporting an unproven Safe.
    /// Off by default; the harness `--certify` mode performs the stronger
    /// original-circuit check externally instead.
    pub certify: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config::ric3_like()
    }
}

impl Config {
    /// The default RIC3-style configuration: CTG generalization, predecessor
    /// lifting, core shrinking, no lemma prediction.
    pub fn ric3_like() -> Self {
        Config {
            lemma_prediction: false,
            generalize: GeneralizeMode::CtgDown {
                max_depth: 1,
                max_ctgs: 3,
            },
            ordering: LiteralOrdering::Ascending,
            lift_predecessors: true,
            core_shrink: true,
            shrink_predicted: false,
            solver_rebuild_threshold: 256,
            search: SearchConfig::default(),
            limits: Limits::default(),
            stop: StopFlag::new(),
            budget: ResourceBudget::unlimited(),
            faults: FaultPlan::inert(),
            certify: false,
        }
    }

    /// An IC3ref-style configuration: plain MIC with descending literal order.
    pub fn ic3ref_like() -> Self {
        Config {
            generalize: GeneralizeMode::Mic,
            ordering: LiteralOrdering::Descending,
            ..Config::ric3_like()
        }
    }

    /// An approximation of the CAV'23 "i-Good Lemmas" configuration of Xia et
    /// al.: IC3ref-style generalization with parent-guided literal ordering.
    pub fn cav23_like() -> Self {
        Config {
            ordering: LiteralOrdering::ParentGuided,
            ..Config::ic3ref_like()
        }
    }

    /// An ABC-PDR-style configuration: aggressive CTG generalization.
    pub fn pdr_like() -> Self {
        Config {
            generalize: GeneralizeMode::CtgDown {
                max_depth: 2,
                max_ctgs: 5,
            },
            ordering: LiteralOrdering::Ascending,
            ..Config::ric3_like()
        }
    }

    /// Returns a copy with the paper's lemma prediction enabled or disabled.
    pub fn with_lemma_prediction(mut self, enabled: bool) -> Self {
        self.lemma_prediction = enabled;
        self
    }

    /// Returns a copy with the given wall-clock budget.
    pub fn with_max_time(mut self, max_time: Duration) -> Self {
        self.limits.max_time = Some(max_time);
        self
    }

    /// Returns a copy with the given frame budget.
    pub fn with_max_frames(mut self, max_frames: usize) -> Self {
        self.limits.max_frames = Some(max_frames);
        self
    }

    /// Returns a copy with the given total SAT-conflict budget.
    pub fn with_max_conflicts(mut self, max_conflicts: u64) -> Self {
        self.limits.max_conflicts = Some(max_conflicts);
        self
    }

    /// Returns a copy with the given generalization mode.
    pub fn with_generalize(mut self, generalize: GeneralizeMode) -> Self {
        self.generalize = generalize;
        self
    }

    /// Returns a copy with the given literal ordering.
    pub fn with_ordering(mut self, ordering: LiteralOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Returns a copy with the given SAT search configuration (restart
    /// policy, phase handling, chronological backtracking, inprocessing).
    pub fn with_search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    /// Returns a copy wired to the given cancellation flag.
    ///
    /// The flag is shared: raising it from any clone (e.g. a watchdog thread)
    /// interrupts the engine owning this configuration.
    pub fn with_stop_flag(mut self, stop: StopFlag) -> Self {
        self.stop = stop;
        self
    }

    /// Returns a copy wired to the given shared memory budget.
    ///
    /// The budget handle is shared like the stop flag: a portfolio runner can
    /// keep a clone for reporting while the engine charges and polls it.
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Returns a copy with a fresh memory budget of `bytes` bytes
    /// (convenience over [`Config::with_budget`]).
    pub fn with_max_memory(self, bytes: u64) -> Self {
        self.with_budget(ResourceBudget::with_limit(bytes))
    }

    /// Returns a copy wired to the given fault-injection plan (inert unless
    /// the `fault-injection` feature is on).
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns a copy with the engine's certificate self-check enabled or
    /// disabled (see [`Config::certify`]).
    pub fn with_certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_the_documented_ways() {
        assert!(!Config::ric3_like().lemma_prediction);
        assert!(
            Config::ric3_like()
                .with_lemma_prediction(true)
                .lemma_prediction
        );
        assert_eq!(Config::ic3ref_like().generalize, GeneralizeMode::Mic);
        assert_eq!(Config::cav23_like().ordering, LiteralOrdering::ParentGuided);
        assert!(matches!(
            Config::pdr_like().generalize,
            GeneralizeMode::CtgDown { max_ctgs: 5, .. }
        ));
        assert_eq!(Config::default(), Config::ric3_like());
    }

    #[test]
    fn builder_style_setters() {
        let cfg = Config::ric3_like()
            .with_max_time(Duration::from_secs(5))
            .with_max_frames(100)
            .with_max_conflicts(1_000_000)
            .with_ordering(LiteralOrdering::Descending)
            .with_generalize(GeneralizeMode::Mic);
        assert_eq!(cfg.limits.max_time, Some(Duration::from_secs(5)));
        assert_eq!(cfg.limits.max_frames, Some(100));
        assert_eq!(cfg.limits.max_conflicts, Some(1_000_000));
        assert_eq!(cfg.ordering, LiteralOrdering::Descending);
        assert_eq!(cfg.generalize, GeneralizeMode::Mic);
    }
}
